/root/repo/target/release/examples/quickstart-93ecd101566b5a1b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-93ecd101566b5a1b: examples/quickstart.rs

examples/quickstart.rs:
