/root/repo/target/release/examples/live_monitor-20e3ee49ef6aa9b6.d: examples/live_monitor.rs

/root/repo/target/release/examples/live_monitor-20e3ee49ef6aa9b6: examples/live_monitor.rs

examples/live_monitor.rs:
