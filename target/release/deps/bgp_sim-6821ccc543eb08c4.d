/root/repo/target/release/deps/bgp_sim-6821ccc543eb08c4.d: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

/root/repo/target/release/deps/libbgp_sim-6821ccc543eb08c4.rlib: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

/root/repo/target/release/deps/libbgp_sim-6821ccc543eb08c4.rmeta: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

crates/bgp-sim/src/lib.rs:
crates/bgp-sim/src/config.rs:
crates/bgp-sim/src/emission.rs:
crates/bgp-sim/src/engine.rs:
crates/bgp-sim/src/error.rs:
crates/bgp-sim/src/faults.rs:
crates/bgp-sim/src/scheduler.rs:
crates/bgp-sim/src/truth.rs:
crates/bgp-sim/src/workload.rs:
