/root/repo/target/release/deps/experiments-16ff0cd9b658c1dd.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-16ff0cd9b658c1dd: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
