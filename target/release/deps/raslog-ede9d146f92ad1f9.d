/root/repo/target/release/deps/raslog-ede9d146f92ad1f9.d: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

/root/repo/target/release/deps/libraslog-ede9d146f92ad1f9.rlib: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

/root/repo/target/release/deps/libraslog-ede9d146f92ad1f9.rmeta: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

crates/raslog/src/lib.rs:
crates/raslog/src/catalog.rs:
crates/raslog/src/component.rs:
crates/raslog/src/log.rs:
crates/raslog/src/parse.rs:
crates/raslog/src/record.rs:
crates/raslog/src/severity.rs:
crates/raslog/src/summary.rs:
crates/raslog/src/write.rs:
