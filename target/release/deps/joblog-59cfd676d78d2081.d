/root/repo/target/release/deps/joblog-59cfd676d78d2081.d: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

/root/repo/target/release/deps/libjoblog-59cfd676d78d2081.rlib: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

/root/repo/target/release/deps/libjoblog-59cfd676d78d2081.rmeta: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

crates/joblog/src/lib.rs:
crates/joblog/src/log.rs:
crates/joblog/src/metrics.rs:
crates/joblog/src/parse.rs:
crates/joblog/src/record.rs:
crates/joblog/src/write.rs:
