/root/repo/target/release/deps/rand-e1507af1a3286da3.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e1507af1a3286da3.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e1507af1a3286da3.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
