/root/repo/target/release/deps/coctl-618f3535c38558bd.d: src/bin/coctl.rs

/root/repo/target/release/deps/coctl-618f3535c38558bd: src/bin/coctl.rs

src/bin/coctl.rs:
