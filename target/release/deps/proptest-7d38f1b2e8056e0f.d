/root/repo/target/release/deps/proptest-7d38f1b2e8056e0f.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7d38f1b2e8056e0f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-7d38f1b2e8056e0f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
