/root/repo/target/release/deps/bgp_bench-2b99c2a7c8b8126e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libbgp_bench-2b99c2a7c8b8126e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libbgp_bench-2b99c2a7c8b8126e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/render.rs:
