/root/repo/target/release/deps/xtask-34f7d781b42867db.d: crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs

/root/repo/target/release/deps/libxtask-34f7d781b42867db.rlib: crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs

/root/repo/target/release/deps/libxtask-34f7d781b42867db.rmeta: crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs

crates/xtask/src/lib.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/source.rs:
crates/xtask/src/workspace.rs:
