/root/repo/target/release/deps/criterion-39e306da9854e8bf.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-39e306da9854e8bf.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-39e306da9854e8bf.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
