/root/repo/target/release/deps/bgp_coanalysis-39a4f67de5c213b6.d: src/lib.rs

/root/repo/target/release/deps/libbgp_coanalysis-39a4f67de5c213b6.rlib: src/lib.rs

/root/repo/target/release/deps/libbgp_coanalysis-39a4f67de5c213b6.rmeta: src/lib.rs

src/lib.rs:
