/root/repo/target/release/deps/xtask-385927f40fb77753.d: crates/xtask/src/main.rs

/root/repo/target/release/deps/xtask-385927f40fb77753: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
