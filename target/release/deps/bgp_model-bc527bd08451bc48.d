/root/repo/target/release/deps/bgp_model-bc527bd08451bc48.d: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

/root/repo/target/release/deps/libbgp_model-bc527bd08451bc48.rlib: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

/root/repo/target/release/deps/libbgp_model-bc527bd08451bc48.rmeta: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

crates/bgp-model/src/lib.rs:
crates/bgp-model/src/error.rs:
crates/bgp-model/src/location.rs:
crates/bgp-model/src/partition.rs:
crates/bgp-model/src/time.rs:
crates/bgp-model/src/topology.rs:
crates/bgp-model/src/torus.rs:
