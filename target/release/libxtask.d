/root/repo/target/release/libxtask.rlib: /root/repo/crates/xtask/src/lib.rs /root/repo/crates/xtask/src/rules.rs /root/repo/crates/xtask/src/source.rs /root/repo/crates/xtask/src/workspace.rs
