/root/repo/target/debug/examples/filter_logs-835daf9cf2ac94f5.d: examples/filter_logs.rs

/root/repo/target/debug/examples/filter_logs-835daf9cf2ac94f5: examples/filter_logs.rs

examples/filter_logs.rs:
