/root/repo/target/debug/examples/quickstart-c73ddd8c00dffff0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c73ddd8c00dffff0: examples/quickstart.rs

examples/quickstart.rs:
