/root/repo/target/debug/examples/failure_analysis-bcd92cf5e59a90cc.d: examples/failure_analysis.rs

/root/repo/target/debug/examples/failure_analysis-bcd92cf5e59a90cc: examples/failure_analysis.rs

examples/failure_analysis.rs:
