/root/repo/target/debug/examples/checkpoint_advisor-d85160641972d21a.d: examples/checkpoint_advisor.rs

/root/repo/target/debug/examples/checkpoint_advisor-d85160641972d21a: examples/checkpoint_advisor.rs

examples/checkpoint_advisor.rs:
