/root/repo/target/debug/examples/failure_analysis-e9c536d07008354e.d: /root/repo/clippy.toml examples/failure_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_analysis-e9c536d07008354e.rmeta: /root/repo/clippy.toml examples/failure_analysis.rs Cargo.toml

/root/repo/clippy.toml:
examples/failure_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
