/root/repo/target/debug/examples/quickstart-978eecae1dac9754.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-978eecae1dac9754.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
