/root/repo/target/debug/examples/live_monitor-223247ff1d06f53b.d: examples/live_monitor.rs

/root/repo/target/debug/examples/live_monitor-223247ff1d06f53b: examples/live_monitor.rs

examples/live_monitor.rs:
