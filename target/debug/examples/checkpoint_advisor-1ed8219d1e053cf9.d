/root/repo/target/debug/examples/checkpoint_advisor-1ed8219d1e053cf9.d: /root/repo/clippy.toml examples/checkpoint_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint_advisor-1ed8219d1e053cf9.rmeta: /root/repo/clippy.toml examples/checkpoint_advisor.rs Cargo.toml

/root/repo/clippy.toml:
examples/checkpoint_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
