/root/repo/target/debug/examples/live_monitor-3523f4213861732e.d: /root/repo/clippy.toml examples/live_monitor.rs Cargo.toml

/root/repo/target/debug/examples/liblive_monitor-3523f4213861732e.rmeta: /root/repo/clippy.toml examples/live_monitor.rs Cargo.toml

/root/repo/clippy.toml:
examples/live_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
