/root/repo/target/debug/examples/filter_logs-9bcf8bf118f2da9e.d: /root/repo/clippy.toml examples/filter_logs.rs Cargo.toml

/root/repo/target/debug/examples/libfilter_logs-9bcf8bf118f2da9e.rmeta: /root/repo/clippy.toml examples/filter_logs.rs Cargo.toml

/root/repo/clippy.toml:
examples/filter_logs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
