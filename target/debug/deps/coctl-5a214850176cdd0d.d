/root/repo/target/debug/deps/coctl-5a214850176cdd0d.d: src/bin/coctl.rs

/root/repo/target/debug/deps/coctl-5a214850176cdd0d: src/bin/coctl.rs

src/bin/coctl.rs:
