/root/repo/target/debug/deps/xtask-72f387773c87a59d.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-72f387773c87a59d: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
