/root/repo/target/debug/deps/cli_coctl-3554ce0a88604718.d: /root/repo/clippy.toml tests/cli_coctl.rs Cargo.toml

/root/repo/target/debug/deps/libcli_coctl-3554ce0a88604718.rmeta: /root/repo/clippy.toml tests/cli_coctl.rs Cargo.toml

/root/repo/clippy.toml:
tests/cli_coctl.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_coctl=placeholder:coctl
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
