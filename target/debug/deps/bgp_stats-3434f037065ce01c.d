/root/repo/target/debug/deps/bgp_stats-3434f037065ce01c.d: /root/repo/clippy.toml crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/hist.rs crates/stats/src/infogain.rs crates/stats/src/ks.rs crates/stats/src/linreg.rs crates/stats/src/lrt.rs crates/stats/src/pearson.rs crates/stats/src/sample.rs crates/stats/src/special.rs crates/stats/src/summary.rs crates/stats/src/weibull.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_stats-3434f037065ce01c.rmeta: /root/repo/clippy.toml crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/hist.rs crates/stats/src/infogain.rs crates/stats/src/ks.rs crates/stats/src/linreg.rs crates/stats/src/lrt.rs crates/stats/src/pearson.rs crates/stats/src/sample.rs crates/stats/src/special.rs crates/stats/src/summary.rs crates/stats/src/weibull.rs Cargo.toml

/root/repo/clippy.toml:
crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/exponential.rs:
crates/stats/src/hist.rs:
crates/stats/src/infogain.rs:
crates/stats/src/ks.rs:
crates/stats/src/linreg.rs:
crates/stats/src/lrt.rs:
crates/stats/src/pearson.rs:
crates/stats/src/sample.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
crates/stats/src/weibull.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
