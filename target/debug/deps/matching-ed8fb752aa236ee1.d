/root/repo/target/debug/deps/matching-ed8fb752aa236ee1.d: /root/repo/clippy.toml crates/bench/benches/matching.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-ed8fb752aa236ee1.rmeta: /root/repo/clippy.toml crates/bench/benches/matching.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
