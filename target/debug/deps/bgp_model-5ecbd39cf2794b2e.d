/root/repo/target/debug/deps/bgp_model-5ecbd39cf2794b2e.d: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

/root/repo/target/debug/deps/bgp_model-5ecbd39cf2794b2e: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

crates/bgp-model/src/lib.rs:
crates/bgp-model/src/error.rs:
crates/bgp-model/src/location.rs:
crates/bgp-model/src/partition.rs:
crates/bgp-model/src/time.rs:
crates/bgp-model/src/topology.rs:
crates/bgp-model/src/torus.rs:
