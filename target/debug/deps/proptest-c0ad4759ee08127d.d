/root/repo/target/debug/deps/proptest-c0ad4759ee08127d.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c0ad4759ee08127d.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
