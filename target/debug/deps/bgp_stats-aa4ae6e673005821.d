/root/repo/target/debug/deps/bgp_stats-aa4ae6e673005821.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/hist.rs crates/stats/src/infogain.rs crates/stats/src/ks.rs crates/stats/src/linreg.rs crates/stats/src/lrt.rs crates/stats/src/pearson.rs crates/stats/src/sample.rs crates/stats/src/special.rs crates/stats/src/summary.rs crates/stats/src/weibull.rs

/root/repo/target/debug/deps/libbgp_stats-aa4ae6e673005821.rlib: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/hist.rs crates/stats/src/infogain.rs crates/stats/src/ks.rs crates/stats/src/linreg.rs crates/stats/src/lrt.rs crates/stats/src/pearson.rs crates/stats/src/sample.rs crates/stats/src/special.rs crates/stats/src/summary.rs crates/stats/src/weibull.rs

/root/repo/target/debug/deps/libbgp_stats-aa4ae6e673005821.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/hist.rs crates/stats/src/infogain.rs crates/stats/src/ks.rs crates/stats/src/linreg.rs crates/stats/src/lrt.rs crates/stats/src/pearson.rs crates/stats/src/sample.rs crates/stats/src/special.rs crates/stats/src/summary.rs crates/stats/src/weibull.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/exponential.rs:
crates/stats/src/hist.rs:
crates/stats/src/infogain.rs:
crates/stats/src/ks.rs:
crates/stats/src/linreg.rs:
crates/stats/src/lrt.rs:
crates/stats/src/pearson.rs:
crates/stats/src/sample.rs:
crates/stats/src/special.rs:
crates/stats/src/summary.rs:
crates/stats/src/weibull.rs:
