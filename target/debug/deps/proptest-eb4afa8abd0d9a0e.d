/root/repo/target/debug/deps/proptest-eb4afa8abd0d9a0e.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-eb4afa8abd0d9a0e.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
