/root/repo/target/debug/deps/cli_coctl-0be8fe3c9addbbfc.d: tests/cli_coctl.rs

/root/repo/target/debug/deps/cli_coctl-0be8fe3c9addbbfc: tests/cli_coctl.rs

tests/cli_coctl.rs:

# env-dep:CARGO_BIN_EXE_coctl=/root/repo/target/debug/coctl
