/root/repo/target/debug/deps/raslog-7654f41dd90aaaa5.d: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

/root/repo/target/debug/deps/libraslog-7654f41dd90aaaa5.rlib: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

/root/repo/target/debug/deps/libraslog-7654f41dd90aaaa5.rmeta: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

crates/raslog/src/lib.rs:
crates/raslog/src/catalog.rs:
crates/raslog/src/component.rs:
crates/raslog/src/log.rs:
crates/raslog/src/parse.rs:
crates/raslog/src/record.rs:
crates/raslog/src/severity.rs:
crates/raslog/src/summary.rs:
crates/raslog/src/write.rs:
