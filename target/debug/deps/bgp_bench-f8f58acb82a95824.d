/root/repo/target/debug/deps/bgp_bench-f8f58acb82a95824.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/bgp_bench-f8f58acb82a95824: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/render.rs:
