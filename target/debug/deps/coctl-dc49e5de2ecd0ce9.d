/root/repo/target/debug/deps/coctl-dc49e5de2ecd0ce9.d: /root/repo/clippy.toml src/bin/coctl.rs Cargo.toml

/root/repo/target/debug/deps/libcoctl-dc49e5de2ecd0ce9.rmeta: /root/repo/clippy.toml src/bin/coctl.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/coctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
