/root/repo/target/debug/deps/fitting-793d8342ae60f530.d: /root/repo/clippy.toml crates/bench/benches/fitting.rs Cargo.toml

/root/repo/target/debug/deps/libfitting-793d8342ae60f530.rmeta: /root/repo/clippy.toml crates/bench/benches/fitting.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/fitting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
