/root/repo/target/debug/deps/raslog-ef956c3b1ba0b778.d: /root/repo/clippy.toml crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libraslog-ef956c3b1ba0b778.rmeta: /root/repo/clippy.toml crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs Cargo.toml

/root/repo/clippy.toml:
crates/raslog/src/lib.rs:
crates/raslog/src/catalog.rs:
crates/raslog/src/component.rs:
crates/raslog/src/log.rs:
crates/raslog/src/parse.rs:
crates/raslog/src/record.rs:
crates/raslog/src/severity.rs:
crates/raslog/src/summary.rs:
crates/raslog/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
