/root/repo/target/debug/deps/ground_truth_recovery-c382552f9ed59b5c.d: /root/repo/clippy.toml tests/ground_truth_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libground_truth_recovery-c382552f9ed59b5c.rmeta: /root/repo/clippy.toml tests/ground_truth_recovery.rs Cargo.toml

/root/repo/clippy.toml:
tests/ground_truth_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
