/root/repo/target/debug/deps/calibration_shape-b9320121eef0f312.d: tests/calibration_shape.rs

/root/repo/target/debug/deps/calibration_shape-b9320121eef0f312: tests/calibration_shape.rs

tests/calibration_shape.rs:
