/root/repo/target/debug/deps/proptest-bb092f2882bece40.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-bb092f2882bece40: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
