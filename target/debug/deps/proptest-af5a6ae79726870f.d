/root/repo/target/debug/deps/proptest-af5a6ae79726870f.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-af5a6ae79726870f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-af5a6ae79726870f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
