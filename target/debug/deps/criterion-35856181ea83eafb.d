/root/repo/target/debug/deps/criterion-35856181ea83eafb.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-35856181ea83eafb.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
