/root/repo/target/debug/deps/pipeline-cf1c2121c65e49c4.d: /root/repo/clippy.toml crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-cf1c2121c65e49c4.rmeta: /root/repo/clippy.toml crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
