/root/repo/target/debug/deps/experiments-a1129151fb868138.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a1129151fb868138: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
