/root/repo/target/debug/deps/log_round_trips-0870fa18fff02619.d: tests/log_round_trips.rs

/root/repo/target/debug/deps/log_round_trips-0870fa18fff02619: tests/log_round_trips.rs

tests/log_round_trips.rs:
