/root/repo/target/debug/deps/xtask-e9cda8f165ea47d2.d: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-e9cda8f165ea47d2.rmeta: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
