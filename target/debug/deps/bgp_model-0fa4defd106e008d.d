/root/repo/target/debug/deps/bgp_model-0fa4defd106e008d.d: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

/root/repo/target/debug/deps/libbgp_model-0fa4defd106e008d.rlib: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

/root/repo/target/debug/deps/libbgp_model-0fa4defd106e008d.rmeta: crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs

crates/bgp-model/src/lib.rs:
crates/bgp-model/src/error.rs:
crates/bgp-model/src/location.rs:
crates/bgp-model/src/partition.rs:
crates/bgp-model/src/time.rs:
crates/bgp-model/src/topology.rs:
crates/bgp-model/src/torus.rs:
