/root/repo/target/debug/deps/filtering-c8fd992d4ed9d09e.d: /root/repo/clippy.toml crates/bench/benches/filtering.rs Cargo.toml

/root/repo/target/debug/deps/libfiltering-c8fd992d4ed9d09e.rmeta: /root/repo/clippy.toml crates/bench/benches/filtering.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/filtering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
