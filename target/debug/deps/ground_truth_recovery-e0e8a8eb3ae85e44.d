/root/repo/target/debug/deps/ground_truth_recovery-e0e8a8eb3ae85e44.d: tests/ground_truth_recovery.rs

/root/repo/target/debug/deps/ground_truth_recovery-e0e8a8eb3ae85e44: tests/ground_truth_recovery.rs

tests/ground_truth_recovery.rs:
