/root/repo/target/debug/deps/coctl-1ae7ed9f13c25903.d: src/bin/coctl.rs

/root/repo/target/debug/deps/coctl-1ae7ed9f13c25903: src/bin/coctl.rs

src/bin/coctl.rs:
