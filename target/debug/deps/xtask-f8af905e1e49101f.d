/root/repo/target/debug/deps/xtask-f8af905e1e49101f.d: crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs

/root/repo/target/debug/deps/xtask-f8af905e1e49101f: crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs

crates/xtask/src/lib.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/source.rs:
crates/xtask/src/workspace.rs:
