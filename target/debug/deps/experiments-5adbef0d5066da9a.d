/root/repo/target/debug/deps/experiments-5adbef0d5066da9a.d: /root/repo/clippy.toml crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-5adbef0d5066da9a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
