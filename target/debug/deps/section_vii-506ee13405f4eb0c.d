/root/repo/target/debug/deps/section_vii-506ee13405f4eb0c.d: tests/section_vii.rs

/root/repo/target/debug/deps/section_vii-506ee13405f4eb0c: tests/section_vii.rs

tests/section_vii.rs:
