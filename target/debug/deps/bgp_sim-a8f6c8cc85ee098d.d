/root/repo/target/debug/deps/bgp_sim-a8f6c8cc85ee098d.d: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

/root/repo/target/debug/deps/bgp_sim-a8f6c8cc85ee098d: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

crates/bgp-sim/src/lib.rs:
crates/bgp-sim/src/config.rs:
crates/bgp-sim/src/emission.rs:
crates/bgp-sim/src/engine.rs:
crates/bgp-sim/src/error.rs:
crates/bgp-sim/src/faults.rs:
crates/bgp-sim/src/scheduler.rs:
crates/bgp-sim/src/truth.rs:
crates/bgp-sim/src/workload.rs:
