/root/repo/target/debug/deps/raslog-26c3c37a26622221.d: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

/root/repo/target/debug/deps/raslog-26c3c37a26622221: crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs

crates/raslog/src/lib.rs:
crates/raslog/src/catalog.rs:
crates/raslog/src/component.rs:
crates/raslog/src/log.rs:
crates/raslog/src/parse.rs:
crates/raslog/src/record.rs:
crates/raslog/src/severity.rs:
crates/raslog/src/summary.rs:
crates/raslog/src/write.rs:
