/root/repo/target/debug/deps/experiments-01121818bf8a9b2a.d: /root/repo/clippy.toml crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-01121818bf8a9b2a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
