/root/repo/target/debug/deps/pipeline_determinism-370ca98cabc8e13f.d: /root/repo/clippy.toml tests/pipeline_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_determinism-370ca98cabc8e13f.rmeta: /root/repo/clippy.toml tests/pipeline_determinism.rs Cargo.toml

/root/repo/clippy.toml:
tests/pipeline_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
