/root/repo/target/debug/deps/joblog-cc4d86d58dedb007.d: /root/repo/clippy.toml crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libjoblog-cc4d86d58dedb007.rmeta: /root/repo/clippy.toml crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs Cargo.toml

/root/repo/clippy.toml:
crates/joblog/src/lib.rs:
crates/joblog/src/log.rs:
crates/joblog/src/metrics.rs:
crates/joblog/src/parse.rs:
crates/joblog/src/record.rs:
crates/joblog/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
