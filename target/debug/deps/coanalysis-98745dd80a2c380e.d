/root/repo/target/debug/deps/coanalysis-98745dd80a2c380e.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/burst.rs crates/core/src/analysis/checkpoint.rs crates/core/src/analysis/failure_stats.rs crates/core/src/analysis/repair.rs crates/core/src/analysis/trend.rs crates/core/src/analysis/interruption.rs crates/core/src/analysis/midplane.rs crates/core/src/analysis/propagation.rs crates/core/src/analysis/vulnerability.rs crates/core/src/classify/mod.rs crates/core/src/classify/interruption_related.rs crates/core/src/classify/root_cause.rs crates/core/src/event.rs crates/core/src/filter/mod.rs crates/core/src/filter/adaptive.rs crates/core/src/filter/causal.rs crates/core/src/filter/job_related.rs crates/core/src/filter/proptests.rs crates/core/src/filter/spatial.rs crates/core/src/filter/temporal.rs crates/core/src/matching.rs crates/core/src/pipeline.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libcoanalysis-98745dd80a2c380e.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/burst.rs crates/core/src/analysis/checkpoint.rs crates/core/src/analysis/failure_stats.rs crates/core/src/analysis/repair.rs crates/core/src/analysis/trend.rs crates/core/src/analysis/interruption.rs crates/core/src/analysis/midplane.rs crates/core/src/analysis/propagation.rs crates/core/src/analysis/vulnerability.rs crates/core/src/classify/mod.rs crates/core/src/classify/interruption_related.rs crates/core/src/classify/root_cause.rs crates/core/src/event.rs crates/core/src/filter/mod.rs crates/core/src/filter/adaptive.rs crates/core/src/filter/causal.rs crates/core/src/filter/job_related.rs crates/core/src/filter/proptests.rs crates/core/src/filter/spatial.rs crates/core/src/filter/temporal.rs crates/core/src/matching.rs crates/core/src/pipeline.rs crates/core/src/predict.rs crates/core/src/report.rs crates/core/src/stream.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/burst.rs:
crates/core/src/analysis/checkpoint.rs:
crates/core/src/analysis/failure_stats.rs:
crates/core/src/analysis/repair.rs:
crates/core/src/analysis/trend.rs:
crates/core/src/analysis/interruption.rs:
crates/core/src/analysis/midplane.rs:
crates/core/src/analysis/propagation.rs:
crates/core/src/analysis/vulnerability.rs:
crates/core/src/classify/mod.rs:
crates/core/src/classify/interruption_related.rs:
crates/core/src/classify/root_cause.rs:
crates/core/src/event.rs:
crates/core/src/filter/mod.rs:
crates/core/src/filter/adaptive.rs:
crates/core/src/filter/causal.rs:
crates/core/src/filter/job_related.rs:
crates/core/src/filter/proptests.rs:
crates/core/src/filter/spatial.rs:
crates/core/src/filter/temporal.rs:
crates/core/src/matching.rs:
crates/core/src/pipeline.rs:
crates/core/src/predict.rs:
crates/core/src/report.rs:
crates/core/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
