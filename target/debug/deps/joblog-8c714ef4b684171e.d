/root/repo/target/debug/deps/joblog-8c714ef4b684171e.d: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

/root/repo/target/debug/deps/libjoblog-8c714ef4b684171e.rlib: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

/root/repo/target/debug/deps/libjoblog-8c714ef4b684171e.rmeta: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

crates/joblog/src/lib.rs:
crates/joblog/src/log.rs:
crates/joblog/src/metrics.rs:
crates/joblog/src/parse.rs:
crates/joblog/src/record.rs:
crates/joblog/src/write.rs:
