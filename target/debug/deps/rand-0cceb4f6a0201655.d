/root/repo/target/debug/deps/rand-0cceb4f6a0201655.d: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-0cceb4f6a0201655.rmeta: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
