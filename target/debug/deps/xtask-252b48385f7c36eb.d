/root/repo/target/debug/deps/xtask-252b48385f7c36eb.d: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-252b48385f7c36eb.rmeta: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
