/root/repo/target/debug/deps/bgp_coanalysis-35c72f2424062bd6.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_coanalysis-35c72f2424062bd6.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
