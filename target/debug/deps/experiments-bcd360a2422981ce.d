/root/repo/target/debug/deps/experiments-bcd360a2422981ce.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bcd360a2422981ce: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
