/root/repo/target/debug/deps/bgp_coanalysis-b538d9411c0ca8ac.d: src/lib.rs

/root/repo/target/debug/deps/bgp_coanalysis-b538d9411c0ca8ac: src/lib.rs

src/lib.rs:
