/root/repo/target/debug/deps/bgp_bench-3bc83d31474a8eef.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_bench-3bc83d31474a8eef.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
