/root/repo/target/debug/deps/section_vii-15accae04069c860.d: /root/repo/clippy.toml tests/section_vii.rs Cargo.toml

/root/repo/target/debug/deps/libsection_vii-15accae04069c860.rmeta: /root/repo/clippy.toml tests/section_vii.rs Cargo.toml

/root/repo/clippy.toml:
tests/section_vii.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
