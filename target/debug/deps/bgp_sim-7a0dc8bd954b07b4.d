/root/repo/target/debug/deps/bgp_sim-7a0dc8bd954b07b4.d: /root/repo/clippy.toml crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_sim-7a0dc8bd954b07b4.rmeta: /root/repo/clippy.toml crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs Cargo.toml

/root/repo/clippy.toml:
crates/bgp-sim/src/lib.rs:
crates/bgp-sim/src/config.rs:
crates/bgp-sim/src/emission.rs:
crates/bgp-sim/src/error.rs:
crates/bgp-sim/src/engine.rs:
crates/bgp-sim/src/faults.rs:
crates/bgp-sim/src/scheduler.rs:
crates/bgp-sim/src/truth.rs:
crates/bgp-sim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
