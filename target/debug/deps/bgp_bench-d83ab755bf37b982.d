/root/repo/target/debug/deps/bgp_bench-d83ab755bf37b982.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libbgp_bench-d83ab755bf37b982.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libbgp_bench-d83ab755bf37b982.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/render.rs:
