/root/repo/target/debug/deps/raslog-5984a1c84a30bacf.d: /root/repo/clippy.toml crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libraslog-5984a1c84a30bacf.rmeta: /root/repo/clippy.toml crates/raslog/src/lib.rs crates/raslog/src/catalog.rs crates/raslog/src/component.rs crates/raslog/src/log.rs crates/raslog/src/parse.rs crates/raslog/src/record.rs crates/raslog/src/severity.rs crates/raslog/src/summary.rs crates/raslog/src/write.rs Cargo.toml

/root/repo/clippy.toml:
crates/raslog/src/lib.rs:
crates/raslog/src/catalog.rs:
crates/raslog/src/component.rs:
crates/raslog/src/log.rs:
crates/raslog/src/parse.rs:
crates/raslog/src/record.rs:
crates/raslog/src/severity.rs:
crates/raslog/src/summary.rs:
crates/raslog/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
