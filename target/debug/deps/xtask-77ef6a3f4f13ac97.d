/root/repo/target/debug/deps/xtask-77ef6a3f4f13ac97.d: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-77ef6a3f4f13ac97.rmeta: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/lib.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/source.rs:
crates/xtask/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
