/root/repo/target/debug/deps/calibration_shape-ba1885e926286acd.d: /root/repo/clippy.toml tests/calibration_shape.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration_shape-ba1885e926286acd.rmeta: /root/repo/clippy.toml tests/calibration_shape.rs Cargo.toml

/root/repo/clippy.toml:
tests/calibration_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
