/root/repo/target/debug/deps/bgp_coanalysis-828d15cce91094fc.d: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_coanalysis-828d15cce91094fc.rmeta: /root/repo/clippy.toml src/lib.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
