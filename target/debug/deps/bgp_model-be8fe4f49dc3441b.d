/root/repo/target/debug/deps/bgp_model-be8fe4f49dc3441b.d: /root/repo/clippy.toml crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs Cargo.toml

/root/repo/target/debug/deps/libbgp_model-be8fe4f49dc3441b.rmeta: /root/repo/clippy.toml crates/bgp-model/src/lib.rs crates/bgp-model/src/error.rs crates/bgp-model/src/location.rs crates/bgp-model/src/partition.rs crates/bgp-model/src/time.rs crates/bgp-model/src/topology.rs crates/bgp-model/src/torus.rs Cargo.toml

/root/repo/clippy.toml:
crates/bgp-model/src/lib.rs:
crates/bgp-model/src/error.rs:
crates/bgp-model/src/location.rs:
crates/bgp-model/src/partition.rs:
crates/bgp-model/src/time.rs:
crates/bgp-model/src/topology.rs:
crates/bgp-model/src/torus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
