/root/repo/target/debug/deps/coctl-3178e5c12efd3a3f.d: /root/repo/clippy.toml src/bin/coctl.rs Cargo.toml

/root/repo/target/debug/deps/libcoctl-3178e5c12efd3a3f.rmeta: /root/repo/clippy.toml src/bin/coctl.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/coctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
