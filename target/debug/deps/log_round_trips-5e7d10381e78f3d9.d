/root/repo/target/debug/deps/log_round_trips-5e7d10381e78f3d9.d: /root/repo/clippy.toml tests/log_round_trips.rs Cargo.toml

/root/repo/target/debug/deps/liblog_round_trips-5e7d10381e78f3d9.rmeta: /root/repo/clippy.toml tests/log_round_trips.rs Cargo.toml

/root/repo/clippy.toml:
tests/log_round_trips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
