/root/repo/target/debug/deps/joblog-51fd777fe84425b1.d: /root/repo/clippy.toml crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libjoblog-51fd777fe84425b1.rmeta: /root/repo/clippy.toml crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs Cargo.toml

/root/repo/clippy.toml:
crates/joblog/src/lib.rs:
crates/joblog/src/log.rs:
crates/joblog/src/metrics.rs:
crates/joblog/src/parse.rs:
crates/joblog/src/record.rs:
crates/joblog/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
