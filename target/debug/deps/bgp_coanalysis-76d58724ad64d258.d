/root/repo/target/debug/deps/bgp_coanalysis-76d58724ad64d258.d: src/lib.rs

/root/repo/target/debug/deps/libbgp_coanalysis-76d58724ad64d258.rlib: src/lib.rs

/root/repo/target/debug/deps/libbgp_coanalysis-76d58724ad64d258.rmeta: src/lib.rs

src/lib.rs:
