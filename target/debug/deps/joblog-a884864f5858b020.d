/root/repo/target/debug/deps/joblog-a884864f5858b020.d: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

/root/repo/target/debug/deps/joblog-a884864f5858b020: crates/joblog/src/lib.rs crates/joblog/src/log.rs crates/joblog/src/metrics.rs crates/joblog/src/parse.rs crates/joblog/src/record.rs crates/joblog/src/write.rs

crates/joblog/src/lib.rs:
crates/joblog/src/log.rs:
crates/joblog/src/metrics.rs:
crates/joblog/src/parse.rs:
crates/joblog/src/record.rs:
crates/joblog/src/write.rs:
