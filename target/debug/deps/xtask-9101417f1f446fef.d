/root/repo/target/debug/deps/xtask-9101417f1f446fef.d: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-9101417f1f446fef.rmeta: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/rules.rs crates/xtask/src/source.rs crates/xtask/src/workspace.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/lib.rs:
crates/xtask/src/rules.rs:
crates/xtask/src/source.rs:
crates/xtask/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
