/root/repo/target/debug/deps/bgp_sim-98a3ce47defd0c51.d: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

/root/repo/target/debug/deps/libbgp_sim-98a3ce47defd0c51.rlib: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

/root/repo/target/debug/deps/libbgp_sim-98a3ce47defd0c51.rmeta: crates/bgp-sim/src/lib.rs crates/bgp-sim/src/config.rs crates/bgp-sim/src/emission.rs crates/bgp-sim/src/engine.rs crates/bgp-sim/src/error.rs crates/bgp-sim/src/faults.rs crates/bgp-sim/src/scheduler.rs crates/bgp-sim/src/truth.rs crates/bgp-sim/src/workload.rs

crates/bgp-sim/src/lib.rs:
crates/bgp-sim/src/config.rs:
crates/bgp-sim/src/emission.rs:
crates/bgp-sim/src/engine.rs:
crates/bgp-sim/src/error.rs:
crates/bgp-sim/src/faults.rs:
crates/bgp-sim/src/scheduler.rs:
crates/bgp-sim/src/truth.rs:
crates/bgp-sim/src/workload.rs:
