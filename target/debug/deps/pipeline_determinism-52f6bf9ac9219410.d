/root/repo/target/debug/deps/pipeline_determinism-52f6bf9ac9219410.d: tests/pipeline_determinism.rs

/root/repo/target/debug/deps/pipeline_determinism-52f6bf9ac9219410: tests/pipeline_determinism.rs

tests/pipeline_determinism.rs:
