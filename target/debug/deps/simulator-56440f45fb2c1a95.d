/root/repo/target/debug/deps/simulator-56440f45fb2c1a95.d: /root/repo/clippy.toml crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-56440f45fb2c1a95.rmeta: /root/repo/clippy.toml crates/bench/benches/simulator.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
