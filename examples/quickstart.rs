//! Quickstart: simulate a small Blue Gene/P deployment, co-analyze its RAS
//! and job logs, and print the twelve observations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::CoAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get a paired RAS log + job log. Here they come from the bundled
    //    Intrepid simulator; with real logs you would use
    //    `raslog::RasReader` / `joblog::JobReader` instead (see the
    //    `filter_logs` example).
    let config = SimConfig::small_test(2026);
    println!(
        "simulating {} days of Intrepid ({} executables)...",
        config.days, config.num_execs
    );
    let out = Simulation::new(config)?.run();
    println!(
        "  -> {} RAS records ({} FATAL), {} jobs\n",
        out.ras.len(),
        out.ras.fatal().count(),
        out.jobs.len()
    );

    // 2. Run the co-analysis pipeline: filtering, matching, classification,
    //    characterization.
    let result = CoAnalysis::default().run(&out.ras, &out.jobs);

    // 3. The headline numbers.
    let s = &result.filter_stats;
    println!(
        "filtering: {} raw FATAL records -> {} events (temporal-spatial-causal, {:.2}% compression)",
        s.raw_fatal,
        s.after_causal,
        100.0 * s.ts_causal_compression()
    );
    println!(
        "           -> {} events after job-related filtering (removed {} job-induced duplicates)",
        s.after_job_related,
        s.after_causal - s.after_job_related
    );
    println!(
        "matching:  {} job interruptions identified\n",
        result.matching.interrupted_jobs()
    );

    // 4. The twelve observations, computed from this run.
    println!("{}", result.observations());

    // 5. Because the logs are simulated, ground truth is available: how well
    //    did the analysis recover it?
    let truth = &out.truth;
    let tp = result
        .matching
        .job_to_event
        .keys()
        .filter(|id| truth.job_cause.contains_key(id))
        .count();
    println!(
        "\nground truth check: {}/{} true interruptions recovered",
        tp,
        truth.job_cause.len()
    );
    Ok(())
}
