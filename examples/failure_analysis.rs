//! Failure-characteristics deep dive: fit interarrival models, compare
//! Weibull vs. exponential with a likelihood-ratio test, and profile
//! failures per midplane — the Section V study of the paper, on a fresh
//! simulated system.
//!
//! ```text
//! cargo run --release --example failure_analysis [seed]
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::CoAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);

    // A 60-day window gives the fits a few hundred events to chew on while
    // staying fast.
    let mut config = SimConfig::small_test(seed);
    config.days = 60;
    config.num_execs = 2_500;
    println!("simulating {} days (seed {seed})...", config.days);
    let out = Simulation::new(config)?.run();
    let result = CoAnalysis::default().run(&out.ras, &out.jobs);

    // ---- systemwide interarrival distribution (Table IV / Figure 3) ----
    let Some(table_iv) = &result.table_iv else {
        eprintln!("not enough fatal events to fit — try another seed");
        std::process::exit(1);
    };
    println!("\n== systemwide failure interarrivals ==");
    for (name, f) in [
        ("with job-related redundancy   ", &table_iv.before),
        ("without job-related redundancy", &table_iv.after),
    ] {
        println!(
            "{name}: {} events, Weibull(shape {:.3}, scale {:.0}) mean {:.0} s;\n\
             {:31}  LRT statistic {:.1} (p = {:.2e}) -> {}",
            f.n_events,
            f.fits.weibull.shape,
            f.fits.weibull.scale,
            f.fits.weibull.mean(),
            "",
            f.fits.lrt_statistic,
            f.fits.p_value,
            if f.fits.weibull_preferred(0.05) {
                "Weibull preferred over exponential"
            } else {
                "exponential adequate"
            }
        );
    }
    println!(
        "job-related filtering raises the fitted MTBF {:.2}x (Observation 4)",
        table_iv.mtbf_ratio()
    );

    // Hazard-rate reading: shape < 1 means a failure makes the near future
    // MORE dangerous, not less — the basis for Observation 10.
    let w = table_iv.after.fits.weibull;
    println!(
        "\nhazard rate (after filtering): shape = {:.3} < 1 => decreasing hazard",
        w.shape
    );
    for hours in [1i64, 6, 24, 96] {
        let x = (hours * 3600) as f64;
        println!(
            "  h({hours:>3} h since last failure) = {:.3e} failures/s",
            w.hazard(x)
        );
    }

    // ---- per-midplane profile (Figure 4) ----
    println!("\n== per-midplane failure profile ==");
    let p = &result.midplane;
    println!(
        "correlation of per-midplane fatal counts with total workload: {:+.3}",
        p.corr_with_workload().unwrap_or(f64::NAN)
    );
    println!(
        "correlation with wide-job (>= {} midplane) workload:          {:+.3}",
        p.wide_threshold,
        p.corr_with_wide_workload().unwrap_or(f64::NAN)
    );
    println!("most-failing midplanes:");
    for (m, count) in p.top_failing(5) {
        println!(
            "  {m}  {count} fatal events  (workload {:.0} h, wide workload {:.0} h)",
            p.workload_secs[m.index()] as f64 / 3600.0,
            p.wide_workload_secs[m.index()] as f64 / 3600.0,
        );
    }

    // ---- burstiness (Figure 5 / Observation 6) ----
    let b = &result.burst;
    println!("\n== interruption burstiness ==");
    println!(
        "{} interruptions over {} days ({:.2}% of jobs); {} same-executable re-interruptions within {} s",
        result.matching.interrupted_jobs(),
        b.per_day.len(),
        100.0 * b.interrupted_job_fraction,
        b.quick_reinterruptions,
        b.quick_window_secs,
    );
    Ok(())
}
