//! Checkpoint advisor: turn the co-analysis vulnerability statistics into
//! the paper's Section VII operational recommendations for a specific job.
//!
//! The paper's guidance:
//! * application errors surface early (Observation 11), so don't checkpoint
//!   in the first hour of a job whose executable has a history of
//!   application-error interruptions;
//! * job *size* — not length — drives system-failure vulnerability
//!   (Observation 10), so wide jobs need precautionary checkpointing;
//! * a job resubmitted after consecutive interruptions is at elevated risk
//!   (Observation 9).
//!
//! ```text
//! cargo run --release --example checkpoint_advisor
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::analysis::ResubmissionStats;
use bgp_coanalysis::coanalysis::CoAnalysis;
use bgp_coanalysis::coanalysis::CoAnalysisResult;

/// A job about to be submitted.
struct PlannedJob {
    name: &'static str,
    size_midplanes: u32,
    planned_hours: f64,
    prior_consecutive_interruptions: usize,
    prior_app_error_history: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::small_test(11);
    config.days = 60;
    config.num_execs = 2_500;
    println!(
        "learning failure model from {} days of logs...\n",
        config.days
    );
    let out = Simulation::new(config)?.run();
    let result = CoAnalysis::default().run(&out.ras, &out.jobs);

    let jobs = [
        PlannedJob {
            name: "debug run of a fresh port",
            size_midplanes: 1,
            planned_hours: 0.25,
            prior_consecutive_interruptions: 2,
            prior_app_error_history: true,
        },
        PlannedJob {
            name: "production climate sweep",
            size_midplanes: 8,
            planned_hours: 6.0,
            prior_consecutive_interruptions: 0,
            prior_app_error_history: false,
        },
        PlannedJob {
            name: "capability turbulence run",
            size_midplanes: 64,
            planned_hours: 2.0,
            prior_consecutive_interruptions: 1,
            prior_app_error_history: false,
        },
    ];
    for job in &jobs {
        advise(&result, job);
    }
    Ok(())
}

fn advise(result: &CoAnalysisResult, job: &PlannedJob) {
    println!(
        "== {} ({} midplanes, {:.1} h planned) ==",
        job.name, job.size_midplanes, job.planned_hours
    );

    // Size-class interruption rate from the Table VI matrix.
    let rows = result.vulnerability.table.row_summary();
    let row = bgp_coanalysis::coanalysis::analysis::vulnerability::SIZE_ROWS
        .iter()
        .position(|&s| s == job.size_midplanes)
        .unwrap_or(0);
    let (_, _, size_rate) = rows[row];
    println!(
        "  system-interruption rate at this size: {:.2}%",
        100.0 * size_rate
    );

    // Resubmission risk (Figure 7).
    let k = job.prior_consecutive_interruptions.clamp(0, 3);
    if k > 0 {
        let counts = if job.prior_app_error_history {
            &result.vulnerability.resubmission.application
        } else {
            &result.vulnerability.resubmission.system
        };
        if let Some(p) = ResubmissionStats::probability(counts, k) {
            println!(
                "  resubmission after {k} consecutive interruption(s): historical re-interrupt rate {:.0}%",
                100.0 * p
            );
        }
    }

    // The recommendation.
    let early_risky =
        job.prior_app_error_history && result.vulnerability.app_interruptions_first_hour > 0.5;
    let wide = job.size_midplanes >= 32;
    println!("  advice:");
    if early_risky {
        println!(
            "   - delay the first checkpoint past the first hour: {:.0}% of application-error \
             interruptions strike before then, and a checkpoint of a buggy run preserves nothing \
             worth keeping (Observation 11)",
            100.0 * result.vulnerability.app_interruptions_first_hour
        );
    }
    if wide {
        // Fitted MTTI gives the natural checkpoint cadence anchor.
        if let Some(mtti) = result.interruption.system.mtti() {
            // Young's approximation with a nominal 5-minute checkpoint cost.
            let interval = (2.0 * 300.0 * mtti).sqrt();
            println!(
                "   - wide job: size dominates vulnerability (Observation 10); checkpoint roughly \
                 every {:.0} min (Young's rule with MTTI {:.1} h)",
                interval / 60.0,
                mtti / 3600.0
            );
        }
    } else if !job.prior_app_error_history && k == 0 {
        println!(
            "   - narrow job with clean history: interruption probability {:.2}%; a single \
             end-of-run result write is enough",
            100.0 * size_rate
        );
    }
    if k >= 2 && !job.prior_app_error_history {
        println!(
            "   - two+ consecutive system interruptions: ask operations whether the previous \
             partition is healthy before resubmitting (Observation 9, category 1)"
        );
    }
    if k >= 1 && job.prior_app_error_history {
        println!(
            "   - repeated application errors: debug before resubmitting — risk grows with each \
             failed attempt (Observation 9, category 2)"
        );
    }
    println!();
}
