//! Live monitoring: replay a RAS stream through the *online* analyzer, as a
//! control-room deployment would, after learning per-code impact verdicts
//! from a historical window.
//!
//! Phase 1 (offline): co-analyze the first half of the logs to learn which
//! FATAL codes really interrupt jobs.
//! Phase 2 (online): stream the second half record-by-record; dedupe storms
//! in real time and raise warnings only for codes that matter.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::stream::{OnlineAnalyzer, StreamDecision};
use bgp_coanalysis::coanalysis::{AnalysisSet, CoAnalysis, StageId};
use bgp_coanalysis::raslog::RasLog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::small_test(31);
    config.days = 40;
    config.num_execs = 1_600;
    println!("simulating {} days...", config.days);
    let out = Simulation::new(config)?.run();

    // --- split the window in half ---
    let (start, end) = out
        .ras
        .time_span()
        .ok_or("simulation produced an empty RAS log")?;
    let mid = start + bgp_model_duration_half(start, end);
    let history = RasLog::from_records(
        out.ras
            .records()
            .iter()
            .filter(|r| r.event_time < mid)
            .copied()
            .collect(),
    );
    let history_jobs = out.jobs.filtered(|j| j.end_time < mid);

    // --- phase 1: learn impact verdicts offline ---
    println!(
        "phase 1: learning impact verdicts from {} historical records / {} jobs",
        history.len(),
        history_jobs.len()
    );
    // Only the impact classifier is needed — the stage graph skips the
    // characterization passes entirely.
    let trained = CoAnalysis::default().run_selected(
        &history,
        &history_jobs,
        AnalysisSet::of(&[StageId::Impact]),
    );
    let impact = trained.impact.unwrap_or_default();
    let nonfatal = impact.count(bgp_coanalysis::coanalysis::classify::CodeImpact::NonFatal);
    println!(
        "  learned verdicts for {} codes ({} non-fatal in practice)\n",
        impact.per_code.len(),
        nonfatal
    );

    // --- phase 2: stream the live half ---
    let mut naive = OnlineAnalyzer::new();
    let mut informed = OnlineAnalyzer::new().with_impact(impact);
    let mut merged_t = 0u64;
    let mut merged_s = 0u64;
    for r in out.ras.records().iter().filter(|r| r.event_time >= mid) {
        match informed.push(r) {
            StreamDecision::MergedTemporal => merged_t += 1,
            StreamDecision::MergedSpatial => merged_s += 1,
            _ => {}
        }
        naive.push(r);
    }
    println!("phase 2: streamed {} live records", informed.records_in());
    println!(
        "  fatal records: {}  -> independent events: {} (compression {:.2}%)",
        informed.fatal_in(),
        informed.events_out(),
        100.0 * informed.compression()
    );
    println!("  merged online: {merged_t} temporal, {merged_s} spatial");
    println!(
        "  warnings: severity-only monitor {} vs impact-informed monitor {}",
        naive.warnings(),
        informed.warnings()
    );
    println!(
        "  -> the learned verdicts silence {} warning(s) on the live stream",
        naive.warnings() - informed.warnings()
    );
    Ok(())
}

/// Half the span between two timestamps.
fn bgp_model_duration_half(
    start: bgp_coanalysis::bgp_model::Timestamp,
    end: bgp_coanalysis::bgp_model::Timestamp,
) -> bgp_coanalysis::bgp_model::Duration {
    bgp_coanalysis::bgp_model::Duration::seconds((end - start).as_secs() / 2)
}
