//! Live monitoring: replay a RAS stream through the *daemon*, as a
//! control-room deployment would, after learning per-code impact verdicts
//! from a historical window.
//!
//! Phase 1 (offline): co-analyze the first half of the logs to learn which
//! FATAL codes really interrupt jobs.
//! Phase 2 (online): start a `bgp-serve` daemon on loopback with those
//! verdicts loaded, stream the second half over the line-delimited TCP
//! ingest protocol, scrape `/metrics` and `/events` over HTTP like a
//! monitoring stack would, then shut the daemon down gracefully and check
//! its final tallies against a single reference analyzer.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use bgp_coanalysis::bgp_serve::{ServeConfig, Server};
use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::stream::OnlineAnalyzer;
use bgp_coanalysis::coanalysis::{AnalysisSet, CoAnalysis, StageId};
use bgp_coanalysis::raslog::{format_record, RasRecord};
use std::io::{Read, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SimConfig::small_test(31);
    config.days = 40;
    config.num_execs = 1_600;
    println!("simulating {} days...", config.days);
    let out = Simulation::new(config)?.run();

    // --- split the window in half ---
    let (start, end) = out
        .ras
        .time_span()
        .ok_or("simulation produced an empty RAS log")?;
    let mid = start + half_span(start, end);
    let history = bgp_coanalysis::raslog::RasLog::from_records(
        out.ras
            .records()
            .iter()
            .filter(|r| r.event_time < mid)
            .copied()
            .collect(),
    );
    let history_jobs = out.jobs.filtered(|j| j.end_time < mid);
    let live: Vec<RasRecord> = out
        .ras
        .records()
        .iter()
        .filter(|r| r.event_time >= mid)
        .copied()
        .collect();

    // --- phase 1: learn impact verdicts offline ---
    println!(
        "phase 1: learning impact verdicts from {} historical records / {} jobs",
        history.len(),
        history_jobs.len()
    );
    // Only the impact classifier is needed — the stage graph skips the
    // characterization passes entirely.
    let trained = CoAnalysis::default().run_selected(
        &history,
        &history_jobs,
        AnalysisSet::of(&[StageId::Impact]),
    );
    let impact = trained.impact.unwrap_or_default();
    let nonfatal = impact.count(bgp_coanalysis::coanalysis::classify::CodeImpact::NonFatal);
    println!(
        "  learned verdicts for {} codes ({} non-fatal in practice)\n",
        impact.per_code.len(),
        nonfatal
    );

    // --- phase 2: daemon on loopback, verdicts loaded ---
    let cfg = ServeConfig {
        ingest_addr: "127.0.0.1:0".to_owned(),
        http_addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        impact: Some(impact.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(&cfg)?;
    println!(
        "phase 2: daemon up — ingest {}, http {}",
        server.ingest_addr(),
        server.http_addr()
    );

    // Stream the live half over TCP, exactly as `cat log | nc` would.
    let mut ingest = TcpStream::connect(server.ingest_addr())?;
    for r in &live {
        writeln!(ingest, "{}", format_record(r))?;
    }
    drop(ingest); // EOF: the daemon flushes and the connection drains

    // Wait until every sent record is analyzed, then scrape like Prometheus.
    let http_addr = server.http_addr();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while (server.counters().records_in as usize) < live.len() {
        if std::time::Instant::now() > deadline {
            return Err("daemon did not drain the live stream in time".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let metrics = http_get(http_addr, "/metrics")?;
    let events = http_get(http_addr, "/events")?;
    let summary = http_get(http_addr, "/summary")?;
    println!("  GET /summary -> {summary}");
    println!(
        "  GET /events  -> {} recent independent events",
        events.matches("\"recid\"").count()
    );
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("ingest_records_total")
                || l.starts_with("events_out_total")
                || l.starts_with("warnings_total"))
    }) {
        println!("  GET /metrics -> {line}");
    }

    // Graceful shutdown over HTTP; wait() drains and reports.
    let _ = http_get(http_addr, "/shutdown")?;
    let summary = server.wait();
    println!("\n{summary}\n");

    // --- cross-check against a single reference analyzer ---
    let mut naive = OnlineAnalyzer::new();
    let mut informed = OnlineAnalyzer::new().with_impact(impact);
    for r in &live {
        naive.push(r);
        informed.push(r);
    }
    let c = summary.counters;
    assert_eq!(c.records_in, informed.counters().records_in);
    assert_eq!(c.events_out, informed.counters().events_out);
    assert_eq!(c.warnings, informed.counters().warnings);
    println!(
        "  daemon ({} shards) matches the single-analyzer reference exactly",
        summary.shards
    );
    println!(
        "  -> the learned verdicts silence {} warning(s) on the live stream",
        naive.warnings() - informed.warnings()
    );
    Ok(())
}

/// Minimal HTTP client: request, read to EOF, split off the head.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&response);
    Ok(body.to_owned())
}

/// Half the span between two timestamps.
fn half_span(
    start: bgp_coanalysis::bgp_model::Timestamp,
    end: bgp_coanalysis::bgp_model::Timestamp,
) -> bgp_coanalysis::bgp_model::Duration {
    bgp_coanalysis::bgp_model::Duration::seconds((end - start).as_secs() / 2)
}
