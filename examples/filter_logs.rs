//! File-based workflow: write the simulated logs to disk in their native
//! text formats, read them back with the parallel byte parsers (caching the
//! parsed form as `.bgpsnap` snapshots), run the filter stack, and write a
//! cleaned RAS log — the tool a site operator would run on real logs.
//!
//! ```text
//! cargo run --release --example filter_logs [output-dir]
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::{load, AnalysisSet, CoAnalysis, LoadOptions, StageId};
use bgp_coanalysis::joblog;
use bgp_coanalysis::raslog;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("bgp-coanalysis-demo"));
    std::fs::create_dir_all(&dir)?;

    // --- produce the "site logs" (stand-in for real CMCS/Cobalt dumps) ---
    let out = Simulation::new(SimConfig::small_test(3))?.run();
    let ras_path = dir.join("intrepid-ras.log");
    let job_path = dir.join("intrepid-jobs.log");
    {
        let mut w = BufWriter::new(File::create(&ras_path)?);
        raslog::write_log(&mut w, out.ras.records())?;
        let mut w = BufWriter::new(File::create(&job_path)?);
        joblog::write_log(&mut w, out.jobs.jobs())?;
    }
    println!(
        "wrote {} ({} records) and {} ({} jobs)",
        ras_path.display(),
        out.ras.len(),
        job_path.display(),
        out.jobs.len()
    );

    // --- read both back concurrently through the tolerant byte parsers,
    //     caching the parsed form as .bgpsnap snapshots for re-runs ---
    let opts = LoadOptions {
        snapshot_dir: Some(dir.join("snapshots")),
        ..LoadOptions::default()
    };
    let (loaded_ras, loaded_jobs) = load::load_pair(&ras_path, &job_path, &opts)?;
    println!(
        "parsed back {} RAS records ({} bad lines, snapshot {}), {} jobs ({} bad lines, snapshot {})",
        loaded_ras.log.len(),
        loaded_ras.parse_errors.len(),
        loaded_ras.snapshot,
        loaded_jobs.log.len(),
        loaded_jobs.parse_errors.len(),
        loaded_jobs.snapshot
    );
    assert_eq!(loaded_ras.log.len(), out.ras.len(), "lossless round trip");
    assert_eq!(loaded_jobs.log.len(), out.jobs.len());

    let ras = loaded_ras.log;
    let jobs = loaded_jobs.log;

    // --- run just the filter stack via the stage graph ---
    let result =
        CoAnalysis::default().run_selected(&ras, &jobs, AnalysisSet::of(&[StageId::JobRelated]));
    let s = result.filter_stats.unwrap_or_default();
    let events_final = result.events_final.unwrap_or_default();
    println!(
        "\nfilter stack: {} FATAL -> {} temporal -> {} spatial -> {} causal -> {} job-related",
        s.raw_fatal, s.after_temporal, s.after_spatial, s.after_causal, s.after_job_related
    );
    println!(
        "learned {} causal rules; {} events flagged as job-related redundancy",
        result.causal_rules.as_deref().unwrap_or_default().len(),
        result
            .job_redundant
            .iter()
            .flatten()
            .filter(|&&f| f)
            .count()
    );

    // --- write the cleaned event log: one representative record per event ---
    let clean_path = dir.join("intrepid-ras.filtered.log");
    {
        let mut w = BufWriter::new(File::create(&clean_path)?);
        writeln!(
            w,
            "# independent fatal events after temporal+spatial+causal+job-related filtering"
        )?;
        writeln!(
            w,
            "# columns: <merged record count> <representative record>"
        )?;
        let by_recid: std::collections::HashMap<u64, &raslog::RasRecord> =
            ras.records().iter().map(|r| (r.recid, r)).collect();
        for e in &events_final {
            if let Some(r) = by_recid.get(&e.first_recid) {
                writeln!(w, "{:>6}x {}", e.merged, raslog::format_record(r))?;
            }
        }
    }
    println!(
        "cleaned event log written to {} ({} events standing for {} records)",
        clean_path.display(),
        events_final.len(),
        s.raw_fatal
    );
    Ok(())
}
