//! File-based workflow: write the simulated logs to disk in their native
//! text formats, read them back with the streaming parsers, run the filter
//! stack, and write a cleaned RAS log — the tool a site operator would run
//! on real logs.
//!
//! ```text
//! cargo run --release --example filter_logs [output-dir]
//! ```

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::{AnalysisSet, CoAnalysis, StageId};
use bgp_coanalysis::joblog::{self, JobReader};
use bgp_coanalysis::raslog::{self, RasReader};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("bgp-coanalysis-demo"));
    std::fs::create_dir_all(&dir)?;

    // --- produce the "site logs" (stand-in for real CMCS/Cobalt dumps) ---
    let out = Simulation::new(SimConfig::small_test(3))?.run();
    let ras_path = dir.join("intrepid-ras.log");
    let job_path = dir.join("intrepid-jobs.log");
    {
        let mut w = BufWriter::new(File::create(&ras_path)?);
        raslog::write_log(&mut w, out.ras.records())?;
        let mut w = BufWriter::new(File::create(&job_path)?);
        joblog::write_log(&mut w, out.jobs.jobs())?;
    }
    println!(
        "wrote {} ({} records) and {} ({} jobs)",
        ras_path.display(),
        out.ras.len(),
        job_path.display(),
        out.jobs.len()
    );

    // --- read them back through the tolerant streaming parsers ---
    let (ras_records, ras_errors) =
        RasReader::new(BufReader::new(File::open(&ras_path)?)).read_tolerant();
    let (job_records, job_errors) =
        JobReader::new(BufReader::new(File::open(&job_path)?)).read_tolerant();
    println!(
        "parsed back {} RAS records ({} bad lines), {} jobs ({} bad lines)",
        ras_records.len(),
        ras_errors.len(),
        job_records.len(),
        job_errors.len()
    );
    assert_eq!(ras_records.len(), out.ras.len(), "lossless round trip");
    assert_eq!(job_records.len(), out.jobs.len());

    let ras = raslog::RasLog::from_records(ras_records);
    let jobs = joblog::JobLog::from_jobs(job_records);

    // --- run just the filter stack via the stage graph ---
    let result =
        CoAnalysis::default().run_selected(&ras, &jobs, AnalysisSet::of(&[StageId::JobRelated]));
    let s = result.filter_stats.unwrap_or_default();
    let events_final = result.events_final.unwrap_or_default();
    println!(
        "\nfilter stack: {} FATAL -> {} temporal -> {} spatial -> {} causal -> {} job-related",
        s.raw_fatal, s.after_temporal, s.after_spatial, s.after_causal, s.after_job_related
    );
    println!(
        "learned {} causal rules; {} events flagged as job-related redundancy",
        result.causal_rules.as_deref().unwrap_or_default().len(),
        result
            .job_redundant
            .iter()
            .flatten()
            .filter(|&&f| f)
            .count()
    );

    // --- write the cleaned event log: one representative record per event ---
    let clean_path = dir.join("intrepid-ras.filtered.log");
    {
        let mut w = BufWriter::new(File::create(&clean_path)?);
        writeln!(
            w,
            "# independent fatal events after temporal+spatial+causal+job-related filtering"
        )?;
        writeln!(
            w,
            "# columns: <merged record count> <representative record>"
        )?;
        let by_recid: std::collections::HashMap<u64, &raslog::RasRecord> =
            ras.records().iter().map(|r| (r.recid, r)).collect();
        for e in &events_final {
            if let Some(r) = by_recid.get(&e.first_recid) {
                writeln!(w, "{:>6}x {}", e.merged, raslog::format_record(r))?;
            }
        }
    }
    println!(
        "cleaned event log written to {} ({} events standing for {} records)",
        clean_path.display(),
        events_final.len(),
        s.raw_fatal
    );
    Ok(())
}
