//! `coctl` — co-analysis control: the operator-facing CLI.
//!
//! ```text
//! coctl simulate --days 30 --seed 7 --out DIR     # produce synthetic site logs
//! coctl summary RAS.log                           # profile a RAS log
//! coctl analyze RAS.log JOBS.log                  # full co-analysis -> observations
//! coctl filter RAS.log JOBS.log -o CLEAN.log      # write the deduplicated event log
//! coctl outages RAS.log JOBS.log                  # reconstructed outage episodes
//! coctl serve --ingest ADDR --http ADDR           # streaming daemon (alias of coserved)
//! ```
//!
//! Log-reading subcommands accept `--snapshot DIR`: parsed logs are cached
//! there as `.bgpsnap` files and transparently reused on re-runs (stale or
//! corrupt snapshots fall back to re-parsing and are rewritten).
//!
//! Log-reading subcommands also accept `--format {bgp,bgq,syslog,cassette}`
//! to select the source adapter (default `bgp`); only the BG/P format is
//! snapshot-cached. `--mmap` memory-maps inputs instead of buffering them
//! (zero-copy over the page cache; silently falls back where unsupported).
//!
//! `analyze --append FILE` folds extra log files into an already-analyzed
//! base through the incremental stage graph: only stages whose inputs
//! changed are re-run, and the printed report is bit-identical to a
//! one-shot run over the concatenated logs.
//!
//! Exit codes: 0 success, 1 usage error, 2 I/O or parse failure,
//! 3 unknown subcommand or unknown `--format` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp_coanalysis::bgp_serve::{self, ServeConfig, ServeError, StageTimer};
use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::analysis::repair::{reconstruct_outages, summarize};
use bgp_coanalysis::coanalysis::{load, AnalysisSet, CoAnalysis, Event, StageId, StageObserver};
use bgp_coanalysis::coanalysis::{AnalysisContext, AppendBatch, CoAnalysisConfig};
use bgp_coanalysis::coanalysis::{CoAnalysisResult, DeltaSession};
use bgp_coanalysis::coanalysis::{LoadOptions, LogFormat, SnapshotStatus};
use bgp_coanalysis::joblog::{self, JobLog};
use bgp_coanalysis::raslog::{self, LogSummary, RasLog};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing subcommand");
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "simulate" => cmd_simulate(rest),
        "summary" => cmd_summary(rest),
        "analyze" => cmd_analyze(rest),
        "filter" => cmd_filter(rest),
        "outages" => cmd_outages(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => return usage(""),
        other => {
            // Distinct exit code so scripts can tell a typo'd subcommand
            // from an ordinary usage error.
            let _ = usage(&format!("unknown subcommand {other:?}"));
            return ExitCode::from(3);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => usage(&msg),
        Err(CliError::Io(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::UnknownFormat(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
    }
}

enum CliError {
    Usage(String),
    Io(String),
    /// Unknown `--format` value: exit 3, like an unknown subcommand, so
    /// scripts probing adapter support can tell it from a usage error.
    UnknownFormat(String),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e.to_string())
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "coctl — RAS/job-log co-analysis for Blue Gene/P-style systems\n\
         \n\
         usage:\n\
         \x20 coctl simulate [--days N] [--seed S] [--out DIR]\n\
         \x20 coctl summary RAS.log [--snapshot DIR] [--format F]\n\
         \x20 coctl analyze RAS.log JOBS.log [--snapshot DIR] [--format F] [--timings]\n\
         \x20 \x20 \x20 \x20 \x20 \x20 \x20 [--threads N] [--impact-out FILE] [--fda]\n\
         \x20 \x20 \x20 \x20 \x20 \x20 \x20 [--append RAS2.log]... [--append-jobs JOBS2.log]...\n\
         \x20 coctl filter RAS.log JOBS.log -o CLEAN.log [--snapshot DIR] [--format F]\n\
         \x20 coctl outages RAS.log JOBS.log [--snapshot DIR] [--format F]\n\
         \x20 coctl serve [--ingest ADDR] [--http ADDR] [--shards N] [--impact FILE] ...\n\
         \n\
         --format F selects the log source adapter: bgp (default), bgq,\n\
         syslog, or cassette (.bgpcas recording, replayed deterministically).\n\
         --snapshot DIR caches parsed logs as .bgpsnap files in DIR and\n\
         reuses them on re-runs (stale snapshots are re-parsed and rewritten).\n\
         --mmap memory-maps input files instead of buffering them.\n\
         analyze --append folds each extra file into the base analysis\n\
         incrementally; the report matches a one-shot run over the\n\
         concatenation bit for bit. With --timings, per-stage wall clock\n\
         goes to stderr for each fold (only dirty stages appear).\n\
         analyze --fda appends the dimensional root-cause table: frequent\n\
         (errcode, midplane, user, project, executable, size) combinations\n\
         ranked by lift over the interruption base rate.\n\
         serve runs the streaming daemon (see `coserved --help` for its flags)."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Split the `--snapshot DIR`, `--format NAME`, and `--mmap` flags out of
/// `args`, leaving the rest in order.
fn snapshot_opts(args: &[String]) -> Result<(Vec<String>, LoadOptions), CliError> {
    let mut rest = Vec::new();
    let mut opts = LoadOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--mmap" {
            opts.mmap = true;
        } else if a == "--snapshot" {
            let dir = it
                .next()
                .ok_or_else(|| CliError::Usage("--snapshot needs a directory".into()))?;
            opts.snapshot_dir = Some(PathBuf::from(dir));
        } else if a == "--format" {
            let name = it
                .next()
                .ok_or_else(|| CliError::Usage("--format needs a format name".into()))?;
            opts.format = name
                .parse::<LogFormat>()
                .map_err(|e| CliError::UnknownFormat(e.to_string()))?;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, opts))
}

fn report_load(path: &str, what: &str, n_errors: usize, status: &SnapshotStatus) {
    if n_errors > 0 {
        eprintln!("note: skipped {n_errors} malformed {what} lines in {path}");
    }
    if *status != SnapshotStatus::Disabled {
        eprintln!("note: {path}: snapshot {status}");
    }
}

fn load_ras(path: &str, opts: &LoadOptions) -> Result<RasLog, CliError> {
    let loaded = load::load_ras(Path::new(path), opts).map_err(|e| CliError::Io(e.to_string()))?;
    report_load(path, "RAS", loaded.parse_errors.len(), &loaded.snapshot);
    if loaded.log.is_empty() {
        return Err(CliError::Io(format!("{path}: no parsable RAS records")));
    }
    Ok(loaded.log)
}

/// Load both logs concurrently (two scoped threads) — every co-analysis
/// subcommand needs both, and neither depends on the other.
fn load_both(
    ras_path: &str,
    jobs_path: &str,
    opts: &LoadOptions,
) -> Result<(RasLog, JobLog), CliError> {
    let (ras, jobs) = load::load_pair(Path::new(ras_path), Path::new(jobs_path), opts)
        .map_err(|e| CliError::Io(e.to_string()))?;
    report_load(ras_path, "RAS", ras.parse_errors.len(), &ras.snapshot);
    report_load(jobs_path, "job", jobs.parse_errors.len(), &jobs.snapshot);
    if ras.log.is_empty() {
        return Err(CliError::Io(format!("{ras_path}: no parsable RAS records")));
    }
    if jobs.log.is_empty() {
        return Err(CliError::Io(format!(
            "{jobs_path}: no parsable job records"
        )));
    }
    Ok((ras.log, jobs.log))
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let mut days = 30u32;
    let mut seed = 7u64;
    let mut out = PathBuf::from("site-logs");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--days" => {
                days = next_parsed(&mut it, "--days")?;
            }
            "--seed" => {
                seed = next_parsed(&mut it, "--seed")?;
            }
            "--out" => {
                out = PathBuf::from(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--out needs a path".into()))?,
                );
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let mut cfg = SimConfig::intrepid_2009(seed);
    cfg.days = days;
    cfg.num_execs = (9_664u64 * u64::from(days) / 237).max(50) as u32;
    cfg.noise_scale = 0.05; // keep the files shippable
    eprintln!("simulating {days} days (seed {seed})...");
    let sim = Simulation::new(cfg)
        .map_err(|e| CliError::Usage(e.to_string()))?
        .run();
    std::fs::create_dir_all(&out)?;
    let ras_path = out.join("ras.log");
    let jobs_path = out.join("jobs.log");
    let mut w = BufWriter::new(File::create(&ras_path)?);
    raslog::write_log(&mut w, sim.ras.records())?;
    let mut w = BufWriter::new(File::create(&jobs_path)?);
    joblog::write_log(&mut w, sim.jobs.jobs())?;
    println!(
        "wrote {} ({} records) and {} ({} jobs)",
        ras_path.display(),
        sim.ras.len(),
        jobs_path.display(),
        sim.jobs.len()
    );
    Ok(())
}

fn next_parsed<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, CliError> {
    it.next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a valid value")))
}

fn cmd_summary(args: &[String]) -> Result<(), CliError> {
    let (rest, opts) = snapshot_opts(args)?;
    let [path] = &rest[..] else {
        return Err(CliError::Usage("summary needs exactly one RAS log".into()));
    };
    let ras = load_ras(path, &opts)?;
    let s = LogSummary::of(&ras, 5);
    println!("{s}");
    println!("top FATAL codes:");
    let cat = raslog::Catalog::standard();
    for (code, n) in &s.top_fatal_codes {
        println!("  {:<34} {n}", cat.info(*code).name);
    }
    println!("noisiest midplanes:");
    for (m, n) in &s.noisiest_midplanes {
        println!("  {m}  {n} records");
    }
    Ok(())
}

/// One `--append`/`--append-jobs` occurrence, kept in flag order so
/// batches fold in the sequence the operator wrote them.
enum AppendSpec {
    Ras(String),
    Jobs(String),
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let (rest, opts) = snapshot_opts(args)?;
    let mut timings = false;
    let mut fda = false;
    let mut impact_out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut appends: Vec<AppendSpec> = Vec::new();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timings" => timings = true,
            "--fda" => fda = true,
            "--append" => {
                appends.push(AppendSpec::Ras(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--append needs a RAS log path".into()))?
                        .clone(),
                ));
            }
            "--append-jobs" => {
                appends.push(AppendSpec::Jobs(
                    it.next()
                        .ok_or_else(|| {
                            CliError::Usage("--append-jobs needs a job log path".into())
                        })?
                        .clone(),
                ));
            }
            "--impact-out" => {
                impact_out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        CliError::Usage("--impact-out needs a path".into())
                    })?));
            }
            "--threads" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                let n: usize = n
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--threads: bad count {n:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be >= 1".into()));
                }
                threads = Some(n);
            }
            _ => positional.push(a),
        }
    }
    let [ras_path, jobs_path] = positional[..] else {
        return Err(CliError::Usage(
            "analyze needs RAS.log and JOBS.log (+ optional --timings, --threads N, \
             --impact-out FILE, --fda)"
                .into(),
        ));
    };
    let (ras, jobs) = load_both(ras_path, jobs_path, &opts)?;
    let mut pipeline = CoAnalysis::default();
    if let Some(n) = threads {
        pipeline.config.threads = n;
    }
    let registry = bgp_serve::Registry::new();
    let r = if !appends.is_empty() {
        analyze_with_appends(pipeline.config, &ras, jobs, &appends, &opts, timings)?
    } else if timings {
        // Observed run: same products, plus per-stage wall-clock published
        // into the same registry kind the daemon serves at /metrics.
        let timer = StageTimer::new(&registry);
        let ctx = AnalysisContext::new(&ras, &jobs);
        pipeline
            .run_on_observed(&ctx, AnalysisSet::all(), &timer)
            .into_result()
            .ok_or_else(|| CliError::Io("full analysis set left a product empty".into()))
            .inspect(|_| print!("{}", timer.report()))?
    } else {
        pipeline.run(&ras, &jobs)
    };
    if let Some(path) = impact_out {
        let mut w = BufWriter::new(File::create(&path)?);
        bgp_serve::write_impact(&mut w, &r.impact)?;
        w.flush()?;
        println!(
            "wrote {} impact verdicts to {} (load with coserved --impact)",
            r.impact.per_code.len(),
            path.display()
        );
    }
    let s = &r.filter_stats;
    println!(
        "filtering: {} FATAL -> {} events (-{:.2}%), job-related -> {} (-{:.2}%)",
        s.raw_fatal,
        s.after_causal,
        100.0 * s.ts_causal_compression(),
        s.after_job_related,
        100.0 * s.job_related_compression()
    );
    println!(
        "interruptions: {} jobs ({} system / {} application by cause)\n",
        r.matching.interrupted_jobs(),
        r.interruption.system.count,
        r.interruption.application.count
    );
    println!("{}", r.observations());
    if fda {
        println!("{}", r.fda);
    }
    Ok(())
}

/// Prime a [`DeltaSession`] on the base pair, then fold each `--append`
/// file through it in flag order. Only dirty stages re-run per batch; the
/// final report is bit-identical to a one-shot run over the concatenation
/// (the `delta_equivalence` suite and the CI smoke both enforce this).
///
/// With `timings`, each fold gets a fresh [`StageTimer`] and its per-stage
/// wall clock goes to stderr (stdout stays byte-comparable with a one-shot
/// run); only the stages the delta actually re-ran appear.
///
/// Unlike the base pair, append files may be empty — an uneventful day is
/// a legitimate increment and re-runs nothing.
fn analyze_with_appends(
    config: CoAnalysisConfig,
    ras: &RasLog,
    jobs: JobLog,
    appends: &[AppendSpec],
    opts: &LoadOptions,
    timings: bool,
) -> Result<CoAnalysisResult, CliError> {
    let (mut session, base) = DeltaSession::new(config, ras, jobs);
    let mut last = base;
    for (fold, spec) in appends.iter().enumerate() {
        let (path, batch) = match spec {
            AppendSpec::Ras(path) => {
                let loaded = load::load_ras(Path::new(path), opts)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                report_load(path, "RAS", loaded.parse_errors.len(), &loaded.snapshot);
                let batch = AppendBatch {
                    ras: loaded.log.records().to_vec(),
                    jobs: Vec::new(),
                };
                (path, batch)
            }
            AppendSpec::Jobs(path) => {
                let loaded = load::load_jobs(Path::new(path), opts)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                report_load(path, "job", loaded.parse_errors.len(), &loaded.snapshot);
                let batch = AppendBatch {
                    ras: Vec::new(),
                    jobs: loaded.log.jobs().to_vec(),
                };
                (path, batch)
            }
        };
        let (n_ras, n_jobs) = (batch.ras.len(), batch.jobs.len());
        let registry = bgp_serve::Registry::new();
        let timer = timings.then(|| StageTimer::new(&registry));
        let (result, report) =
            session.append_with_observer(batch, timer.as_ref().map(|t| t as &dyn StageObserver));
        // Stderr, so stdout stays byte-comparable with a one-shot run.
        eprintln!(
            "note: {path}: +{n_ras} RAS records, +{n_jobs} job rows; \
             re-ran {} of {} stages, {} changed",
            report.reran.stages().len(),
            StageId::ALL.len(),
            report.changed.stages().len()
        );
        if let Some(timer) = &timer {
            eprint!("fold {} {}", fold + 1, timer.report());
        }
        last = result;
    }
    Ok(last)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let cfg = ServeConfig::from_args(args).map_err(|e| CliError::Usage(e.to_string()))?;
    bgp_serve::run(&cfg, &mut std::io::stdout()).map_err(|e| match e {
        ServeError::Config(_) => CliError::Usage(e.to_string()),
        other => CliError::Io(other.to_string()),
    })?;
    Ok(())
}

fn cmd_filter(args: &[String]) -> Result<(), CliError> {
    // Positional: RAS JOBS; flags: -o OUT, --snapshot DIR.
    let (rest, opts) = snapshot_opts(args)?;
    let mut positional: Vec<&String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "-o" || a == "--out" {
            out = Some(PathBuf::from(
                it.next()
                    .ok_or_else(|| CliError::Usage("-o needs a path".into()))?,
            ));
        } else {
            positional.push(a);
        }
    }
    let [ras_path, jobs_path] = positional[..] else {
        return Err(CliError::Usage(
            "filter needs RAS.log and JOBS.log (+ -o OUT)".into(),
        ));
    };
    let out = out.ok_or_else(|| CliError::Usage("filter needs -o OUT".into()))?;
    let (ras, jobs) = load_both(ras_path, jobs_path, &opts)?;
    // Only the filter stack is needed here — skip classification and
    // characterization entirely.
    let r =
        CoAnalysis::default().run_selected(&ras, &jobs, AnalysisSet::of(&[StageId::JobRelated]));
    let events_final = r.events_final.unwrap_or_default();
    let raw_fatal = r.filter_stats.map_or(0, |s| s.raw_fatal);
    write_clean_log(&out, &ras, &events_final)?;
    println!(
        "{}: {} independent events standing for {} FATAL records",
        out.display(),
        events_final.len(),
        raw_fatal
    );
    Ok(())
}

fn write_clean_log(path: &Path, ras: &RasLog, events_final: &[Event]) -> Result<(), CliError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "# independent fatal events (temporal+spatial+causal+job-related filtered)"
    )?;
    let by_recid: std::collections::HashMap<u64, &raslog::RasRecord> =
        ras.records().iter().map(|rec| (rec.recid, rec)).collect();
    for e in events_final {
        if let Some(rec) = by_recid.get(&e.first_recid) {
            writeln!(w, "{:>6}x {}", e.merged, raslog::format_record(rec))?;
        }
    }
    Ok(())
}

fn cmd_outages(args: &[String]) -> Result<(), CliError> {
    let (rest, opts) = snapshot_opts(args)?;
    let [ras_path, jobs_path] = &rest[..] else {
        return Err(CliError::Usage("outages needs RAS.log and JOBS.log".into()));
    };
    let (ras, jobs) = load_both(ras_path, jobs_path, &opts)?;
    // Outage reconstruction only needs filtering + matching.
    let r = CoAnalysis::default().run_selected(&ras, &jobs, AnalysisSet::of(&[StageId::Matching]));
    let events = r.events.unwrap_or_default();
    let matching = r.matching.unwrap_or_default();
    let episodes = reconstruct_outages(&events, &matching, &jobs);
    let cat = raslog::Catalog::standard();
    println!("reconstructed outage episodes (chains of >= 2 interruptions):");
    for e in &episodes {
        println!(
            "  {}  {:<30} {}  >= {:>6} s  {} victims{}",
            e.midplane,
            cat.info(e.errcode).name,
            e.start,
            e.min_duration_secs(),
            e.victims,
            if e.cleared_by.is_none() {
                "  (never seen to clear)"
            } else {
                ""
            }
        );
    }
    let s = summarize(&episodes);
    println!(
        "\n{} episodes, median lower-bound duration {:?} s, {} victims total, {} censored",
        s.episodes, s.median_min_duration_secs, s.total_victims, s.censored
    );
    Ok(())
}
