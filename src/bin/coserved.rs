//! `coserved` — the standalone streaming co-analysis daemon.
//!
//! Binds a line-delimited TCP ingest socket and a minimal HTTP front-end,
//! fans records out to sharded online analyzers, and serves live results:
//!
//! ```text
//! coserved --ingest 127.0.0.1:7070 --http 127.0.0.1:7071 --shards 4
//! cat ras.log | nc 127.0.0.1 7070        # stream records in
//! curl http://127.0.0.1:7071/summary     # watch the merged counters
//! curl http://127.0.0.1:7071/shutdown    # drain and exit
//! ```
//!
//! `coctl serve` is an alias for this binary. Exit codes: 0 success,
//! 1 usage error, 2 runtime failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp_coanalysis::bgp_serve::{self, ServeConfig, ServeError};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "coserved — streaming RAS co-analysis daemon\n\
         \n\
         usage: coserved [flags]\n\
         \x20 --ingest ADDR      TCP ingest listen address   (default 127.0.0.1:7070)\n\
         \x20 --http ADDR        HTTP listen address         (default 127.0.0.1:7071)\n\
         \x20 --shards N         analyzer shards             (default 2)\n\
         \x20 --queue-cap N      per-shard queue capacity    (default 4096)\n\
         \x20 --ring N           /events ring capacity       (default 256)\n\
         \x20 --max-line BYTES   ingest line length limit    (default 65536)\n\
         \x20 --impact FILE      offline impact verdicts (coctl analyze --impact-out)\n\
         \x20 --tail FILE        also tail FILE for records\n\
         \x20 --format NAME      ingest line format          (default bgp; or syslog)\n\
         \x20 --replay FILE      replay a .bgpcas cassette, then drain and exit\n\
         \x20 --record FILE      record ingested chunks to a .bgpcas cassette\n\
         \x20 --temporal-secs S  temporal dedup threshold    (default 300)\n\
         \x20 --spatial-secs S   spatial dedup threshold     (default 300)\n\
         \x20 --full-analysis    serve the complete co-analysis at /analysis,\n\
         \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20  folded incrementally per ingest batch\n\
         \x20 --jobs FILE        job log for --full-analysis\n\
         \x20 --threads N        worker threads for the --full-analysis folds\n\
         \n\
         endpoints: GET /healthz /metrics /events /summary /analysis /shutdown"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .first()
        .is_some_and(|a| a == "--help" || a == "-h" || a == "help")
    {
        usage();
        return ExitCode::SUCCESS;
    }
    let cfg = match ServeConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match bgp_serve::run(&cfg, &mut std::io::stdout()) {
        Ok(_summary) => ExitCode::SUCCESS,
        Err(e @ ServeError::Config(_)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
