//! # `bgp-coanalysis` — facade crate
//!
//! Re-exports the whole workspace behind one dependency, so examples and
//! downstream users can write `use bgp_coanalysis::coanalysis::...`.
//!
//! See the [README](https://example.org/bgp-coanalysis) for a tour, and
//! `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bgp_model;
pub use bgp_ports;
pub use bgp_serve;
pub use bgp_sim;
pub use bgp_stats;
pub use coanalysis;
pub use joblog;
pub use raslog;
