//! Cross-validation of the FDA lattice miner: a brute-force lattice
//! enumerator (no Apriori, no interning tricks, no sharding) must agree
//! with [`FdaAnalysis::compute`] exactly — same supports, same lifts,
//! same ranking — on random small tables; thread counts 1/2/7/16 must
//! agree bit-for-bit on a table large enough to clear the parallel size
//! gate; and the empty/degenerate tables must come back well-formed.
//!
//! Support monotonicity makes the brute force exact: an itemset has
//! fatal support ≥ the minimum iff all its subsets do, so "every itemset
//! of size ≤ max_level with enough fatal support" is precisely the set
//! Apriori discovers.

#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_model::{Location, Partition, Timestamp};
use bgp_coanalysis::coanalysis::analysis::fda::{
    FdaAnalysis, FdaDim, FdaItemValue, FdaItemset, FdaParams, JobDims, MIN_PARALLEL_WORK, NUM_DIMS,
    NUM_JOB_DIMS,
};
use bgp_coanalysis::coanalysis::matching::{EventCase, EventMatch, Matching};
use bgp_coanalysis::coanalysis::Event;
use bgp_coanalysis::joblog::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
use bgp_coanalysis::raslog::{Catalog, ErrCode};
use proptest::prelude::*;
use std::collections::HashMap;

fn job(job_id: u64, user: u32, project: u32, exec: u32, mp: u8, width: u32) -> JobRecord {
    JobRecord {
        job_id,
        exec: ExecId(exec),
        user: UserId(user),
        project: ProjectId(project),
        queue_time: Timestamp::from_unix(0),
        start_time: Timestamp::from_unix(10),
        end_time: Timestamp::from_unix(1_000),
        partition: Partition::contiguous(mp, width).expect("valid partition"),
        exit: ExitStatus::Completed,
    }
}

/// Three real catalog codes for the errcode dimension.
fn codes() -> [ErrCode; 3] {
    let cat = Catalog::standard();
    [
        cat.lookup("_bgp_err_kernel_panic").unwrap(),
        cat.lookup("BULK_POWER_FATAL").unwrap(),
        cat.lookup("_bgp_err_diag_netbist").unwrap(),
    ]
}

/// One event per (code, victim-set) pair; locations are irrelevant to the
/// miner, which only reads the errcode column off the event stream.
fn fixture(jobs: &[JobRecord], victims_per_event: &[(usize, Vec<u64>)]) -> (Vec<Event>, Matching) {
    let loc: Location = "R00-M0-N00-J00".parse().expect("valid location");
    let all = codes();
    let mut events = Vec::new();
    let mut per_event = Vec::new();
    for (i, (code_idx, victims)) in victims_per_event.iter().enumerate() {
        events.push(Event::synthetic(
            Timestamp::from_unix(100 + i as i64),
            loc,
            all[code_idx % all.len()],
            1,
            i as u64,
        ));
        per_event.push(EventMatch {
            victims: victims.clone(),
            running: victims.len(),
            case: if victims.is_empty() {
                EventCase::IdleLocation
            } else {
                EventCase::Interrupted
            },
        });
    }
    let _ = jobs;
    (
        events,
        Matching {
            per_event,
            job_to_event: HashMap::new(),
        },
    )
}

/// An oracle item: `(dim, raw key)`, plus the `(items, fatal, total,
/// lift)` row shape the oracle ranks.
type RawItem = (u8, u64);
type MinedRow = (Vec<RawItem>, u32, u32, f64);

/// The oracle: enumerate every itemset of size ≤ max_level outright.
/// Items are `(dim, key)` with the raw errcode as the dim-0 key — the
/// interner maps values to ids monotonically, so lex order over keys is
/// lex order over ids and the tie-break ranking agrees with the miner's.
fn brute_force(
    events: &[Event],
    matching: &Matching,
    dims: &JobDims,
    params: &FdaParams,
) -> FdaAnalysis {
    let n = dims.rows();
    let mut attributed: Vec<(u32, u16)> = Vec::new();
    for (i, em) in matching.per_event.iter().enumerate() {
        let code = events[i].errcode.0;
        for &job_id in &em.victims {
            if let Some(row) = dims.row_of(job_id) {
                attributed.push((row, code));
            }
        }
    }
    attributed.sort_unstable();
    attributed.dedup_by_key(|p| p.0);
    let n_fatal = attributed.len();
    let min_support = params.min_support(n_fatal);
    let max_level = params.max_level.min(NUM_DIMS);
    let mut analysis = FdaAnalysis {
        n_jobs: n,
        n_fatal,
        min_support,
        max_level,
        ranked: Vec::new(),
    };
    if n == 0 || n_fatal == 0 || max_level == 0 {
        return analysis;
    }

    let code_of: HashMap<u32, u16> = attributed.iter().copied().collect();
    let row_items = |row: u32| -> Vec<(u8, u64)> {
        let mut v = Vec::new();
        if let Some(&c) = code_of.get(&row) {
            v.push((0u8, u64::from(c)));
        }
        for d in 0..NUM_JOB_DIMS {
            v.push((d as u8 + 1, u64::from(dims.job_col(d)[row as usize])));
        }
        v
    };

    // Fatal support: every subset of every fatal row's items (fatal rows
    // carry all six dims, so masks run over exactly NUM_DIMS bits).
    let mut fatal_counts: HashMap<Vec<(u8, u64)>, u32> = HashMap::new();
    for &(row, _) in &attributed {
        let items = row_items(row);
        assert_eq!(items.len(), NUM_DIMS);
        for mask in 1u32..(1 << NUM_DIMS) {
            if mask.count_ones() as usize > max_level {
                continue;
            }
            let sub: Vec<(u8, u64)> = (0..NUM_DIMS)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| items[b])
                .collect();
            *fatal_counts.entry(sub).or_insert(0) += 1;
        }
    }

    // Total support by rescanning every row; lift with the exact same
    // float expression as the miner so equality is bitwise.
    let mut mined: Vec<MinedRow> = Vec::new();
    for (items, &fatal) in &fatal_counts {
        if fatal < min_support {
            continue;
        }
        let mut total = 0u32;
        for row in 0..n as u32 {
            let ri = row_items(row);
            if items.iter().all(|it| ri.contains(it)) {
                total += 1;
            }
        }
        let lift = (f64::from(fatal) * n as f64) / (f64::from(total.max(1)) * n_fatal as f64);
        if lift >= params.min_lift {
            mined.push((items.clone(), fatal, total, lift));
        }
    }
    mined.sort_by(|a, b| {
        b.3.total_cmp(&a.3)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.0.cmp(&b.0))
    });
    analysis.ranked = mined
        .into_iter()
        .map(|(items, fatal, total, lift)| FdaItemset {
            items: items
                .iter()
                .map(|&(d, key)| FdaItemValue {
                    dim: FdaDim::ALL[d as usize],
                    value: if d == 0 {
                        ErrCode(key as u16).to_string()
                    } else {
                        dims.job_name(d as usize - 1, key as u32).to_string()
                    },
                })
                .collect(),
            fatal_support: fatal,
            total_support: total,
            lift,
        })
        .collect();
    analysis
}

/// A deterministic table big enough that level-2 counting clears the
/// parallel size gate at 16 threads: ~37 frequent singletons fan out to
/// hundreds of cross-dimension pair candidates over 1200 fatal rows.
fn large_fixture() -> (Vec<JobRecord>, Vec<Event>, Matching) {
    let n = 3_000u64;
    let jobs: Vec<JobRecord> = (0..n)
        .map(|i| {
            job(
                i,
                (i % 7) as u32,
                ((i / 7) % 5) as u32,
                (i % 11) as u32,
                (i % 8) as u8,
                1 + (i % 3) as u32,
            )
        })
        .collect();
    // 60 events, 20 victims each: rows 0..1200 are fatal.
    let victims: Vec<(usize, Vec<u64>)> = (0..60)
        .map(|e| (e % 3, (e as u64 * 20..e as u64 * 20 + 20).collect()))
        .collect();
    let (events, matching) = fixture(&jobs, &victims);
    (jobs, events, matching)
}

#[test]
fn parallel_mining_is_thread_invariant_above_the_gate() {
    let (jobs, events, matching) = large_fixture();
    let dims = JobDims::from_jobs(&jobs);
    let params = FdaParams {
        min_support_frac: 0.0,
        min_support_floor: 1,
        min_lift: 0.0,
        max_level: 3,
    };
    // The level-2 candidate set must actually clear the gate, otherwise
    // this test silently degrades to serial-vs-serial.
    let n_fatal = 1_200u64;
    let singletons: u64 = 3 + 8 + 7 + 5 + 11 + 3; // code, mp, user, project, exec, size
    assert!(
        singletons * singletons / 2 * n_fatal > MIN_PARALLEL_WORK,
        "fixture too small for the parallel path"
    );
    let serial = FdaAnalysis::compute(&events, &matching, &dims, &params, 1);
    assert!(
        serial.ranked.len() > 100,
        "expected a dense lattice, got {} itemsets",
        serial.ranked.len()
    );
    for threads in [2, 7, 16] {
        let parallel = FdaAnalysis::compute(&events, &matching, &dims, &params, threads);
        assert_eq!(serial, parallel, "threads={threads} diverged");
    }
    // And the whole thing agrees with the brute-force oracle.
    assert_eq!(serial, brute_force(&events, &matching, &dims, &params));
}

#[test]
fn empty_table_and_no_fatal_rows_are_well_formed() {
    let params = FdaParams::default();
    // No jobs at all.
    let dims = JobDims::from_jobs(&[]);
    let r = FdaAnalysis::compute(&[], &Matching::default(), &dims, &params, 4);
    assert_eq!(r.n_jobs, 0);
    assert_eq!(r.n_fatal, 0);
    assert!(r.ranked.is_empty());
    assert!(r.to_string().contains("0 over-represented"));
    // Jobs but no interruptions: nothing is over-represented.
    let jobs: Vec<JobRecord> = (0..10).map(|i| job(i, 0, 0, 0, 0, 1)).collect();
    let dims = JobDims::from_jobs(&jobs);
    let (events, matching) = fixture(&jobs, &[(0, Vec::new())]);
    let r = FdaAnalysis::compute(&events, &matching, &dims, &params, 4);
    assert_eq!(r.n_jobs, 10);
    assert_eq!(r.n_fatal, 0);
    assert!(r.ranked.is_empty());
    // Victims referencing unknown job ids are ignored, not miscounted.
    let (events, matching) = fixture(&jobs, &[(0, vec![999_999])]);
    let r = FdaAnalysis::compute(&events, &matching, &dims, &params, 4);
    assert_eq!(r.n_fatal, 0);
}

#[test]
fn single_dimension_table_mines_only_singletons() {
    // Every job dim constant: the only discriminating dimension is the
    // error code, and max_level 1 caps the lattice at singletons anyway.
    let jobs: Vec<JobRecord> = (0..20).map(|i| job(i, 1, 1, 1, 0, 1)).collect();
    let dims = JobDims::from_jobs(&jobs);
    for d in 0..NUM_JOB_DIMS {
        assert_eq!(dims.job_dict_len(d), 1, "dim {d} should be constant");
    }
    let (events, matching) = fixture(&jobs, &[(0, vec![0, 1, 2]), (1, vec![3, 4])]);
    let params = FdaParams {
        min_support_frac: 0.0,
        min_support_floor: 1,
        min_lift: 0.0,
        max_level: 1,
    };
    let r = FdaAnalysis::compute(&events, &matching, &dims, &params, 4);
    assert_eq!(r.n_fatal, 5);
    assert!(r.ranked.iter().all(|s| s.items.len() == 1));
    // The constant job dims have lift exactly 1 (5/5 over 20/20); the two
    // codes are over-represented (total == fatal, lift = 20/5, 20/2... ).
    let code_sets: Vec<&FdaItemset> = r
        .ranked
        .iter()
        .filter(|s| s.items[0].dim == FdaDim::ErrCode)
        .collect();
    assert_eq!(code_sets.len(), 2);
    assert!(code_sets.iter().all(|s| s.total_support == s.fatal_support));
    assert_eq!(r, brute_force(&events, &matching, &dims, &params));
}

/// Strategy for one random small table plus miner params. The min-lift
/// index selects from [`LIFTS`] inside the test body.
#[allow(clippy::type_complexity)]
fn table_strategy() -> impl Strategy<
    Value = (
        Vec<(u32, u32, u32, u8, u32)>,
        Vec<(usize, Vec<u64>)>,
        u32,
        usize,
        usize,
    ),
> {
    (
        collection::vec((0u32..3, 0u32..3, 0u32..4, 0u8..4, 1u32..3), 1..32),
        collection::vec((0usize..3, collection::vec(0u64..32, 0..8)), 0..6),
        1u32..4,   // min_support_floor
        0usize..3, // index into LIFTS
        1usize..5, // max_level
    )
}

/// Reported-lift thresholds the proptest samples.
const LIFTS: [f64; 3] = [0.0, 1.0, 2.0];

proptest! {
    /// The sharded Apriori miner and the exhaustive enumerator agree on
    /// support, lift, and ranking — exactly — for random small tables,
    /// at a serial and a parallel thread count.
    #[test]
    fn miner_matches_brute_force(input in table_strategy()) {
        let (specs, victims, floor, lift_idx, max_level) = input;
        let min_lift = LIFTS[lift_idx];
        let jobs: Vec<JobRecord> = specs
            .iter()
            .enumerate()
            .map(|(i, &(u, p, e, m, w))| job(i as u64, u, p, e, m, w))
            .collect();
        let dims = JobDims::from_jobs(&jobs);
        let (events, matching) = fixture(&jobs, &victims);
        let params = FdaParams {
            min_support_frac: 0.0,
            min_support_floor: floor,
            min_lift,
            max_level,
        };
        let oracle = brute_force(&events, &matching, &dims, &params);
        for threads in [1usize, 4] {
            let mined = FdaAnalysis::compute(&events, &matching, &dims, &params, threads);
            prop_assert_eq!(&mined, &oracle, "threads={}", threads);
        }
    }
}
