//! Deterministic cassette-replay integration tests of the `bgp-serve`
//! daemon.
//!
//! These are the conversions of the TCP-only integration smoke tests: the
//! same records flow through the same framer, decoder, and shard pool, but
//! from a committed `.bgpcas` cassette instead of a live socket — so the
//! chunk boundaries are pinned byte-for-byte and every counter asserts
//! exactly, with no sockets, no sleeps, and no timing slack.
//!
//! The fixtures under `tests/fixtures/` are committed binaries, each backed
//! by a generator in this file; `committed_fixtures_match_their_generators`
//! keeps them honest, and the `#[ignore]`d `regen_fixtures` test rewrites
//! them after a deliberate format change:
//!
//! ```text
//! cargo test --test serve_replay -- --ignored regen_fixtures
//! ```

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_model::Timestamp;
use bgp_coanalysis::bgp_ports::cassette::{Cassette, Recorder, StreamKind};
use bgp_coanalysis::bgp_ports::{LineDecoder, LineOutcome, LogFormat};
use bgp_coanalysis::bgp_serve::{FinalSummary, ServeConfig, Server};
use bgp_coanalysis::coanalysis::stream::OnlineAnalyzer;
use bgp_coanalysis::raslog::{format_record, Catalog, RasRecord};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A loopback config with ephemeral ports (the sockets are bound but unused
/// here — replay feeds the ingest path directly).
fn loopback_cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        ingest_addr: "127.0.0.1:0".to_owned(),
        http_addr: "127.0.0.1:0".to_owned(),
        shards,
        ..ServeConfig::default()
    }
}

/// Start a daemon and wait for the replayer's one-shot drain.
fn run_replay(cfg: &ServeConfig) -> FinalSummary {
    Server::start(cfg).expect("daemon starts").wait()
}

/// The record stream behind `serve_smoke.bgpcas`: 240 records cycling three
/// error codes over four midplane locations at 37-second steps, so both
/// temporal and spatial dedup fire, plus one comment and one garbage line.
fn smoke_records() -> Vec<RasRecord> {
    let cat = Catalog::standard();
    let codes = [
        cat.lookup("_bgp_err_kernel_panic").expect("known code"),
        cat.lookup("_bgp_err_ddr_controller").expect("known code"),
        cat.lookup("BULK_POWER_FATAL").expect("known code"),
    ];
    let locs = [
        "R00-M0-N00-J00",
        "R00-M0-N01-J00",
        "R01-M1-N02-J03",
        "R02-M0-N00-J07",
    ];
    (0..240u64)
        .map(|i| {
            RasRecord::new(
                1_000 + i,
                Timestamp::from_unix(1_200_000_000 + (i as i64) * 37),
                locs[(i as usize) % locs.len()].parse().expect("location"),
                codes[(i as usize) % codes.len()],
            )
        })
        .collect()
}

/// Generator for `serve_smoke.bgpcas`: the smoke stream serialized and cut
/// into awkward 97-byte chunks (nothing aligns with line boundaries).
fn smoke_cassette() -> Cassette {
    let mut bytes = Vec::new();
    for (i, r) in smoke_records().iter().enumerate() {
        if i == 120 {
            bytes.extend_from_slice(b"# a comment halfway through\n");
        }
        if i == 180 {
            bytes.extend_from_slice(b"this line is not a record\n");
        }
        bytes.extend_from_slice(format_record(r).as_bytes());
        bytes.push(b'\n');
    }
    let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).expect("recorder");
    for (i, chunk) in bytes.chunks(97).enumerate() {
        rec.push((i as u64) * 1_000_000, chunk);
    }
    rec.finish()
}

/// Generator for `crlf_boundary.bgpcas`: eight equal-length record lines
/// whose CRLF terminators straddle chunk boundaries in every way that has
/// bitten the framer — `\r` as a chunk's last byte, `\r\n` wholly in the
/// next chunk, and plain single-chunk `\n` as control.
fn crlf_cassette() -> Cassette {
    let code = Catalog::standard()
        .lookup("_bgp_err_kernel_panic")
        .expect("known code");
    let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).expect("recorder");
    for i in 0..8u64 {
        // Constant-width recids and timestamps keep every line the same
        // length, so one `max_line_bytes` is exactly at the limit for all.
        let line = format_record(&RasRecord::new(
            10 + i,
            Timestamp::from_unix(1_200_000_000 + (i as i64) * 3_600),
            "R00-M0-N00-J00".parse().expect("location"),
            code,
        ));
        match i % 3 {
            0 => {
                // The whole CRLF arrives in the next chunk.
                rec.push(i * 1_000, line.as_bytes());
                rec.push(i * 1_000 + 1, b"\r\n");
            }
            1 => {
                // The chunk ends on the bare `\r`; `\n` opens the next one.
                let mut a = line.into_bytes();
                a.push(b'\r');
                rec.push(i * 1_000, &a);
                rec.push(i * 1_000 + 1, b"\n");
            }
            _ => {
                let mut a = line.into_bytes();
                a.push(b'\n');
                rec.push(i * 1_000, &a);
            }
        }
    }
    rec.finish()
}

#[test]
fn committed_fixtures_match_their_generators() {
    for (name, cassette) in [
        ("serve_smoke.bgpcas", smoke_cassette()),
        ("crlf_boundary.bgpcas", crlf_cassette()),
    ] {
        let committed =
            std::fs::read(fixture(name)).unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
        assert_eq!(
            committed,
            cassette.encode(),
            "{name} drifted from its generator; after a deliberate format \
             change, regenerate with `cargo test --test serve_replay -- \
             --ignored regen_fixtures`"
        );
    }
}

#[test]
#[ignore = "rewrites the committed fixtures; run only after a deliberate format change"]
fn regen_fixtures() {
    let dir = fixture("");
    std::fs::create_dir_all(&dir).expect("fixtures dir");
    std::fs::write(fixture("serve_smoke.bgpcas"), smoke_cassette().encode()).expect("write");
    std::fs::write(fixture("crlf_boundary.bgpcas"), crlf_cassette().encode()).expect("write");
}

#[test]
fn smoke_replayed_from_committed_cassette_reconciles_exactly() {
    // The deterministic conversion of the TCP smoke test: the committed
    // cassette drives the same ingest path, so every counter — not just the
    // eventually-consistent ones — asserts exactly, twice.
    let mut cfg = loopback_cfg(3);
    cfg.replay = Some(fixture("serve_smoke.bgpcas"));
    let first = run_replay(&cfg);
    let second = run_replay(&cfg);
    assert_eq!(
        first, second,
        "replaying a cassette twice must be identical"
    );

    // Reference: one analyzer over the cassette's logical line stream.
    let cas = Cassette::decode(&std::fs::read(fixture("serve_smoke.bgpcas")).unwrap())
        .expect("fixture decodes");
    assert_eq!(cas.format, LogFormat::Bgp);
    assert_eq!(cas.kind, StreamKind::Ras);
    let decoder = LineDecoder::for_format(cas.format).expect("bgp is line-streamable");
    let mut reference = OnlineAnalyzer::with_thresholds(cfg.temporal, cfg.spatial);
    let mut malformed = 0u64;
    for line in cas.replay_bytes().split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        match decoder.decode_line(line) {
            LineOutcome::Record(r) => {
                reference.push(&r);
            }
            LineOutcome::Malformed(_) => malformed += 1,
            LineOutcome::Skip => {}
        }
    }

    assert_eq!(first.counters, reference.counters());
    assert_eq!(first.counters.records_in, 240);
    assert!(first.counters.events_out > 0);
    assert!(
        first.counters.merged_temporal + first.counters.merged_spatial > 0,
        "the fixture stream must exercise dedup: {:?}",
        first.counters
    );
    assert!(first.counters.is_consistent());
    assert_eq!(first.rejected_malformed, malformed);
    assert_eq!(first.rejected_malformed, 1, "exactly the one garbage line");
    assert_eq!(first.rejected_oversized, 0);
    assert_eq!(first.ingest_connections, 0, "no socket was involved");
    assert_eq!(first.shards, 3);
}

#[test]
fn crlf_split_across_recorded_chunks_is_not_dropped_at_the_limit() {
    // Regression fixture for the framer's CRLF-at-the-limit resync: the
    // length limit applies to line *content* (after stripping the CRLF),
    // even when the `\r` is a chunk's final byte.
    let cas = Cassette::decode(&std::fs::read(fixture("crlf_boundary.bgpcas")).unwrap())
        .expect("fixture decodes");
    let max = cas
        .replay_bytes()
        .split(|&b| b == b'\n')
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l).len())
        .max()
        .expect("non-empty fixture");

    let mut cfg = loopback_cfg(1);
    cfg.max_line_bytes = max; // every line is exactly at the limit
    cfg.replay = Some(fixture("crlf_boundary.bgpcas"));
    let summary = run_replay(&cfg);
    assert_eq!(summary.counters.records_in, 8);
    assert_eq!(summary.rejected_oversized, 0, "CRLF must not count");
    assert_eq!(summary.rejected_malformed, 0);

    // One byte tighter and every line is over the limit: all eight must be
    // rejected cleanly (framer resync), none mis-framed into garbage.
    cfg.max_line_bytes = max - 1;
    let summary = run_replay(&cfg);
    assert_eq!(summary.counters.records_in, 0);
    assert_eq!(summary.rejected_oversized, 8);
    assert_eq!(summary.rejected_malformed, 0);
}

#[test]
fn recorded_live_session_replays_to_identical_counters() {
    // `--record` then `--replay` closes the loop: a live TCP session is
    // captured chunk-for-chunk and reproduces the same analysis offline.
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("bgp-serve-rec-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cas_path = dir.join("live.bgpcas");

    let mut cfg = loopback_cfg(2);
    cfg.record = Some(cas_path.clone());
    let server = Server::start(&cfg).expect("daemon starts");
    let records = smoke_records();
    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    for r in &records {
        writeln!(ingest, "{}", format_record(r)).expect("send record");
    }
    writeln!(ingest, "not a record at all").expect("send garbage");
    drop(ingest);
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.counters().records_in < records.len() as u64 {
        assert!(Instant::now() < deadline, "daemon stuck ingesting");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let live = server.wait();
    let rec_note = live
        .recording
        .as_deref()
        .expect("--record reports its outcome");
    assert!(rec_note.starts_with("wrote"), "recording note: {rec_note}");

    let mut replay_cfg = loopback_cfg(2);
    replay_cfg.replay = Some(cas_path);
    let replayed = run_replay(&replay_cfg);
    assert_eq!(replayed.counters, live.counters);
    assert_eq!(replayed.rejected_malformed, live.rejected_malformed);
    assert_eq!(replayed.rejected_oversized, live.rejected_oversized);
    assert!(replayed.recording.is_none(), "replays are not re-recorded");

    let _ = std::fs::remove_dir_all(&dir);
}
