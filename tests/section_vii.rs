//! Integration tests for the Section VII recommendations implemented on top
//! of the core methodology: warning policies, precursor prediction,
//! checkpoint replay, outage reconstruction, and the online analyzer.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, SimOutput, Simulation};
use bgp_coanalysis::coanalysis::analysis::checkpoint::standard_study;
use bgp_coanalysis::coanalysis::analysis::repair::{reconstruct_outages, summarize};
use bgp_coanalysis::coanalysis::classify::RootCause;
use bgp_coanalysis::coanalysis::predict::{evaluate_policies, PrecursorPredictor};
use bgp_coanalysis::coanalysis::stream::OnlineAnalyzer;
use bgp_coanalysis::coanalysis::{CoAnalysis, CoAnalysisResult};
use std::sync::OnceLock;

fn run() -> &'static (SimOutput, CoAnalysisResult) {
    static RUN: OnceLock<(SimOutput, CoAnalysisResult)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut cfg = SimConfig::small_test(77);
        cfg.days = 45;
        cfg.num_execs = 1_800;
        let out = Simulation::new(cfg).expect("valid config").run();
        let result = CoAnalysis::default().run(&out.ras, &out.jobs);
        (out, result)
    })
}

#[test]
fn warning_policies_strictly_improve_precision_without_losing_recall() {
    let (_, r) = run();
    let scores = evaluate_policies(&r.events, &r.matching, &r.impact);
    assert_eq!(scores.len(), 3);
    for w in scores.windows(2) {
        assert!(
            w[1].warnings <= w[0].warnings,
            "policies must be increasingly selective"
        );
        assert!(w[1].precision() >= w[0].precision());
    }
    let best = scores.last().unwrap();
    assert_eq!(best.recall(), 1.0, "location filter must not lose events");
    assert!(best.precision() > 0.9, "precision {}", best.precision());
}

#[test]
fn precursor_predictor_gives_positive_lead_time() {
    let (out, r) = run();
    let score = PrecursorPredictor::default().evaluate(&out.ras, &r.events, &r.matching);
    assert!(score.alerts > 0);
    assert!(score.precision() > 0.2, "precision {}", score.precision());
    if let Some(lead) = score.median_lead_secs {
        assert!(lead > 0);
        assert!(lead < 8 * 3600, "lead {lead} exceeds the horizon");
    }
}

#[test]
fn informed_checkpointing_beats_naive_policies() {
    let (out, r) = run();
    let causes: std::collections::HashMap<u64, RootCause> = r
        .matching
        .job_to_event
        .iter()
        .map(|(&job_id, &idx)| {
            (
                job_id,
                r.root_cause
                    .cause(r.events[idx].errcode)
                    .unwrap_or(RootCause::SystemFailure),
            )
        })
        .collect();
    let mtti = r.interruption.system.mtti().unwrap_or(100_000.0);
    let outcomes = standard_study(&out.jobs, &causes, mtti, 300.0, 32);
    assert_eq!(outcomes.len(), 3);
    let naked = outcomes[0].total_cost();
    let informed = outcomes[2].total_cost();
    assert!(
        informed < naked,
        "informed {informed} should beat naked {naked}"
    );
    // The informed policy checkpoints far fewer jobs than blanket periodic.
    assert!(outcomes[2].jobs_checkpointing < outcomes[1].jobs_checkpointing / 2);
}

#[test]
fn outage_reconstruction_is_internally_consistent() {
    let (out, r) = run();
    let episodes = reconstruct_outages(&r.events, &r.matching, &out.jobs);
    let s = summarize(&episodes);
    assert_eq!(s.episodes, episodes.len());
    for e in &episodes {
        assert!(e.victims >= 2);
        assert!(e.min_duration_secs() >= 0);
        if let Some(max) = e.max_duration_secs() {
            assert!(max >= e.min_duration_secs());
        }
    }
    assert_eq!(
        s.total_victims,
        episodes.iter().map(|e| e.victims).sum::<usize>()
    );
}

#[test]
fn online_analyzer_matches_batch_on_the_same_stream() {
    let (out, r) = run();
    let mut online = OnlineAnalyzer::new().with_impact(r.impact.clone());
    for rec in out.ras.records() {
        online.push(rec);
    }
    // Temporal+spatial equivalence (causal/job-related need hindsight).
    assert_eq!(
        online.events_out() as usize,
        r.filter_stats.after_spatial,
        "online events must equal the batch temporal+spatial count"
    );
    // The learned impact map silences at least the transient codes.
    assert!(online.warnings() <= online.events_out());
}

#[test]
fn fault_aware_rerun_reduces_interruptions_same_seed() {
    let (out, _) = run();
    let mut cfg = out.config.clone();
    cfg.fault_aware_scheduler = true;
    let aware = Simulation::new(cfg).expect("valid config").run();
    assert!(aware.truth.chain_faults() <= out.truth.chain_faults());
    assert!(aware.truth.total_interruptions() <= out.truth.total_interruptions());
}
