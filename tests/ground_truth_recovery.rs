//! Does the co-analysis recover what the simulator actually did?
//!
//! The paper validated against administrator judgment; we can validate
//! against ground truth. These are the repository's core correctness claims
//! for the methodology.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{FaultNature, SimConfig, SimOutput, Simulation};
use bgp_coanalysis::coanalysis::classify::RootCause;
use bgp_coanalysis::coanalysis::{CoAnalysis, CoAnalysisResult};
use std::sync::OnceLock;

fn runs() -> &'static Vec<(SimOutput, CoAnalysisResult)> {
    static RUNS: OnceLock<Vec<(SimOutput, CoAnalysisResult)>> = OnceLock::new();
    RUNS.get_or_init(|| {
        (0..3u64)
            .map(|seed| {
                let mut cfg = SimConfig::small_test(100 + seed);
                cfg.days = 20;
                cfg.num_execs = 800;
                let out = Simulation::new(cfg).expect("valid config").run();
                let result = CoAnalysis::default().run(&out.ras, &out.jobs);
                (out, result)
            })
            .collect()
    })
}

#[test]
fn interruption_matching_has_high_recall_and_precision() {
    let mut tp = 0usize;
    let mut found = 0usize;
    let mut truth_total = 0usize;
    for (out, result) in runs() {
        truth_total += out.truth.job_cause.len();
        found += result.matching.job_to_event.len();
        tp += result
            .matching
            .job_to_event
            .keys()
            .filter(|id| out.truth.job_cause.contains_key(id))
            .count();
    }
    assert!(truth_total > 30, "not enough true interruptions to judge");
    let recall = tp as f64 / truth_total as f64;
    let precision = tp as f64 / found as f64;
    assert!(recall > 0.85, "recall {recall:.3}");
    assert!(precision > 0.95, "precision {precision:.3}");
}

#[test]
fn root_cause_classification_is_mostly_correct() {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (out, result) in runs() {
        for (&code, &nature) in &out.truth.code_nature {
            let Some(classified) = result.root_cause.cause(code) else {
                continue;
            };
            let expected = match nature {
                FaultNature::ApplicationError => RootCause::ApplicationError,
                // Transients and system failures are both "the system's
                // side" for root-cause purposes.
                _ => RootCause::SystemFailure,
            };
            total += 1;
            if classified == expected {
                correct += 1;
            }
        }
    }
    assert!(total > 50, "not enough classified codes: {total}");
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.8, "accuracy {accuracy:.3} ({correct}/{total})");
}

#[test]
fn impact_classification_finds_the_transient_codes() {
    use bgp_coanalysis::coanalysis::classify::CodeImpact;
    use bgp_coanalysis::raslog::Catalog;
    // Across the runs, the two fatal-labeled transient codes must never be
    // classified as interruption-related (NonFatal or, at worst,
    // undetermined-idle when they never fired under a job).
    let cat = Catalog::standard();
    for name in ["BULK_POWER_FATAL", "_bgp_err_torus_fatal_sum"] {
        let code = cat.lookup(name).unwrap();
        let mut nonfatal_seen = false;
        for (_, result) in runs() {
            match result.impact.per_code.get(&code) {
                Some(CodeImpact::NonFatal) => nonfatal_seen = true,
                Some(CodeImpact::InterruptionRelated) => {
                    panic!("{name} misclassified as interruption-related")
                }
                _ => {}
            }
        }
        assert!(
            nonfatal_seen,
            "{name} never recognized as non-fatal across three runs"
        );
    }
}

#[test]
fn job_related_filter_tracks_true_chains() {
    let mut flagged = 0usize;
    let mut chains = 0usize;
    for (out, result) in runs() {
        flagged += result.job_redundant.iter().filter(|&&f| f).count();
        chains += out.truth.chain_faults();
    }
    assert!(chains > 3, "not enough chain faults to judge: {chains}");
    // The filter also removes buggy-resubmission repeats, so flagged >=
    // chain count is expected; it must find at least half the true chains
    // and not balloon past a few times their number.
    assert!(
        flagged * 2 >= chains,
        "flagged {flagged} vs true chains {chains}"
    );
    assert!(
        flagged <= chains * 5 + 20,
        "flagged {flagged} vs true chains {chains}"
    );
}

#[test]
fn idle_fatal_events_match_truth_fraction() {
    for (out, result) in runs() {
        let truth_idle = out.truth.faults.iter().filter(|f| f.idle_location).count() as f64
            / out.truth.faults.len().max(1) as f64;
        let analysis_idle = result.idle_event_fraction();
        assert!(
            (truth_idle - analysis_idle).abs() < 0.25,
            "idle fraction: truth {truth_idle:.2} vs analysis {analysis_idle:.2}"
        );
    }
}
