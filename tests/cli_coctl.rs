//! End-to-end tests of the `coctl` binary: real process invocations over
//! real files in a temp directory.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use std::path::PathBuf;
use std::process::Command;

fn coctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_coctl"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coctl-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulate once per test binary run; several tests share the files.
fn site_logs() -> &'static PathBuf {
    use std::sync::OnceLock;
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = workdir("shared");
        let status = coctl()
            .args(["simulate", "--days", "15", "--seed", "5", "--out"])
            .arg(&dir)
            .status()
            .expect("coctl runs");
        assert!(status.success());
        assert!(dir.join("ras.log").exists());
        assert!(dir.join("jobs.log").exists());
        dir
    })
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = coctl().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_subcommand_exits_with_distinct_code_and_lists_serve() {
    let out = coctl().arg("frobnicate").output().unwrap();
    // 3, not the generic usage error 1: scripts can tell a typo'd
    // subcommand from bad flags.
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("coctl serve"), "usage must list serve: {err}");
}

#[test]
fn missing_subcommand_usage_lists_serve() {
    let out = coctl().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"));
    assert!(err.contains("coctl serve"), "usage must list serve: {err}");
}

#[test]
fn serve_with_bad_flags_is_a_usage_error() {
    let out = coctl().args(["serve", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    let out = coctl().args(["serve", "--shards", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards"));
}

#[test]
fn coserved_help_and_bad_flags() {
    let coserved = || Command::new(env!("CARGO_BIN_EXE_coserved"));
    let out = coserved().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--ingest") && err.contains("/metrics"));
    let out = coserved().args(["--queue-cap", "zero"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queue-cap"));
}

#[test]
fn summary_profiles_the_ras_log() {
    let dir = site_logs();
    let out = coctl()
        .arg("summary")
        .arg(dir.join("ras.log"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records over"));
    assert!(text.contains("FATAL"));
    assert!(text.contains("top FATAL codes:"));
}

#[test]
fn analyze_prints_the_observations() {
    let dir = site_logs();
    let out = coctl()
        .arg("analyze")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Obs 12"));
    assert!(text.contains("filtering:"));
}

#[test]
fn analyze_timings_and_impact_out() {
    let dir = site_logs();
    let impact = dir.join("impact.txt");
    let out = coctl()
        .arg("analyze")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .arg("--timings")
        .arg("--impact-out")
        .arg(&impact)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The observed run produces the same report plus per-stage wall times.
    assert!(text.contains("Obs 12"));
    assert!(text.contains("stage timings:"));
    assert!(text.contains("temporal-spatial"));
    // The impact file round-trips through the serve-side parser.
    let written = std::fs::read_to_string(&impact).unwrap();
    assert!(written.starts_with("# bgp-impact v1"));
    let parsed = bgp_coanalysis::bgp_serve::parse_impact(&written, "impact.txt").unwrap();
    assert!(!parsed.per_code.is_empty());
}

#[test]
fn analyze_append_is_byte_identical_to_one_shot() {
    // Split the shared site at a line boundary into "day 1" and "day 2",
    // then check `analyze BASE --append DAY2` prints byte-for-byte what a
    // one-shot run over the whole logs prints. `--mmap` rides along so the
    // zero-copy load path gets end-to-end coverage too.
    let dir = site_logs();
    let split_dir = workdir("append-split");
    let split = |name: &str, frac_num: usize, frac_den: usize| -> (PathBuf, PathBuf) {
        let text = std::fs::read_to_string(dir.join(name)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let cut = lines.len() * frac_num / frac_den;
        let head = split_dir.join(format!("day1-{name}"));
        let tail = split_dir.join(format!("day2-{name}"));
        std::fs::write(&head, lines[..cut].join("\n") + "\n").unwrap();
        std::fs::write(&tail, lines[cut..].join("\n") + "\n").unwrap();
        (head, tail)
    };
    let (ras1, ras2) = split("ras.log", 7, 10);
    let (jobs1, jobs2) = split("jobs.log", 7, 10);

    let full = coctl()
        .arg("analyze")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .output()
        .unwrap();
    assert!(full.status.success());

    let delta = coctl()
        .arg("analyze")
        .args([&ras1, &jobs1])
        .arg("--append")
        .arg(&ras2)
        .arg("--append-jobs")
        .arg(&jobs2)
        .arg("--mmap")
        .output()
        .unwrap();
    assert!(
        delta.status.success(),
        "{}",
        String::from_utf8_lossy(&delta.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&delta.stdout),
        String::from_utf8_lossy(&full.stdout),
        "incremental report must match the one-shot run byte for byte"
    );
    // The per-batch fold notes go to stderr, keeping stdout comparable.
    let err = String::from_utf8_lossy(&delta.stderr);
    assert!(err.contains("re-ran"), "{err}");

    // --timings composes with --append: each fold reports the wall clock
    // of the stages it actually re-ran, on stderr, and stdout stays
    // byte-identical to the one-shot run.
    let timed = coctl()
        .arg("analyze")
        .args([&ras1, &jobs1])
        .arg("--append")
        .arg(&ras2)
        .arg("--timings")
        .output()
        .unwrap();
    assert!(
        timed.status.success(),
        "{}",
        String::from_utf8_lossy(&timed.stderr)
    );
    let err = String::from_utf8_lossy(&timed.stderr);
    assert!(err.contains("fold 1 stage timings:"), "{err}");
}

#[test]
fn analyze_fda_appends_the_dimensional_table() {
    let dir = site_logs();
    let plain = coctl()
        .arg("analyze")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .output()
        .unwrap();
    assert!(plain.status.success());
    let fda = coctl()
        .arg("analyze")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .arg("--fda")
        .output()
        .unwrap();
    assert!(
        fda.status.success(),
        "{}",
        String::from_utf8_lossy(&fda.stderr)
    );
    let plain_text = String::from_utf8_lossy(&plain.stdout);
    let text = String::from_utf8_lossy(&fda.stdout);
    // The flag strictly appends: the observation report is unchanged.
    assert!(text.starts_with(plain_text.as_ref()), "--fda must append");
    assert!(!plain_text.contains("Dimensional root cause"));
    assert!(text.contains("Dimensional root cause (FDA)"), "{text}");
}

#[test]
fn filter_writes_a_clean_log() {
    let dir = site_logs();
    let clean = dir.join("clean.log");
    let out = coctl()
        .arg("filter")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .arg("-o")
        .arg(&clean)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&clean).unwrap();
    assert!(text.starts_with("# independent fatal events"));
    // The clean log is radically smaller than the input.
    let raw_lines = std::fs::read_to_string(dir.join("ras.log"))
        .unwrap()
        .lines()
        .count();
    assert!(text.lines().count() * 10 < raw_lines);
}

#[test]
fn outages_reports_episodes_or_none() {
    let dir = site_logs();
    let out = coctl()
        .arg("outages")
        .arg(dir.join("ras.log"))
        .arg(dir.join("jobs.log"))
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("episodes"));
}

#[test]
fn snapshot_flag_writes_then_reuses_the_cache() {
    let dir = site_logs();
    let cache = workdir("snap-reuse");
    let run = || {
        coctl()
            .arg("summary")
            .arg(dir.join("ras.log"))
            .arg("--snapshot")
            .arg(&cache)
            .output()
            .unwrap()
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(String::from_utf8_lossy(&first.stderr).contains("snapshot written"));
    assert!(cache.join("ras.log.bgpsnap").exists());
    // Second run loads the snapshot instead of re-parsing, and the report
    // is byte-for-byte the same either way.
    let second = run();
    assert!(second.status.success());
    assert!(String::from_utf8_lossy(&second.stderr).contains("snapshot loaded"));
    assert_eq!(first.stdout, second.stdout);
}

#[test]
fn corrupt_snapshot_falls_back_to_reparsing() {
    let dir = site_logs();
    let cache = workdir("snap-corrupt");
    let run = |sub: &str| {
        coctl()
            .arg(sub)
            .arg(dir.join("ras.log"))
            .arg(dir.join("jobs.log"))
            .arg("--snapshot")
            .arg(&cache)
            .output()
            .unwrap()
    };
    let first = run("analyze");
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    // Flip a payload byte in the RAS snapshot: the next run must detect the
    // damage, re-parse the source, rewrite the cache, and still succeed.
    let snap = cache.join("ras.log.bgpsnap");
    let mut bytes = std::fs::read(&snap).unwrap();
    *bytes.last_mut().unwrap() ^= 0xff;
    std::fs::write(&snap, &bytes).unwrap();
    let second = run("analyze");
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let notes = String::from_utf8_lossy(&second.stderr);
    assert!(notes.contains("rewritten"), "stderr: {notes}");
    assert_eq!(first.stdout, second.stdout);
}

#[test]
fn snapshot_flag_without_directory_is_a_usage_error() {
    let out = coctl()
        .args(["summary", "ras.log", "--snapshot"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--snapshot needs a directory"));
}

#[test]
fn unknown_format_exits_with_distinct_code_and_lists_formats() {
    let out = coctl()
        .args(["summary", "ras.log", "--format", "bgl"])
        .output()
        .unwrap();
    // Exit 3, same convention as an unknown subcommand: "this coctl does not
    // support that adapter" is not a generic usage error.
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown log format"), "stderr: {err}");
    for name in ["bgp", "bgq", "syslog", "cassette"] {
        assert!(err.contains(name), "must list {name}: {err}");
    }
    let out = coctl()
        .args(["summary", "ras.log", "--format"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format needs a format name"));
}

#[test]
fn syslog_format_summarizes_a_messages_file() {
    let dir = workdir("syslog-fmt");
    let messages = dir.join("messages");
    let mut text = String::new();
    for i in 0..50 {
        text.push_str(&format!(
            "<{}>Mar {:2} 12:{:02}:00 node{} kernel: event {i}\n",
            if i % 7 == 0 { 2 } else { 13 },
            1 + i % 27,
            i % 60,
            i % 5
        ));
    }
    std::fs::write(&messages, text).unwrap();
    let out = coctl()
        .arg("summary")
        .arg(&messages)
        .args(["--format", "syslog"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records over"), "stdout: {text}");
}

#[test]
fn cassette_replay_analyzes_identically_to_the_source_log() {
    use bgp_coanalysis::bgp_ports::cassette::{Recorder, StreamKind};
    use bgp_coanalysis::bgp_ports::LogFormat;
    let dir = site_logs();
    let cas_path = dir.join("ras.bgpcas");
    // Record the simulated RAS log into a cassette in awkward 4 KiB chunks.
    let bytes = std::fs::read(dir.join("ras.log")).unwrap();
    let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).unwrap();
    for chunk in bytes.chunks(4096) {
        rec.push(1_000_000, chunk);
    }
    std::fs::write(&cas_path, rec.finish().encode()).unwrap();
    let analyze = |ras: &PathBuf, format: &str| {
        coctl()
            .arg("analyze")
            .arg(ras)
            .arg(dir.join("jobs.log"))
            .args(["--format", format])
            .output()
            .unwrap()
    };
    let direct = analyze(&dir.join("ras.log"), "bgp");
    assert!(direct.status.success());
    let replayed = analyze(&cas_path, "cassette");
    assert!(
        replayed.status.success(),
        "{}",
        String::from_utf8_lossy(&replayed.stderr)
    );
    // The replay is byte-identical analysis input, so the full observation
    // report matches byte for byte.
    assert_eq!(direct.stdout, replayed.stdout);
    // A truncated cassette is an I/O-class failure, not a silent empty log.
    let cas = std::fs::read(&cas_path).unwrap();
    std::fs::write(&cas_path, &cas[..cas.len() / 2]).unwrap();
    let bad = analyze(&cas_path, "cassette");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn missing_file_exits_with_io_error_code() {
    let out = coctl()
        .args(["summary", "/nonexistent/ras.log"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
