//! Integration tests of the `bgp-serve` daemon: real sockets on loopback,
//! real HTTP scrapes, and the sharded-vs-single-analyzer equivalence that
//! makes the daemon's numbers trustworthy.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_serve::{ServeConfig, Server};
use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::stream::OnlineAnalyzer;
use bgp_coanalysis::raslog::{format_record, Catalog, RasRecord};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A loopback config with ephemeral ports and the given shard count.
fn loopback_cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        ingest_addr: "127.0.0.1:0".to_owned(),
        http_addr: "127.0.0.1:0".to_owned(),
        shards,
        ..ServeConfig::default()
    }
}

/// Blocking HTTP GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Send raw bytes on the HTTP port and return the status line.
fn http_raw(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream.write_all(payload).expect("send payload");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response.lines().next().unwrap_or_default().to_owned()
}

/// Pull `name` out of a Prometheus text body.
fn metric(body: &str, name: &str) -> Option<i64> {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()).copied() == Some(b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

/// Poll `/summary` until `records_in` reaches `want` (drain barrier).
fn wait_records_in(server: &Server, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.counters().records_in < want {
        assert!(
            Instant::now() < deadline,
            "daemon stuck at {}/{want} records",
            server.counters().records_in
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A deterministic simulated record stream, time-ordered as a real log is.
fn simulated_records(seed: u64) -> Vec<RasRecord> {
    let mut cfg = SimConfig::small_test(seed);
    cfg.days = 30;
    cfg.num_execs = 1_200;
    Simulation::new(cfg)
        .expect("valid config")
        .run()
        .ras
        .records()
        .to_vec()
}

/// Replicate a base stream until it is at least `n` records long, shifting
/// RECIDs and timestamps so every copy stays ordered and distinct.
fn amplified_records(base: &[RasRecord], n: usize) -> Vec<RasRecord> {
    let last = base.last().expect("non-empty base");
    let first = base.first().expect("non-empty base");
    let span = (last.event_time - first.event_time).as_secs() + 3_600;
    let mut out = Vec::with_capacity(n);
    let mut rep = 0i64;
    while out.len() < n {
        for r in base {
            if out.len() >= n {
                break;
            }
            let shifted = RasRecord {
                recid: r.recid + (rep as u64) * 10_000_000,
                event_time: r.event_time + bgp_coanalysis::bgp_model::Duration::seconds(rep * span),
                ..*r
            };
            out.push(shifted);
        }
        rep += 1;
    }
    out
}

#[test]
fn smoke_100k_records_across_shards_reconcile_exactly() {
    // The acceptance smoke test: >=100k simulated records over TCP through
    // >=2 shards; /metrics totals must reconcile exactly with what was sent
    // and with a single reference analyzer; graceful shutdown must drain
    // without losing queued records.
    let records = amplified_records(&simulated_records(11), 100_000);
    assert!(records.len() >= 100_000);

    let server = Server::start(&loopback_cfg(4)).expect("daemon starts");
    let http = server.http_addr();
    let (status, body) = http_get(http, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // One big write buffer: the framer has to handle arbitrary chunking.
    let mut payload = String::with_capacity(records.len() * 96);
    for r in &records {
        payload.push_str(&format_record(r));
        payload.push('\n');
    }
    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    ingest
        .write_all(payload.as_bytes())
        .expect("stream records");
    drop(ingest);

    wait_records_in(&server, records.len() as u64);

    // Reference: one analyzer, same ordered stream, same thresholds.
    let cfg = ServeConfig::default();
    let mut reference = OnlineAnalyzer::with_thresholds(cfg.temporal, cfg.spatial);
    for r in &records {
        reference.push(r);
    }
    let want = reference.counters();

    let (_, metrics) = http_get(http, "/metrics");
    assert_eq!(
        metric(&metrics, "ingest_records_total"),
        Some(records.len() as i64),
        "every sent record must be counted"
    );
    assert_eq!(
        metric(&metrics, "events_out_total"),
        Some(want.events_out as i64),
        "sharded daemon must surface exactly the reference event set"
    );
    assert_eq!(metric(&metrics, "ingest_rejected_malformed_total"), Some(0));
    assert_eq!(metric(&metrics, "ingest_rejected_oversized_total"), Some(0));

    let (_, summary) = http_get(http, "/summary");
    assert!(summary.contains(&format!("\"records_in\":{}", records.len())));
    assert!(summary.contains(&format!("\"events_out\":{}", want.events_out)));
    assert!(summary.contains("\"shards\":4"));

    let (_, events) = http_get(http, "/events");
    assert!(events.starts_with('[') && events.ends_with(']'));
    assert!(events.contains("\"recid\""), "ring must hold recent events");

    // Graceful shutdown over HTTP: drain, then the final summary must agree
    // with the reference analyzer on every stream counter.
    let (status, _) = http_get(http, "/shutdown");
    assert!(status.contains("200"));
    let summary = server.wait();
    assert_eq!(summary.counters.records_in, records.len() as u64);
    assert_eq!(summary.counters.fatal_in, want.fatal_in);
    assert_eq!(summary.counters.merged_temporal, want.merged_temporal);
    assert_eq!(summary.counters.merged_spatial, want.merged_spatial);
    assert_eq!(summary.counters.events_out, want.events_out);
    assert_eq!(summary.counters.warnings, want.warnings);
    assert!(summary.counters.is_consistent());
    assert_eq!(summary.shards, 4);
}

#[test]
fn malformed_and_oversized_lines_are_rejected_not_fatal() {
    // Tight enough that the 4 KiB junk line trips it, roomy enough for a
    // real record line (about 170 bytes with its message template).
    let mut cfg = loopback_cfg(2);
    cfg.max_line_bytes = 512;
    let server = Server::start(&cfg).expect("daemon starts");
    let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
    let good = |i: u64| {
        format_record(&RasRecord::new(
            i,
            bgp_coanalysis::bgp_model::Timestamp::from_unix(i as i64 * 3_600),
            "R00-M0-N00-J00".parse().unwrap(),
            code,
        ))
    };

    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    writeln!(ingest, "{}", good(1)).unwrap();
    writeln!(ingest, "this is not a record").unwrap();
    writeln!(ingest, "{}", "x".repeat(4_096)).unwrap();
    writeln!(ingest, "# comment lines are fine").unwrap();
    writeln!(ingest, "{}", good(2)).unwrap();
    drop(ingest);

    wait_records_in(&server, 2);
    let (_, metrics) = http_get(server.http_addr(), "/metrics");
    assert_eq!(metric(&metrics, "ingest_records_total"), Some(2));
    assert_eq!(metric(&metrics, "ingest_rejected_malformed_total"), Some(1));
    assert_eq!(metric(&metrics, "ingest_rejected_oversized_total"), Some(1));

    server.shutdown();
    let summary = server.wait();
    assert_eq!(summary.counters.records_in, 2);
    assert_eq!(summary.rejected_malformed, 1);
    assert_eq!(summary.rejected_oversized, 1);
}

#[test]
fn backpressure_stalls_are_counted_and_lossless() {
    let mut cfg = loopback_cfg(1);
    cfg.queue_capacity = 2; // tiny queue: the sender must outrun the worker
    let server = Server::start(&cfg).expect("daemon starts");
    let code = Catalog::standard()
        .lookup("_bgp_err_ddr_controller")
        .unwrap();

    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    let n = 2_000u64;
    for i in 0..n {
        let rec = RasRecord::new(
            i,
            bgp_coanalysis::bgp_model::Timestamp::from_unix(i as i64 * 7_000),
            "R00-M0-N00-J00".parse().unwrap(),
            code,
        );
        writeln!(ingest, "{}", format_record(&rec)).unwrap();
    }
    drop(ingest);

    wait_records_in(&server, n);
    server.shutdown();
    let summary = server.wait();
    // Lossless: every record arrived despite the 2-slot queue...
    assert_eq!(summary.counters.records_in, n);
    // ...and the stalls were visible to operators, not silent.
    assert!(
        summary.backpressure_stalls > 0,
        "a 2-slot queue fed 2000 records back-to-back must stall"
    );
}

#[test]
fn http_front_end_rejects_junk_and_unknown_routes() {
    let server = Server::start(&loopback_cfg(2)).expect("daemon starts");
    let http = server.http_addr();

    let (status, _) = http_get(http, "/no-such-route");
    assert!(status.contains("404"), "{status}");

    // Without --full-analysis the route exists but is a 404 with a hint.
    let (status, body) = http_get(http, "/analysis");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("--full-analysis"), "{body}");

    let status = http_raw(http, b"completely not http\r\n\r\n");
    assert!(status.contains("400"), "{status}");

    let status = http_raw(http, b"DELETE /metrics HTTP/1.1\r\n\r\n");
    assert!(status.contains("405"), "{status}");

    // An oversized request head is answered (400), not buffered forever.
    let mut big = Vec::from(&b"GET /"[..]);
    big.extend(std::iter::repeat_n(b'a', 16 * 1024));
    big.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let status = http_raw(http, &big);
    assert!(status.contains("400") || status.contains("404"), "{status}");

    // The daemon is still healthy afterwards.
    let (status, body) = http_get(http, "/healthz");
    assert!(status.contains("200"));
    assert_eq!(body, "ok\n");

    server.shutdown();
    let summary = server.wait();
    assert!(summary.http_requests >= 2);
}

#[test]
fn full_analysis_route_serves_the_incremental_report() {
    // Stream a simulated site into a --full-analysis daemon and check that
    // /analysis serves the report an offline `coctl analyze` would print on
    // the same logs — the delta-equivalence gate, end to end over sockets.
    let out = Simulation::new(SimConfig::small_test(21))
        .expect("valid config")
        .run();
    let dir = std::env::temp_dir().join(format!("bgp-serve-analysis-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let jobs_path = dir.join("jobs.log");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&jobs_path).expect("create jobs"));
    bgp_coanalysis::joblog::write_log(&mut w, out.jobs.jobs()).expect("write jobs");
    w.flush().expect("flush jobs");
    drop(w);

    let mut cfg = loopback_cfg(2);
    cfg.full_analysis = true;
    cfg.jobs = Some(jobs_path.clone());
    let server = Server::start(&cfg).expect("daemon starts");

    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    for r in out.ras.records() {
        writeln!(ingest, "{}", format_record(r)).expect("send record");
    }
    drop(ingest);
    let want = out.ras.records().len() as u64;
    wait_records_in(&server, want);
    // The analysis worker has its own bounded queue; wait until it has
    // folded everything the pool has already counted.
    let full = server.full_analysis().expect("enabled").clone();
    let deadline = Instant::now() + Duration::from_secs(60);
    while full.snapshot().records < want {
        assert!(
            Instant::now() < deadline,
            "analysis worker stuck at {}/{want}",
            full.snapshot().records
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, body) = http_get(server.http_addr(), "/analysis");
    assert!(status.contains("200"), "{status}");
    assert!(body.starts_with("# full analysis:"), "{body}");
    let oracle = bgp_coanalysis::coanalysis::CoAnalysis::default().run(&out.ras, &out.jobs);
    let expected = bgp_coanalysis::bgp_serve::render_report(&oracle);
    let report = body
        .splitn(3, '\n')
        .nth(2)
        .expect("two fold-state header lines");
    assert_eq!(report, expected, "served report must match the offline run");

    let (status, _) = http_get(server.http_addr(), "/shutdown");
    assert!(status.contains("200"), "{status}");
    let summary = server.wait();
    let analysis = summary.analysis.expect("--full-analysis reports its folds");
    assert!(
        analysis.contains(&format!("({want} records)")),
        "{analysis}"
    );
    let _ = std::fs::remove_file(&jobs_path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn impact_file_arms_the_daemon_warnings() {
    // A daemon loaded with "everything is non-fatal" verdicts must surface
    // events but warn on none of them.
    let impact_text = "# bgp-impact v1\n_bgp_err_kernel_panic non-fatal\n";
    let impact =
        bgp_coanalysis::bgp_serve::parse_impact(impact_text, "inline").expect("valid impact");
    let mut cfg = loopback_cfg(2);
    cfg.impact = Some(impact);
    let server = Server::start(&cfg).expect("daemon starts");
    let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
    let mut ingest = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    for i in 0..10u64 {
        let rec = RasRecord::new(
            i,
            bgp_coanalysis::bgp_model::Timestamp::from_unix(i as i64 * 100_000),
            "R00-M0-N00-J00".parse().unwrap(),
            code,
        );
        writeln!(ingest, "{}", format_record(&rec)).unwrap();
    }
    drop(ingest);
    wait_records_in(&server, 10);
    server.shutdown();
    let summary = server.wait();
    assert_eq!(summary.counters.events_out, 10);
    assert_eq!(
        summary.counters.warnings, 0,
        "non-fatal verdict must silence warnings"
    );
}

/// One simulated stream shared across all proptest cases (sims are costly).
fn shared_stream() -> &'static Vec<RasRecord> {
    use std::sync::OnceLock;
    static RECORDS: OnceLock<Vec<RasRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| simulated_records(23))
}

proptest! {
    /// The shard/merge invariant, pinned: for any ordered record stream,
    /// routing by error code across any shard count and merging the
    /// per-shard counters gives exactly the single-analyzer counters.
    #[test]
    fn sharded_streaming_equals_single_analyzer(
        shards in 1usize..8,
        start in 0usize..2_000,
        take in 50usize..1_500,
    ) {
        let all = shared_stream();
        let start = start.min(all.len().saturating_sub(1));
        let records = &all[start..(start + take).min(all.len())];

        let mut single = OnlineAnalyzer::new();
        let mut per_shard: Vec<OnlineAnalyzer> =
            (0..shards).map(|_| OnlineAnalyzer::new()).collect();
        for r in records {
            single.push(r);
            per_shard[r.errcode.index() % shards].push(r);
        }
        let merged = per_shard
            .iter()
            .map(OnlineAnalyzer::counters)
            .fold(Default::default(), bgp_coanalysis::coanalysis::StreamCounters::merge);
        prop_assert_eq!(merged, single.counters());
        prop_assert!(merged.is_consistent());
    }
}
