//! Determinism and parallel/sequential equivalence of the full stack.

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::{CoAnalysis, CoAnalysisConfig};

#[test]
fn same_seed_same_everything() {
    let a = Simulation::new(SimConfig::small_test(55))
        .expect("valid config")
        .run();
    let b = Simulation::new(SimConfig::small_test(55))
        .expect("valid config")
        .run();
    assert_eq!(a.ras.records(), b.ras.records());
    assert_eq!(a.jobs.jobs(), b.jobs.jobs());
    assert_eq!(a.truth.faults, b.truth.faults);

    let ra = CoAnalysis::default().run(&a.ras, &a.jobs);
    let rb = CoAnalysis::default().run(&b.ras, &b.jobs);
    assert_eq!(ra.events, rb.events);
    assert_eq!(ra.events_final, rb.events_final);
    assert_eq!(ra.matching.job_to_event, rb.matching.job_to_event);
    assert_eq!(
        format!("{}", ra.observations()),
        format!("{}", rb.observations())
    );
}

#[test]
fn parallel_filtering_equals_sequential() {
    let out = Simulation::new(SimConfig::small_test(56))
        .expect("valid config")
        .run();
    let par = CoAnalysis::default().run(&out.ras, &out.jobs);
    let seq = CoAnalysis::with_config(CoAnalysisConfig::sequential()).run(&out.ras, &out.jobs);
    assert_eq!(par.events, seq.events);
    assert_eq!(par.events_final, seq.events_final);
    assert_eq!(par.filter_stats, seq.filter_stats);
    assert_eq!(par.matching, seq.matching);
    assert_eq!(par.impact.per_code, seq.impact.per_code);
}

#[test]
fn different_seeds_differ() {
    let a = Simulation::new(SimConfig::small_test(57))
        .expect("valid config")
        .run();
    let b = Simulation::new(SimConfig::small_test(58))
        .expect("valid config")
        .run();
    assert_ne!(a.ras.len(), b.ras.len());
}

#[test]
fn merged_record_counts_conserved_through_filters() {
    let out = Simulation::new(SimConfig::small_test(59))
        .expect("valid config")
        .run();
    let r = CoAnalysis::default().run(&out.ras, &out.jobs);
    let total_final: u32 = r.events_final.iter().map(|e| e.merged).sum();
    let total_mid: u32 = r.events.iter().map(|e| e.merged).sum();
    assert_eq!(total_final as usize, r.filter_stats.raw_fatal);
    assert_eq!(total_mid as usize, r.filter_stats.raw_fatal);
}
