//! Cross-crate integration: simulated logs survive serialization to their
//! native text formats and back, at realistic scale.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::joblog::{self, JobReader};
use bgp_coanalysis::raslog::{self, RasReader};
use std::io::BufWriter;
use std::sync::OnceLock;

fn sim() -> &'static bgp_coanalysis::bgp_sim::SimOutput {
    static OUT: OnceLock<bgp_coanalysis::bgp_sim::SimOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Simulation::new(SimConfig::small_test(17))
            .expect("valid config")
            .run()
    })
}

#[test]
fn ras_log_round_trips_losslessly() {
    let out = sim();
    let mut buf = Vec::new();
    raslog::write_log(&mut BufWriter::new(&mut buf), out.ras.records()).unwrap();
    let (records, errors) = RasReader::new(buf.as_slice()).read_tolerant();
    assert!(errors.is_empty(), "parse errors: {errors:?}");
    assert_eq!(records.len(), out.ras.len());
    let rebuilt = raslog::RasLog::from_records(records);
    assert_eq!(rebuilt.records(), out.ras.records());
}

#[test]
fn job_log_round_trips_losslessly() {
    let out = sim();
    let mut buf = Vec::new();
    joblog::write_log(&mut BufWriter::new(&mut buf), out.jobs.jobs()).unwrap();
    let (jobs, errors) = JobReader::new(buf.as_slice()).read_tolerant();
    assert!(errors.is_empty(), "parse errors: {errors:?}");
    assert_eq!(jobs.len(), out.jobs.len());
    let rebuilt = joblog::JobLog::from_jobs(jobs);
    assert_eq!(rebuilt.jobs(), out.jobs.jobs());
}

#[test]
fn corrupted_lines_are_isolated() {
    let out = sim();
    let mut buf = Vec::new();
    raslog::write_log(
        &mut BufWriter::new(&mut buf),
        out.ras.records().iter().take(100),
    )
    .unwrap();
    let mut text = String::from_utf8(buf).unwrap();
    // Corrupt every 10th line.
    let corrupted: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i % 10 == 0 {
                format!("CORRUPT{l}")
            } else {
                l.to_owned()
            }
        })
        .collect();
    text = corrupted.join("\n");
    let (records, errors) = RasReader::new(text.as_bytes()).read_tolerant();
    assert_eq!(records.len(), 90);
    assert_eq!(errors.len(), 10);
    // Errors carry the right line numbers.
    assert_eq!(errors[0].line, 1);
    assert_eq!(errors[1].line, 11);
}

#[test]
fn analysis_results_identical_after_round_trip() {
    use bgp_coanalysis::coanalysis::CoAnalysis;
    let out = sim();
    let direct = CoAnalysis::default().run(&out.ras, &out.jobs);

    let mut rbuf = Vec::new();
    raslog::write_log(&mut rbuf, out.ras.records()).unwrap();
    let mut jbuf = Vec::new();
    joblog::write_log(&mut jbuf, out.jobs.jobs()).unwrap();
    let ras = raslog::RasLog::from_records(RasReader::new(rbuf.as_slice()).read_strict().unwrap());
    let jobs = joblog::JobLog::from_jobs(JobReader::new(jbuf.as_slice()).read_strict().unwrap());
    let reparsed = CoAnalysis::default().run(&ras, &jobs);

    assert_eq!(direct.events, reparsed.events);
    assert_eq!(direct.filter_stats, reparsed.filter_stats);
    assert_eq!(direct.matching.job_to_event, reparsed.matching.job_to_event);
}
