//! Golden equivalence of the parallel analysis kernels.
//!
//! The matching sweep, root-cause classification, and vulnerability ranking
//! all take a `threads` knob whose contract is *bit-identical output at any
//! thread count*. These tests pin that contract two ways:
//!
//! * a large synthetic fleet (above every serial-fallback size gate, so the
//!   sharded paths genuinely run) compared across threads ∈ {1, 2, 7, 16};
//! * a property test that checks the matcher against a brute-force oracle
//!   on small random — including unsorted — event/job streams, and checks
//!   every kernel's thread-count invariance on the same streams.

use bgp_coanalysis::bgp_model::{Location, MidplaneId, Partition, Timestamp};
use bgp_coanalysis::coanalysis::analysis::VulnerabilityAnalysis;
use bgp_coanalysis::coanalysis::classify::classify_root_cause_with_threads;
use bgp_coanalysis::coanalysis::matching::{EventCase, Matcher, Matching};
use bgp_coanalysis::coanalysis::{AnalysisContext, Event};
use bgp_coanalysis::joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
use bgp_coanalysis::raslog::{Catalog, ErrCode};
use proptest::prelude::*;
use std::collections::HashMap;

/// Thread counts exercised against the single-threaded golden run.
const THREADS: [usize; 3] = [2, 7, 16];

/// Deterministic split-free PRNG (an LCG) so the large fleet is identical
/// on every run without depending on a random-number crate.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn job(job_id: u64, start: i64, end: i64, part: Partition, failed: bool) -> JobRecord {
    JobRecord {
        job_id,
        exec: ExecId((job_id % 23) as u32),
        user: UserId((job_id % 11) as u32),
        project: ProjectId((job_id % 5) as u32),
        queue_time: Timestamp::from_unix(start - 30),
        start_time: Timestamp::from_unix(start),
        end_time: Timestamp::from_unix(end),
        partition: part,
        exit: if failed {
            ExitStatus::Failed(143)
        } else {
            ExitStatus::Completed
        },
    }
}

/// A synthetic fleet big enough to clear the kernels' serial-fallback size
/// gates: ≥ 16 × 2048 events (the matcher shards at 16 threads) and ≥ 4096
/// job records (the vulnerability category split goes parallel).
fn synth_fleet(n_events: usize, n_jobs: usize, seed: u64) -> (Vec<Event>, JobLog) {
    let mut rng = seed;
    let codes: Vec<ErrCode> = Catalog::standard().codes().collect();
    let mut jobs = Vec::with_capacity(n_jobs);
    for i in 0..n_jobs {
        let start = (i as i64) * 37 + (lcg(&mut rng) % 29) as i64;
        let dur = 60 + (lcg(&mut rng) % 20_000) as i64;
        let base = MidplaneId::from_index_wrapping((lcg(&mut rng) % 80) as u8);
        let part = if lcg(&mut rng).is_multiple_of(3) {
            // A whole rack (both midplanes), like a 1024-node partition.
            Partition::from_midplanes(base.rack().midplanes())
        } else {
            Partition::from_midplanes([base])
        };
        jobs.push(job(
            i as u64,
            start,
            start + dur,
            part,
            lcg(&mut rng) % 5 < 2,
        ));
    }
    let horizon = (n_jobs as i64) * 37;
    let mut events = Vec::with_capacity(n_events);
    let mut t = 0i64;
    for i in 0..n_events {
        t += (lcg(&mut rng) % (2 * (horizon as u64) / (n_events as u64))) as i64;
        let m = MidplaneId::from_index_wrapping((lcg(&mut rng) % 80) as u8);
        let loc = if lcg(&mut rng).is_multiple_of(4) {
            Location::Rack(m.rack())
        } else {
            Location::Midplane(m)
        };
        let code = codes[(lcg(&mut rng) as usize) % codes.len()];
        events.push(Event::synthetic(
            Timestamp::from_unix(t),
            loc,
            code,
            1,
            i as u64,
        ));
    }
    (events, JobLog::from_jobs(jobs))
}

/// Per-midplane fatal counts (the vulnerability analysis's unreliable-
/// location input), derived deterministically from the event stream.
fn fatal_counts(events: &[Event]) -> Vec<u32> {
    let mut counts = vec![0u32; 80];
    for e in events {
        for m in e.footprint.midplanes() {
            counts[m.index()] += 1;
        }
    }
    counts
}

#[test]
fn kernels_bit_identical_across_thread_counts() {
    let (events, jobs) = synth_fleet(36_000, 6_000, 0xC0FFEE);
    let ctx = AnalysisContext::from_events(events.clone(), None, &jobs);
    let counts = fatal_counts(&events);

    let m1 = Matcher::default().run_with_threads(&events, &ctx, 1);
    assert_eq!(m1, Matcher::default().run(&events, &ctx));
    let rc1 = classify_root_cause_with_threads(&events, &m1, &ctx, 1);
    let v1 = VulnerabilityAnalysis::new_with_threads(&events, &m1, &rc1, &ctx, &counts, 1);

    // The fleet must actually produce interesting output, or "equal" proves
    // nothing.
    assert!(m1.interrupted_jobs() > 0);
    assert!(m1
        .per_event
        .iter()
        .any(|m| m.case == EventCase::Interrupted));

    for t in THREADS {
        let mt = Matcher::default().run_with_threads(&events, &ctx, t);
        assert_eq!(m1, mt, "matching diverged at {t} threads");
        let rct = classify_root_cause_with_threads(&events, &mt, &ctx, t);
        assert_eq!(rc1, rct, "root cause diverged at {t} threads");
        let vt = VulnerabilityAnalysis::new_with_threads(&events, &mt, &rct, &ctx, &counts, t);
        assert_eq!(v1, vt, "vulnerability diverged at {t} threads");
    }
}

/// Brute-force reimplementation of the matcher's documented semantics:
/// per-event window/footprint scan, then best-attribution-per-job pruning
/// with the earlier event winning distance ties.
fn oracle(events: &[Event], jobs: &JobLog, matcher: &Matcher) -> Matching {
    let window = matcher.window;
    let one = bgp_coanalysis::bgp_model::Duration::seconds(1);
    // Pre-reduction victims per event, in machine-wide (end_time, job_id)
    // order; running = distinct job ids overlapping [t, t + 1 s) on the
    // footprint.
    let mut pre: Vec<Vec<&JobRecord>> = Vec::new();
    let mut running: Vec<usize> = Vec::new();
    for e in events {
        let mut ended: Vec<&JobRecord> = jobs
            .jobs()
            .iter()
            .filter(|j| e.time - window <= j.end_time && j.end_time < e.time + window)
            .filter(|j| j.partition.overlaps(e.footprint))
            .filter(|j| !matcher.require_failed_exit || !j.exit.is_success())
            .collect();
        ended.sort_by_key(|j| (j.end_time, j.job_id));
        pre.push(ended);
        let mut ids: Vec<u64> = jobs
            .jobs()
            .iter()
            .filter(|j| j.overlaps(e.time, e.time + one))
            .filter(|j| j.partition.overlaps(e.footprint))
            .map(|j| j.job_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        running.push(ids.len());
    }
    // Attribution distance uses the id-indexed job table (last record wins
    // for a duplicated id), exactly like the kernel's O(1) id lookup.
    let by_id: HashMap<u64, &JobRecord> = jobs.jobs().iter().map(|j| (j.job_id, j)).collect();
    let mut best: HashMap<u64, (usize, i64)> = HashMap::new();
    for (i, (e, ended)) in events.iter().zip(&pre).enumerate() {
        for j in ended {
            let Some(rec) = by_id.get(&j.job_id) else {
                continue;
            };
            let dist = (rec.end_time - e.time).abs().as_secs();
            match best.get(&j.job_id) {
                Some(&(_, d)) if d <= dist => {}
                _ => {
                    best.insert(j.job_id, (i, dist));
                }
            }
        }
    }
    let job_to_event: HashMap<u64, usize> = best.into_iter().map(|(j, (i, _))| (j, i)).collect();
    let per_event = events
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let victims: Vec<u64> = pre[i]
                .iter()
                .map(|j| j.job_id)
                .filter(|id| job_to_event.get(id) == Some(&i))
                .collect();
            let case = if !victims.is_empty() {
                EventCase::Interrupted
            } else if running[i] == 0 {
                EventCase::IdleLocation
            } else {
                EventCase::NotInterrupted
            };
            bgp_coanalysis::coanalysis::matching::EventMatch {
                victims,
                running: running[i],
                case,
            }
        })
        .collect();
    Matching {
        per_event,
        job_to_event,
    }
}

fn arb_partition() -> impl Strategy<Value = Partition> {
    collection::vec(0u8..80, 1..4)
        .prop_map(|v| Partition::from_midplanes(v.into_iter().map(MidplaneId::from_index_wrapping)))
}

/// Job ids drawn from a small pool so duplicates are common — the kernel
/// must dedup running ids and attribute duplicated ids like the oracle.
fn arb_jobs() -> impl Strategy<Value = Vec<JobRecord>> {
    collection::vec(
        (1u64..40, -200i64..3000, 0i64..500, arb_partition(), 0u8..2),
        0..50,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(id, start, dur, part, failed)| job(id, start, start + dur, part, failed == 1))
            .collect()
    })
}

/// Event times are *not* sorted: the sweep must reset its cursors on a
/// time regression and still agree with the order-insensitive oracle.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    let codes: Vec<ErrCode> = Catalog::standard().codes().take(8).collect();
    collection::vec((-300i64..3500, 0u8..80, 0usize..8, 0u8..2), 0..40).prop_map(move |specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (t, m, c, rack))| {
                let m = MidplaneId::from_index_wrapping(m);
                let loc = if rack == 1 {
                    Location::Rack(m.rack())
                } else {
                    Location::Midplane(m)
                };
                Event::synthetic(Timestamp::from_unix(t), loc, codes[c], 1, i as u64)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn matcher_agrees_with_bruteforce_oracle(
        jobs in arb_jobs(),
        events in arb_events(),
    ) {
        let jobs = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::from_events(events.clone(), None, &jobs);
        let matcher = Matcher::default();
        let got = matcher.run(&events, &ctx);
        let want = oracle(&events, &jobs, &matcher);
        prop_assert_eq!(&got.per_event, &want.per_event);
        prop_assert_eq!(&got.job_to_event, &want.job_to_event);
    }

    #[test]
    fn kernels_thread_invariant_on_random_streams(
        jobs in arb_jobs(),
        events in arb_events(),
    ) {
        let jobs = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::from_events(events.clone(), None, &jobs);
        let counts = fatal_counts(&events);
        let m1 = Matcher::default().run_with_threads(&events, &ctx, 1);
        let rc1 = classify_root_cause_with_threads(&events, &m1, &ctx, 1);
        let v1 = VulnerabilityAnalysis::new_with_threads(&events, &m1, &rc1, &ctx, &counts, 1);
        for t in THREADS {
            let mt = Matcher::default().run_with_threads(&events, &ctx, t);
            prop_assert_eq!(&m1, &mt);
            let rct = classify_root_cause_with_threads(&events, &mt, &ctx, t);
            prop_assert_eq!(&rc1, &rct);
            let vt =
                VulnerabilityAnalysis::new_with_threads(&events, &mt, &rct, &ctx, &counts, t);
            prop_assert_eq!(&v1, &vt);
        }
    }
}
