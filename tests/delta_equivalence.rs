//! The delta-ingestion gate: folding batches through `DeltaSession::append`
//! must be **bit-identical** to a cold full run over the concatenated
//! input — golden two-day splits of a simulated site plus proptests over
//! random (empty / duplicate / out-of-order) splits of a record stream.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::{
    AppendBatch, CoAnalysis, CoAnalysisConfig, CoAnalysisResult, DeltaSession, StageId,
};
use bgp_coanalysis::joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
use bgp_coanalysis::raslog::{Catalog, RasLog, RasRecord};
use bgp_model::Timestamp;

/// Full cold run over the concatenation — the oracle every delta run is
/// compared against.
fn oracle(cfg: CoAnalysisConfig, ras: Vec<RasRecord>, jobs: Vec<JobRecord>) -> CoAnalysisResult {
    CoAnalysis::with_config(cfg).run(&RasLog::from_records(ras), &JobLog::from_jobs(jobs))
}

fn assert_results_identical(delta: &CoAnalysisResult, full: &CoAnalysisResult) {
    // Field-by-field first, so a mismatch names the product that diverged…
    assert_eq!(delta.events, full.events);
    assert_eq!(delta.filter_stats, full.filter_stats);
    assert_eq!(delta.matching, full.matching);
    assert_eq!(delta.events_final, full.events_final);
    assert_eq!(delta.root_cause, full.root_cause);
    assert_eq!(
        delta.observations().to_string(),
        full.observations().to_string()
    );
    // …then the whole report at once.
    assert_eq!(delta, full);
}

/// Split a simulated site's logs at `frac` of the observation window — a
/// "day boundary": RAS records by event time, job rows by start time.
#[allow(clippy::type_complexity)]
fn split_sim(
    seed: u64,
    frac: f64,
) -> (
    (Vec<RasRecord>, Vec<JobRecord>),
    (Vec<RasRecord>, Vec<JobRecord>),
) {
    let out = Simulation::new(SimConfig::small_test(seed))
        .expect("valid config")
        .run();
    let records = out.ras.records();
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        panic!("simulation produced no records");
    };
    let span = (last.event_time - first.event_time).as_secs();
    let cut = first.event_time + bgp_model::Duration::seconds((span as f64 * frac) as i64);
    let (head, tail): (Vec<RasRecord>, Vec<RasRecord>) =
        records.iter().cloned().partition(|r| r.event_time < cut);
    let (jhead, jtail): (Vec<JobRecord>, Vec<JobRecord>) = out
        .jobs
        .jobs()
        .iter()
        .copied()
        .partition(|j| j.start_time < cut);
    ((head, jhead), (tail, jtail))
}

#[test]
fn two_day_split_is_bit_identical_to_one_shot() {
    let cfg = CoAnalysisConfig::default();
    let ((ras1, jobs1), (ras2, jobs2)) = split_sim(41, 0.7);
    assert!(
        !ras2.is_empty() && !jobs2.is_empty(),
        "tail day must be non-trivial"
    );

    let mut all_ras = ras1.clone();
    all_ras.extend(ras2.iter().cloned());
    let mut all_jobs = jobs1.clone();
    all_jobs.extend(jobs2.iter().cloned());
    let full = oracle(cfg, all_ras, all_jobs);

    let (mut session, day1) = DeltaSession::new(
        cfg,
        &RasLog::from_records(ras1.clone()),
        JobLog::from_jobs(jobs1.clone()),
    );
    // Day 1 alone must equal a cold run on day 1 alone.
    assert_results_identical(&day1, &oracle(cfg, ras1, jobs1));

    let (day2, report) = session.append(AppendBatch {
        ras: ras2,
        jobs: jobs2,
    });
    assert_results_identical(&day2, &full);
    // A batch with both RAS and job rows dirties the whole graph's inputs.
    assert!(report.reran.contains(StageId::TemporalSpatial));
    assert!(report.reran.contains(StageId::Matching));
}

#[test]
fn many_small_batches_match_one_shot() {
    let cfg = CoAnalysisConfig::default();
    let out = Simulation::new(SimConfig::small_test(42))
        .expect("valid config")
        .run();
    let records: Vec<RasRecord> = out.ras.records().to_vec();
    let jobs: Vec<JobRecord> = out.jobs.jobs().to_vec();
    let full = oracle(cfg, records.clone(), jobs.clone());

    // Fold in five uneven slices (by index, so batches are *not* clean time
    // splits of each other's tails).
    let cuts = [
        records.len() / 7,
        records.len() / 3,
        records.len() / 2,
        5 * records.len() / 6,
    ];
    let jcuts = [
        jobs.len() / 7,
        jobs.len() / 3,
        jobs.len() / 2,
        5 * jobs.len() / 6,
    ];
    let (mut session, _) = DeltaSession::new(
        cfg,
        &RasLog::from_records(records[..cuts[0]].to_vec()),
        JobLog::from_jobs(jobs[..jcuts[0]].to_vec()),
    );
    let mut last = None;
    for i in 0..cuts.len() {
        let rhi = cuts.get(i + 1).copied().unwrap_or(records.len());
        let jhi = jcuts.get(i + 1).copied().unwrap_or(jobs.len());
        let (result, _) = session.append(AppendBatch {
            ras: records[cuts[i]..rhi].to_vec(),
            jobs: jobs[jcuts[i]..jhi].to_vec(),
        });
        last = Some(result);
    }
    let last = last.expect("at least one batch");
    assert_results_identical(&last, &full);
    let (events, job_rows) = session.ingested();
    assert_eq!(job_rows, jobs.len());
    assert!(events > 0);
}

#[test]
fn empty_batch_reruns_nothing_and_changes_nothing() {
    let cfg = CoAnalysisConfig::default();
    let ((ras1, jobs1), _) = split_sim(43, 0.5);
    let (mut session, base) =
        DeltaSession::new(cfg, &RasLog::from_records(ras1), JobLog::from_jobs(jobs1));
    let (again, report) = session.append(AppendBatch::default());
    assert!(
        report.reran.is_empty(),
        "clean append re-ran {:?}",
        report.reran.stages()
    );
    assert!(report.changed.is_empty());
    assert_results_identical(&again, &base);
}

#[test]
fn job_only_batch_skips_the_filter_stack() {
    let cfg = CoAnalysisConfig::default();
    let ((ras1, jobs1), (_, jobs2)) = split_sim(44, 0.6);
    assert!(!jobs2.is_empty());
    let mut all_jobs = jobs1.clone();
    all_jobs.extend(jobs2.iter().copied());
    let full = oracle(cfg, ras1.clone(), all_jobs);

    let (mut session, _) =
        DeltaSession::new(cfg, &RasLog::from_records(ras1), JobLog::from_jobs(jobs1));
    let (result, report) = session.append(AppendBatch {
        ras: Vec::new(),
        jobs: jobs2,
    });
    assert_results_identical(&result, &full);
    // No RAS side change: the temporal/spatial and causal filters read only
    // event-side inputs, so they must have been served from cache.
    assert!(!report.reran.contains(StageId::TemporalSpatial));
    assert!(!report.reran.contains(StageId::Causal));
    assert!(report.reran.contains(StageId::Matching));
}

// ---------------------------------------------------------------------------
// Proptests: adversarial splits of a small synthetic stream.
// ---------------------------------------------------------------------------

/// Palette-built record: `pick` chooses location/code, `t` the second.
fn palette_record(recid: u64, t: i64, pick: usize) -> RasRecord {
    let locs = ["R00-M0", "R00-M1", "R01-M0", "R10-M0"];
    let codes = [
        "_bgp_err_kernel_panic",
        "_bgp_err_ddr_controller",
        "_bgp_err_torus_sender_fifo",
        "_bgp_warn_ecc_corrected", // non-fatal: exercises span-only appends
    ];
    let loc = locs.get(pick % locs.len()).unwrap_or(&locs[0]);
    let code = codes
        .get((pick / locs.len()) % codes.len())
        .unwrap_or(&codes[0]);
    RasRecord::new(
        recid,
        Timestamp::from_unix(t),
        loc.parse().expect("palette location parses"),
        Catalog::standard()
            .lookup(code)
            .expect("palette code exists"),
    )
}

fn palette_job(job_id: u64, exec: u32, start: i64, run: i64, mp: u8) -> JobRecord {
    JobRecord {
        job_id,
        exec: ExecId(exec),
        user: UserId(1),
        project: ProjectId(1),
        queue_time: Timestamp::from_unix(start - 10),
        start_time: Timestamp::from_unix(start),
        end_time: Timestamp::from_unix(start + run),
        partition: bgp_model::Partition::contiguous(mp, 2).expect("small contiguous partition"),
        exit: ExitStatus::Completed,
    }
}

proptest::proptest! {
    /// Any interleaved assignment of a random stream into base/batch —
    /// including duplicated records, repeated timestamps, batches that
    /// land entirely before the base, and batches of nothing — must leave
    /// the delta report byte-identical to the one-shot oracle.
    #[test]
    fn random_split_point_is_bit_identical(
        recs in proptest::collection::vec((0i64..5_000, 0usize..16, 0usize..3), 0..60),
        jobs in proptest::collection::vec((0u8..6, 0i64..5_000, 1i64..2_000, 0usize..2), 0..30),
    ) {
        // side: 0 = base only, 1 = batch only, 2 = both (a duplicate).
        let mut base_ras = Vec::new();
        let mut batch_ras = Vec::new();
        for (i, &(t, pick, side)) in recs.iter().enumerate() {
            let r = palette_record(i as u64, t, pick);
            if side != 1 {
                base_ras.push(r);
            }
            if side != 0 {
                batch_ras.push(r);
            }
        }
        let mut base_jobs = Vec::new();
        let mut batch_jobs = Vec::new();
        for (i, &(mp, start, run, side)) in jobs.iter().enumerate() {
            let j = palette_job(i as u64, i as u32 % 5, start, run, mp);
            if side == 0 {
                base_jobs.push(j);
            } else {
                batch_jobs.push(j);
            }
        }
        let mut all_ras = base_ras.clone();
        all_ras.extend(batch_ras.iter().cloned());
        let mut all_jobs = base_jobs.clone();
        all_jobs.extend(batch_jobs.iter().copied());

        let cfg = CoAnalysisConfig::default();
        let full = oracle(cfg, all_ras, all_jobs);
        let (mut session, _) = DeltaSession::new(
            cfg,
            &RasLog::from_records(base_ras),
            JobLog::from_jobs(base_jobs),
        );
        let (result, _) = session.append(AppendBatch { ras: batch_ras, jobs: batch_jobs });
        proptest::prop_assert_eq!(&result, &full);
    }
}
