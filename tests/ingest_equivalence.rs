//! Golden equivalence at realistic scale: the parallel byte-chunk ingest
//! must be bit-identical to the serial streaming readers — same records in
//! the same order, same errors with the same line numbers — for every chunk
//! count; and `.bgpsnap` snapshots must hand back exactly the parsed log
//! through the `coanalysis::load` layer.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, Simulation};
use bgp_coanalysis::coanalysis::{load, LoadOptions, SnapshotStatus};
use bgp_coanalysis::joblog::{self, JobReader};
use bgp_coanalysis::raslog::{self, RasReader};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Chunk counts worth probing: serial, the smallest parallel split, a count
/// that never divides the input evenly, and whatever this machine offers.
fn chunk_counts() -> Vec<usize> {
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1, 2, 7, ncpu];
    counts.dedup();
    counts
}

/// Simulated site logs serialized to their native text formats, with
/// deliberate damage: corrupted lines, blank lines, and a truncated final
/// line, so the equivalence check covers the tolerant paths too.
fn texts() -> &'static (String, String) {
    static TEXTS: OnceLock<(String, String)> = OnceLock::new();
    TEXTS.get_or_init(|| {
        let out = Simulation::new(SimConfig::small_test(23))
            .expect("valid config")
            .run();
        let mut rbuf = Vec::new();
        raslog::write_log(&mut rbuf, out.ras.records()).unwrap();
        let mut jbuf = Vec::new();
        joblog::write_log(&mut jbuf, out.jobs.jobs()).unwrap();
        let damage = |buf: Vec<u8>| {
            let text = String::from_utf8(buf).unwrap();
            let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
            for (i, line) in lines.iter_mut().enumerate() {
                match i % 97 {
                    13 => *line = format!("CORRUPT{line}"),
                    41 => line.clear(),
                    67 => *line = format!("{line}\r"), // CRLF survivor
                    _ => {}
                }
            }
            let mut text = lines.join("\n");
            text.push('\n');
            text.truncate(text.len() - 20); // truncated final line
            text
        };
        (damage(rbuf), damage(jbuf))
    })
}

#[test]
fn ras_parallel_ingest_matches_serial_reader_at_scale() {
    let (ras_text, _) = texts();
    let (serial_records, serial_errors) = RasReader::new(ras_text.as_bytes()).read_tolerant();
    assert!(!serial_records.is_empty());
    assert!(!serial_errors.is_empty(), "damage produced no errors?");
    for threads in chunk_counts() {
        let (records, errors) = raslog::parse_log_bytes(ras_text.as_bytes(), threads);
        assert_eq!(
            records, serial_records,
            "records differ at {threads} chunks"
        );
        assert_eq!(
            errors.len(),
            serial_errors.len(),
            "error count differs at {threads} chunks"
        );
        for (par, ser) in errors.iter().zip(&serial_errors) {
            assert_eq!(par.line, ser.line, "error line differs at {threads} chunks");
            assert_eq!(par.kind, ser.kind);
        }
    }
}

#[test]
fn job_parallel_ingest_matches_serial_reader_at_scale() {
    let (_, job_text) = texts();
    let (serial_jobs, serial_errors) = JobReader::new(job_text.as_bytes()).read_tolerant();
    assert!(!serial_jobs.is_empty());
    assert!(!serial_errors.is_empty(), "damage produced no errors?");
    for threads in chunk_counts() {
        let (jobs, errors) = joblog::parse_log_bytes(job_text.as_bytes(), threads);
        assert_eq!(jobs, serial_jobs, "jobs differ at {threads} chunks");
        let lines: Vec<u64> = errors.iter().map(|e| e.line).collect();
        let serial_lines: Vec<u64> = serial_errors.iter().map(|e| e.line).collect();
        assert_eq!(
            lines, serial_lines,
            "error lines differ at {threads} chunks"
        );
    }
}

#[test]
fn strict_parse_reports_the_first_error_like_the_serial_reader() {
    let (ras_text, job_text) = texts();
    let serial = RasReader::new(ras_text.as_bytes())
        .read_strict()
        .unwrap_err();
    for threads in chunk_counts() {
        let err = raslog::parse_log_bytes_strict(ras_text.as_bytes(), threads).unwrap_err();
        assert_eq!(err.line, serial.line);
    }
    let serial = JobReader::new(job_text.as_bytes())
        .read_strict()
        .unwrap_err();
    for threads in chunk_counts() {
        let err = joblog::parse_log_bytes_strict(job_text.as_bytes(), threads).unwrap_err();
        assert_eq!(err.line, serial.line);
    }
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ingest-eq-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn snapshot_cycle_preserves_the_parsed_log_exactly() {
    let (ras_text, job_text) = texts();
    let dir = workdir("snap");
    let ras_path = dir.join("ras.log");
    let job_path = dir.join("jobs.log");
    std::fs::write(&ras_path, ras_text).unwrap();
    std::fs::write(&job_path, job_text).unwrap();

    let plain = LoadOptions::default();
    let snap = LoadOptions {
        snapshot_dir: Some(dir.join("cache")),
        ..LoadOptions::default()
    };

    let (base_ras, base_jobs) = load::load_pair(&ras_path, &job_path, &plain).unwrap();
    assert_eq!(base_ras.snapshot, SnapshotStatus::Disabled);

    // First snapshot-enabled load parses and writes; second skips the parse.
    let written = load::load_ras(&ras_path, &snap).unwrap();
    assert_eq!(written.snapshot, SnapshotStatus::Written);
    let (ras2, jobs2) = load::load_pair(&ras_path, &job_path, &snap).unwrap();
    assert_eq!(ras2.snapshot, SnapshotStatus::Loaded);
    assert_eq!(ras2.log.records(), base_ras.log.records());
    assert_eq!(jobs2.log.jobs(), base_jobs.log.jobs());
    // A snapshot load cannot reproduce parse errors — it stores records only.
    assert!(ras2.parse_errors.is_empty());
}
