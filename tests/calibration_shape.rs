//! The DESIGN.md §4 calibration-shape claims: the qualitative results the
//! paper reports must emerge from a medium-length simulated window.
//!
//! These run on a 60-day window (about a quarter of the paper's) so that the
//! statistics are stable but the suite stays fast.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, SimOutput, Simulation};
use bgp_coanalysis::coanalysis::{CoAnalysis, CoAnalysisResult};
use std::sync::OnceLock;

fn run() -> &'static (SimOutput, CoAnalysisResult) {
    static RUN: OnceLock<(SimOutput, CoAnalysisResult)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut cfg = SimConfig::small_test(2009);
        cfg.days = 60;
        cfg.num_execs = 2_500;
        let out = Simulation::new(cfg).expect("valid config").run();
        let result = CoAnalysis::default().run(&out.ras, &out.jobs);
        (out, result)
    })
}

#[test]
fn weibull_beats_exponential_with_decreasing_hazard() {
    let (_, r) = run();
    let t = r.table_iv.as_ref().expect("enough events to fit");
    for f in [&t.before, &t.after] {
        assert!(f.fits.weibull_preferred(0.01), "LRT p = {}", f.fits.p_value);
        assert!(
            f.fits.weibull.shape < 1.0,
            "shape {} not < 1",
            f.fits.weibull.shape
        );
    }
}

#[test]
fn job_related_filtering_raises_mtbf_and_shape() {
    let (_, r) = run();
    let t = r.table_iv.as_ref().unwrap();
    assert!(t.mtbf_ratio() > 1.05, "MTBF ratio {}", t.mtbf_ratio());
    assert!(
        t.after.fits.weibull.shape > t.before.fits.weibull.shape,
        "shape {} -> {}",
        t.before.fits.weibull.shape,
        t.after.fits.weibull.shape
    );
}

#[test]
fn compression_ratios_in_paper_regime() {
    let (_, r) = run();
    let s = &r.filter_stats;
    assert!(
        s.ts_causal_compression() > 0.95,
        "TS+causal compression {}",
        s.ts_causal_compression()
    );
    let jr = s.job_related_compression();
    assert!((0.02..0.40).contains(&jr), "job-related compression {jr}");
}

#[test]
fn mtti_exceeds_mtbf_because_idle_faults_hit_nobody() {
    let (_, r) = run();
    let t = r.table_iv.as_ref().unwrap();
    let ratio = r
        .interruption
        .mtti_over_mtbf(t.before.mtbf())
        .expect("system MTTI fit");
    assert!(ratio > 1.5, "MTTI/MTBF {ratio}");
    let idle = r.idle_event_fraction();
    assert!((0.2..0.7).contains(&idle), "idle fraction {idle}");
}

#[test]
fn wide_job_workload_correlates_with_failures_better_than_total() {
    let (_, r) = run();
    let wide = r.midplane.corr_with_wide_workload().unwrap();
    let total = r.midplane.corr_with_workload().unwrap();
    assert!(wide > total, "wide {wide} vs total {total}");
    assert!(wide > 0.0, "wide correlation {wide} not positive");
}

#[test]
fn interruption_rate_grows_with_size_but_not_with_length() {
    let (_, r) = run();
    let t = &r.vulnerability.table;
    // The paper's own matrix has one outlier row; tolerate one here too.
    assert!(
        t.size_rate_violations(150) <= 1,
        "size-rate violations: {} (rows {:?})",
        t.size_rate_violations(150),
        t.row_summary()
    );
    // Non-monotone in length: the per-column rates must not be strictly
    // increasing left-to-right.
    let cols = t.col_summary();
    let monotone_in_length = cols.windows(2).all(|w| w[1].2 >= w[0].2);
    assert!(
        !monotone_in_length,
        "interruption rate unexpectedly monotone in execution time: {cols:?}"
    );
}

#[test]
fn application_errors_surface_early() {
    let (out, r) = run();
    // Ground truth: true application-error victims mostly die in hour one.
    let mut early = 0usize;
    let mut total = 0usize;
    for f in out
        .truth
        .of_nature(bgp_coanalysis::bgp_sim::FaultNature::ApplicationError)
    {
        for &job_id in &f.interrupted_jobs {
            if let Some(j) = out.jobs.by_job_id(job_id) {
                total += 1;
                if j.runtime().as_secs() < 3_600 {
                    early += 1;
                }
            }
        }
    }
    assert!(total > 10, "too few true app interruptions: {total}");
    let truth_frac = early as f64 / total as f64;
    assert!(truth_frac > 0.6, "truth first-hour fraction {truth_frac}");
    // The analysis-attributed estimate tracks it (classification noise on a
    // 60-day window can blur a classified code or two).
    let frac = r.vulnerability.app_interruptions_first_hour;
    assert!(
        frac > 0.4,
        "only {frac} of attributed app interruptions in first hour"
    );
}

#[test]
fn interruptions_are_rare_but_bursty() {
    let (_, r) = run();
    let b = &r.burst;
    assert!(
        b.interrupted_job_fraction < 0.03,
        "interrupted fraction {}",
        b.interrupted_job_fraction
    );
    assert!(b.quick_reinterruptions > 0, "no quick re-interruptions");
    assert!(b.max_consecutive_one_exec >= 2);
}

#[test]
fn spatial_propagation_is_rare_and_fs_related() {
    use bgp_coanalysis::raslog::Catalog;
    let (_, r) = run();
    let p = &r.propagation;
    assert!(
        p.spatial_fraction() < 0.25,
        "spatial fraction {}",
        p.spatial_fraction()
    );
    // When propagation is non-trivial, the shared-file-system codes must be
    // among the culprits. (A lone spatial event can be a coincidental merge
    // of two simultaneous independent faults — tolerated.)
    if p.spatial_events >= 3 {
        let cat = Catalog::standard();
        let fs: Vec<_> = ["CiodHungProxy", "bg_code_script_error"]
            .iter()
            .map(|n| cat.lookup(n).unwrap())
            .collect();
        assert!(
            p.spatial_codes.keys().any(|c| fs.contains(c)),
            "spatial codes {:?} contain no fs code",
            p.spatial_codes
        );
    }
}

#[test]
fn table_i_populations_scale_with_window() {
    let (out, _) = run();
    // 60 days at the calibrated arrival rate: jobs should scale to roughly
    // a quarter of the paper's 68,794 (wide tolerance — heavy-tailed law).
    let jobs = out.jobs.len();
    assert!(
        (8_000..40_000).contains(&jobs),
        "job count {jobs} far from calibrated scale"
    );
    // FATAL records dominate by redundancy; 82 codes available.
    assert!(out.ras.fatal_only().distinct_fatal_codes() >= 60);
}

#[test]
fn size_gain_ratio_dominates_time_for_system_interruptions() {
    let (_, r) = run();
    let find = |name: &str| {
        r.vulnerability
            .ranking_system
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.gain_ratio)
            .unwrap_or(0.0)
    };
    let size = find("size");
    let time = find("execution time");
    assert!(
        size > time,
        "size gain ratio {size} not above execution time {time}"
    );
}

#[test]
fn paper_shape_checklist_mostly_passes() {
    let (_, r) = run();
    let checks = r.observations().check_against_paper();
    let misses: Vec<_> = checks.iter().filter(|c| !c.pass).collect();
    assert!(
        misses.len() <= 2,
        "too many shape misses on the calibration seed: {misses:#?}"
    );
}
