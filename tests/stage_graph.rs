//! Golden equivalence of the stage-graph pipeline with the legacy
//! monolithic sequence, plus the `AnalysisSet` subset law.
//!
//! The refactor's promise is *structural*, not behavioral: running the
//! stage graph over a shared [`AnalysisContext`] must reproduce exactly
//! what the old hand-wired `CoAnalysis::run` computed. This test re-wires
//! the legacy sequence by hand from the public stage building blocks and
//! compares every `CoAnalysisResult` field on five simulation seeds; a
//! proptest then checks that *any* of the 4096 stage subsets agrees with
//! the full run on every product it emits.

#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_coanalysis::bgp_sim::{SimConfig, SimOutput, Simulation};
use bgp_coanalysis::coanalysis::analysis::failure_stats::TableIv;
use bgp_coanalysis::coanalysis::analysis::{
    BurstAnalysis, FdaAnalysis, InterruptionStats, MidplaneProfile, PropagationAnalysis,
    VulnerabilityAnalysis,
};
use bgp_coanalysis::coanalysis::classify::{classify_impact, classify_root_cause};
use bgp_coanalysis::coanalysis::event::Event;
use bgp_coanalysis::coanalysis::filter::{FilterStats, JobRelatedFilter};
use bgp_coanalysis::coanalysis::{
    AnalysisContext, AnalysisSet, CoAnalysis, CoAnalysisConfig, CoAnalysisResult, StageId,
};
use proptest::proptest;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The legacy monolithic pipeline, re-wired by hand from the public stage
/// building blocks, exactly as `CoAnalysis::run` was before the stage
/// graph.
fn legacy_run(out: &SimOutput, cfg: &CoAnalysisConfig) -> CoAnalysisResult {
    let ctx = AnalysisContext::new(&out.ras, &out.jobs);
    let raw: Vec<Event> = Event::from_fatal_records(&out.ras);

    // Temporal + spatial per error-code shard, sequentially, in sorted
    // code order.
    let mut shards: BTreeMap<_, Vec<Event>> = BTreeMap::new();
    for e in &raw {
        shards.entry(e.errcode).or_default().push(*e);
    }
    let mut after_temporal = 0usize;
    let mut after_spatial: Vec<Event> = Vec::new();
    for shard in shards.values() {
        let t = cfg.temporal.apply(shard);
        after_temporal += t.len();
        after_spatial.extend(cfg.spatial.apply(&t));
    }
    after_spatial.sort_by_key(|e| (e.time, e.first_recid));

    let (events, causal_rules) = cfg.causal.filter(&after_spatial);
    let matching = cfg.matcher.run(&events, &ctx);
    let outcome = JobRelatedFilter.apply(&events, &matching, &ctx);

    let filter_stats = FilterStats {
        raw_fatal: raw.len(),
        after_temporal,
        after_spatial: after_spatial.len(),
        after_causal: events.len(),
        after_job_related: outcome.events.len(),
    };

    let impact = classify_impact(&events, &matching);
    let root_cause = classify_root_cause(&events, &matching, &ctx);

    let table_iv = TableIv::new(&events, &outcome.events).ok();
    let midplane = MidplaneProfile::new(&outcome.events, &ctx, cfg.wide_threshold);
    let victims = matching.interrupted_records(&out.jobs);
    let window = out.ras.time_span().unwrap_or((
        bgp_coanalysis::bgp_model::Timestamp::EPOCH,
        bgp_coanalysis::bgp_model::Timestamp::EPOCH,
    ));
    let burst = BurstAnalysis::new(&victims, &ctx, window, cfg.quick_window);
    let interruption = InterruptionStats::new(&events, &matching, &root_cause, &ctx);
    let propagation = PropagationAnalysis::new(&events, &matching, &ctx, &outcome.redundant);
    let vulnerability = VulnerabilityAnalysis::new(
        &events,
        &matching,
        &root_cause,
        &ctx,
        &midplane.fatal_counts,
    );
    // Sequential FDA mine — the graph runs it at cfg.threads, so this
    // comparison doubles as a thread-count-invariance check.
    let fda = FdaAnalysis::compute(&events, &matching, ctx.fda_columns(), &cfg.fda, 1);

    CoAnalysisResult {
        events,
        causal_rules,
        matching,
        job_redundant: outcome.redundant,
        events_final: outcome.events,
        filter_stats,
        impact,
        root_cause,
        table_iv,
        midplane,
        burst,
        interruption,
        propagation,
        vulnerability,
        fda,
    }
}

fn assert_results_equal(legacy: &CoAnalysisResult, graph: &CoAnalysisResult, seed: u64) {
    assert_eq!(legacy.events, graph.events, "events differ (seed {seed})");
    assert_eq!(
        legacy.causal_rules, graph.causal_rules,
        "causal rules differ (seed {seed})"
    );
    assert_eq!(
        legacy.matching, graph.matching,
        "matching differs (seed {seed})"
    );
    assert_eq!(
        legacy.job_redundant, graph.job_redundant,
        "redundancy flags differ (seed {seed})"
    );
    assert_eq!(
        legacy.events_final, graph.events_final,
        "final events differ (seed {seed})"
    );
    assert_eq!(
        legacy.filter_stats, graph.filter_stats,
        "filter stats differ (seed {seed})"
    );
    assert_eq!(legacy.impact, graph.impact, "impact differs (seed {seed})");
    assert_eq!(
        legacy.root_cause, graph.root_cause,
        "root cause differs (seed {seed})"
    );
    assert_eq!(
        legacy.table_iv, graph.table_iv,
        "table IV differs (seed {seed})"
    );
    assert_eq!(
        legacy.midplane, graph.midplane,
        "midplane profile differs (seed {seed})"
    );
    assert_eq!(legacy.burst, graph.burst, "burst differs (seed {seed})");
    assert_eq!(
        legacy.interruption, graph.interruption,
        "interruption differs (seed {seed})"
    );
    assert_eq!(
        legacy.propagation, graph.propagation,
        "propagation differs (seed {seed})"
    );
    assert_eq!(
        legacy.vulnerability, graph.vulnerability,
        "vulnerability differs (seed {seed})"
    );
    assert_eq!(legacy.fda, graph.fda, "fda differs (seed {seed})");
}

#[test]
fn stage_graph_reproduces_legacy_pipeline() {
    for seed in 1..=5u64 {
        let out = Simulation::new(SimConfig::small_test(seed))
            .expect("valid config")
            .run();
        let cfg = CoAnalysisConfig::default();
        let legacy = legacy_run(&out, &cfg);
        let graph = CoAnalysis::with_config(cfg).run(&out.ras, &out.jobs);
        assert_results_equal(&legacy, &graph, seed);
    }
}

/// Shared fixture for the subset proptest: one simulation plus its full
/// stage-graph run.
fn fixture() -> &'static (SimOutput, CoAnalysisResult) {
    static FIXTURE: OnceLock<(SimOutput, CoAnalysisResult)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let out = Simulation::new(SimConfig::small_test(11))
            .expect("valid config")
            .run();
        let full = CoAnalysis::default().run(&out.ras, &out.jobs);
        (out, full)
    })
}

proptest! {
    /// Any of the 8192 stage subsets agrees with the full run on every
    /// product it emits — and emits exactly the closure's products.
    #[test]
    fn any_subset_agrees_with_full_run(bits in 0u16..8192) {
        let (out, full) = fixture();
        let set = AnalysisSet::of(
            &StageId::ALL
                .iter()
                .enumerate()
                .filter(|&(i, _)| bits & (1 << i) != 0)
                .map(|(_, &id)| id)
                .collect::<Vec<_>>(),
        );
        let closed = set.closure();
        let r = CoAnalysis::default().run_selected(&out.ras, &out.jobs, set);

        // Presence: a product is Some exactly when its stage is in the
        // closure.
        assert_eq!(r.events.is_some(), closed.contains(StageId::Causal));
        assert_eq!(r.causal_rules.is_some(), closed.contains(StageId::Causal));
        assert_eq!(r.matching.is_some(), closed.contains(StageId::Matching));
        assert_eq!(r.job_redundant.is_some(), closed.contains(StageId::JobRelated));
        assert_eq!(r.events_final.is_some(), closed.contains(StageId::JobRelated));
        assert_eq!(r.filter_stats.is_some(), closed.contains(StageId::JobRelated));
        assert_eq!(r.impact.is_some(), closed.contains(StageId::Impact));
        assert_eq!(r.root_cause.is_some(), closed.contains(StageId::RootCause));
        assert_eq!(r.table_iv.is_some(), closed.contains(StageId::TableIv));
        assert_eq!(r.midplane.is_some(), closed.contains(StageId::Midplane));
        assert_eq!(r.burst.is_some(), closed.contains(StageId::Burst));
        assert_eq!(r.interruption.is_some(), closed.contains(StageId::Interruption));
        assert_eq!(r.propagation.is_some(), closed.contains(StageId::Propagation));
        assert_eq!(r.vulnerability.is_some(), closed.contains(StageId::Vulnerability));
        assert_eq!(r.fda.is_some(), closed.contains(StageId::Fda));

        // Agreement: every emitted product equals the full run's.
        if let Some(v) = &r.events { assert_eq!(v, &full.events); }
        if let Some(v) = &r.causal_rules { assert_eq!(v, &full.causal_rules); }
        if let Some(v) = &r.matching { assert_eq!(v, &full.matching); }
        if let Some(v) = &r.job_redundant { assert_eq!(v, &full.job_redundant); }
        if let Some(v) = &r.events_final { assert_eq!(v, &full.events_final); }
        if let Some(v) = &r.filter_stats { assert_eq!(v, &full.filter_stats); }
        if let Some(v) = &r.impact { assert_eq!(v, &full.impact); }
        if let Some(v) = &r.root_cause { assert_eq!(v, &full.root_cause); }
        if let Some(v) = &r.table_iv { assert_eq!(v, &full.table_iv); }
        if let Some(v) = &r.midplane { assert_eq!(v, &full.midplane); }
        if let Some(v) = &r.burst { assert_eq!(v, &full.burst); }
        if let Some(v) = &r.interruption { assert_eq!(v, &full.interruption); }
        if let Some(v) = &r.propagation { assert_eq!(v, &full.propagation); }
        if let Some(v) = &r.vulnerability { assert_eq!(v, &full.vulnerability); }
        if let Some(v) = &r.fda { assert_eq!(v, &full.fda); }
    }
}
