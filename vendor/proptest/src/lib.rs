//! Offline vendored mini property-testing harness.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of the `proptest` API the workspace's property tests use:
//!
//! * [`Strategy`] with range, tuple, and mapped strategies;
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`], [`prop_compose!`], and [`prop_oneof!`] macros;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports its test name, case index, and
//!   seed; re-running is exactly reproducible (seeds derive from the test
//!   path, not ambient entropy), which substitutes for minimization well
//!   enough at this scale.
//! * **Deterministic by default.** `PROPTEST_SEED` perturbs the base seed and
//!   `PROPTEST_CASES` overrides the per-test case count (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngExt, SeedableRng};
use std::rc::Rc;

/// The RNG threaded through strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Build the RNG for one test case from a base seed and case index.
    pub fn from_parts(base: u64, case: u64) -> Self {
        TestRng(rand::rngs::SmallRng::seed_from_u64(
            base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Derive a stable base seed for a test from its fully qualified name.
///
/// FNV-1a over the name, XORed with the optional `PROPTEST_SEED` environment
/// variable so a whole run can be perturbed without touching code.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ env
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(64)
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy transformed by a mapping function. See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// A type-erased, reference-counted strategy; what [`prop_oneof!`] arms and
/// [`prop_compose!`] bodies become.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Erase a strategy's type so heterogeneous strategies can share a vec.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
}

/// A uniform choice among type-erased strategies. See [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for variable-length `Vec`s. See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generate `Vec`s whose length is drawn from `len` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, BoxedStrategy, Strategy, TestRng, Union,
    };
}

/// Assert a condition inside a property; failure fails the whole case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] cases with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$attr])*
        fn $name() {
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let cases = $crate::case_count();
            for case in 0..cases {
                let mut rng = $crate::TestRng::from_parts(base, u64::from(case));
                let run = || {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest failure: {}::{} case {case}/{cases} (base seed {base}; \
                         rerun is deterministic, set PROPTEST_SEED to perturb)",
                        module_path!(),
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )+};
}

/// Define a named composite strategy:
/// `prop_compose! { fn name()(a in s1, b in s2) -> T { body } }` expands to
/// `fn name() -> impl Strategy<Value = T>`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$attr:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::BoxedStrategy::from_fn(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u8..10, y in -5i64..5, f in 0.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(xs in collection::vec(0u32..100, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b, a + b)) ) {
            prop_assert_eq!(p.2, p.0 + p.1);
        }

        #[test]
        fn oneof_picks_every_arm(v in prop_oneof![0u8..1, 10u8..11, 20u8..21]) {
            prop_assert!(v == 0 || v == 10 || v == 20);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..8, b in 0u8..8) -> (u8, u8) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_orders_pair(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
