//! Offline vendored mini benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! subset of the Criterion API the workspace's benches use: benchmark groups,
//! per-input benchmarks, element throughput, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model (simpler than real Criterion, good enough for relative
//! comparisons): after a short warm-up, each benchmark runs batches of
//! iterations until ~200 ms of wall time or a batch cap is reached, and the
//! mean per-iteration time (plus derived throughput) is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], which real Criterion also offers.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

/// The per-benchmark timing driver handed to `iter` closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            target,
        }
    }

    /// Run `f` repeatedly, timing each call, until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed calls so lazy init and caches settle.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = self.target;
        let started = Instant::now();
        while started.elapsed() < budget && self.iters < 1_000_000 {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Option<Duration> {
        (self.iters > 0).then(|| {
            self.total / u32::try_from(self.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        })
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count (accepted for API compatibility; the
    /// time-budget model makes it advisory).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&full, tp, |b| f(b));
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&full, tp, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            time_budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with real Criterion; returns `self`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.run_one(&name, None, |b| f(b));
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut b = Bencher::new(self.time_budget);
        f(&mut b);
        match b.mean() {
            Some(mean) => {
                let rate = match throughput {
                    Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64();
                        format!("  ({per_sec:.0} elem/s)")
                    }
                    Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
                        format!("  ({per_sec:.1} MiB/s)")
                    }
                    _ => String::new(),
                };
                println!("{name:<50} {mean:>12.3?}/iter over {} iters{rate}", b.iters);
            }
            None => println!("{name:<50} (no iterations executed)"),
        }
    }
}

/// Declare a benchmark group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            time_budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("48d").to_string(), "48d");
    }
}
