//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace cannot download crates.io dependencies. This crate implements
//! exactly the API subset the workspace uses — [`Rng`], [`RngExt`],
//! [`SeedableRng`], and [`rngs::SmallRng`] — on top of xoshiro256++, a small,
//! fast, statistically solid PRNG.
//!
//! Everything here is **deterministic by construction**: there is no thread
//! RNG, no OS entropy source, and no way to seed from ambient state. That is
//! deliberate — the co-analysis pipeline's reproducibility contract (enforced
//! by `cargo xtask lint`) requires every random stream to be threaded from an
//! explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
///
/// Mirrors `rand::Rng` closely enough for the workspace: object-safe, with
/// [`RngExt`] layering the generic convenience methods on top.
pub trait Rng {
    /// Return the next random `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain fallback would be fine too, but
                // this is branch-light and exact enough for simulation use.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods layered over any [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from an explicit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the workspace's small, fast, seedable generator.
    ///
    /// Matches `rand::rngs::SmallRng`'s role: not cryptographically secure,
    /// excellent statistical quality, 256-bit state, `O(1)` jump-free
    /// sampling. Reference: Blackman & Vigna, "Scrambled linear
    /// pseudorandom number generators" (2019).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
