//! Seeded random samplers used by the simulator.
//!
//! All samplers take a generic `rand::Rng` so the simulator can thread a
//! single deterministic `SmallRng` through every component. Inverse-transform
//! sampling everywhere — simple, branch-free, and exactly matched to the
//! distributions fitted by [`crate::weibull`] / [`crate::exponential`].

use rand::{Rng, RngExt};

/// Draw from `Weibull(shape, scale)` by inverse transform:
/// `x = scale · (−ln U)^{1/shape}`.
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    debug_assert!(shape > 0.0 && scale > 0.0);
    let u: f64 = rng.random::<f64>();
    // Guard the log: random() is in [0, 1); use 1 − u ∈ (0, 1].
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Draw from `Exponential(rate)`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.random::<f64>();
    -(1.0 - u).ln() / rate
}

/// Draw from a log-normal with the given parameters of the underlying
/// normal (`mu`, `sigma`). Uses Box–Muller.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0);
    (mu + sigma * standard_normal(rng)).exp()
}

/// Draw a standard normal via Box–Muller (one value per call; the antithetic
/// twin is discarded for simplicity — sampling is far from the hot path).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw an index from a discrete distribution given non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must sum to > 0");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A precomputed Zipf(θ) sampler over ranks `1..=n` (returned 0-based).
///
/// Zipf activity models the paper's user/project populations: a few users
/// submit most jobs. Uses a cached cumulative table, so each draw is a
/// binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta <= 0`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs n > 0");
        assert!(theta > 0.0, "Zipf needs theta > 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a 0-based rank (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n > 0 enforced at construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Draw from a Poisson with mean `lambda` (Knuth's method for small λ,
/// normal approximation above 50 — adequate for arrival-count sampling).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn weibull_sample_mean_matches_theory() {
        let mut r = rng();
        let (shape, scale) = (0.6, 1000.0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| weibull(&mut r, shape, scale)).sum::<f64>() / n as f64;
        let theory = crate::Weibull::new(shape, scale).unwrap().mean();
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "sample {mean} vs theory {theory}"
        );
    }

    #[test]
    fn exponential_sample_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.01)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn samples_are_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(weibull(&mut r, 0.3, 10.0) >= 0.0);
            assert!(exponential(&mut r, 2.0) >= 0.0);
            assert!(lognormal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_weight_skipped() {
        let mut r = rng();
        for _ in 0..1000 {
            let i = categorical(&mut r, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_empty_panics() {
        categorical(&mut rng(), &[]);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = rng();
        let z = Zipf::new(100, 1.1);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            let k = z.sample(&mut r);
            assert!(k < 100);
            counts[k] += 1;
        }
        // Rank 0 should dominate rank 50 heavily.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // Head heaviness: top-10 ranks should carry a large share.
        let head: usize = counts[..10].iter().sum();
        assert!(head as f64 / 50_000.0 > 0.4);
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 5.0, 80.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda.max(1.0) < 0.06,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(weibull(&mut a, 0.7, 3.0), weibull(&mut b, 0.7, 3.0));
        }
    }
}
