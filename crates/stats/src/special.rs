//! Special functions: log-gamma and the regularized incomplete gamma.
//!
//! These are the only transcendental functions the analysis needs beyond
//! `libm`: Weibull moments need Γ(1 + k/α), and the likelihood-ratio test
//! needs the χ² survival function, which is an upper regularized incomplete
//! gamma.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9); relative error below 1e-13 over the
/// domain used here.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Godfrey / Press et al.), quoted at full
    // published precision even where f64 rounds the tail.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function Γ(x) for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Lower regularized incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`,
/// for `a > 0`, `x ≥ 0`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes §6.2); absolute error ≲ 1e-12.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_cf(a, x)
    }
}

/// Upper regularized incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_cf(a, x)
    }
}

/// Survival function of the χ² distribution with `k` degrees of freedom:
/// `P(X > x)`.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_sf requires k > 0, got {k}");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Series representation of P(a, x), valid (fast-converging) for x < a + 1.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz), valid for
/// x ≥ a + 1.
fn upper_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn gamma_integer_values() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0;
        for n in 1..15 {
            close(gamma(n as f64), fact, 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = √π
        close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-12);
        // Γ(3/2) = √π / 2
        close(gamma(1.5), std::f64::consts::PI.sqrt() / 2.0, 1e-12);
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at x = 100: ln Γ(100) = ln(99!)
        let ln99fact: f64 = (1..=99).map(|i| (i as f64).ln()).sum();
        close(ln_gamma(100.0), ln99fact, 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.0, 0.1, 1.0, 5.0, 30.0, 100.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(2.7, x);
            assert!(p >= prev - 1e-14, "not monotone at x={x}");
            prev = p;
        }
    }

    #[test]
    fn chi2_sf_known_values() {
        // χ²₁: P(X > 3.841) ≈ 0.05 (the 95 % critical value).
        close(chi2_sf(3.841, 1.0), 0.05, 5e-3);
        // χ²₁: P(X > 6.635) ≈ 0.01.
        close(chi2_sf(6.635, 1.0), 0.01, 5e-3);
        // χ²₂ has SF e^{−x/2}: P(X > 4) = e^{−2}.
        close(chi2_sf(4.0, 2.0), (-2.0f64).exp(), 1e-12);
        assert_eq!(chi2_sf(0.0, 1.0), 1.0);
        assert_eq!(chi2_sf(-1.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
