//! Descriptive statistics: mean, variance, quantiles, extremes.

use crate::StatsError;

/// One-pass summary of a sample (Welford's algorithm for the variance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n − 1 denominator); 0 for n < 2.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Errors if the sample is empty or contains NaN.
    pub fn of(xs: &[f64]) -> Result<Summary, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            if x.is_nan() {
                return Err(StatsError::InvalidSample(x));
            }
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let variance = if xs.len() > 1 {
            m2 / (xs.len() as f64 - 1.0)
        } else {
            0.0
        };
        Ok(Summary {
            n: xs.len(),
            mean,
            variance,
            min,
            max,
        })
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// The `q`-th quantile (0 ≤ q ≤ 1) by linear interpolation between order
/// statistics (type-7, the R/NumPy default). The input need not be sorted.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::BadParameter {
            name: "q",
            value: q,
        });
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    if sorted.iter().any(|x| x.is_nan()) {
        return Err(StatsError::InvalidSample(f64::NAN));
    }
    sorted.sort_by(f64::total_cmp);
    let h = q * (sorted.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// The median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_element() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[1.0, f64::NAN]).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        // Order independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(median(&shuffled).unwrap(), 2.5);
    }

    proptest! {
        #[test]
        fn mean_between_min_and_max(xs in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
            let s = Summary::of(&xs).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.variance >= -1e-9);
        }

        #[test]
        fn quantile_monotone(xs in proptest::collection::vec(-1e6..1e6f64, 2..50)) {
            let q1 = quantile(&xs, 0.25).unwrap();
            let q2 = quantile(&xs, 0.5).unwrap();
            let q3 = quantile(&xs, 0.75).unwrap();
            prop_assert!(q1 <= q2 + 1e-9);
            prop_assert!(q2 <= q3 + 1e-9);
        }
    }
}
