//! Information-gain-ratio feature ranking (Section VI-D of the paper).
//!
//! The paper ranks five job features — user, project, execution time, size,
//! location — by how much each tells us about whether a job gets interrupted.
//! Features and labels are categorical; continuous features (execution time)
//! are discretized by the caller into the paper's bins.
//!
//! Gain ratio = information gain / split information, the C4.5 normalization
//! \[26\] that stops high-cardinality features (like user id) from winning by
//! sheer fragmentation — which is exactly the effect behind Observation 12.

use crate::StatsError;

/// Shannon entropy (base 2) of a discrete label sample given as class counts.
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy (base 2) of a label vector.
pub fn entropy(labels: &[usize], num_classes: usize) -> f64 {
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        counts[l] += 1;
    }
    entropy_from_counts(&counts)
}

/// The result of evaluating one feature against the labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureScore {
    /// Information gain `H(labels) − H(labels | feature)` in bits.
    pub gain: f64,
    /// Split information `H(feature)` in bits.
    pub split_info: f64,
    /// Gain ratio `gain / split_info`; 0 when the split info is 0
    /// (a constant feature carries no information).
    pub gain_ratio: f64,
}

/// Reusable count buffers for [`evaluate_feature_with_scratch`] — lets a
/// caller ranking many features amortize the contingency-table allocations
/// instead of paying a fresh `Vec<Vec<usize>>` per feature.
#[derive(Debug, Clone, Default)]
pub struct GainScratch {
    /// Flattened joint counts: `joint[v * num_classes + l]`.
    joint: Vec<usize>,
    /// Marginal counts per feature value.
    per_value: Vec<usize>,
    /// Marginal counts per class.
    label_counts: Vec<usize>,
}

/// Evaluate a categorical feature against categorical labels.
///
/// `feature[i]` is the feature value (0-based category id) of observation
/// `i`, `labels[i]` its class. Errors on length mismatch or empty input.
pub fn evaluate_feature(
    feature: &[usize],
    num_feature_values: usize,
    labels: &[usize],
    num_classes: usize,
) -> Result<FeatureScore, StatsError> {
    evaluate_feature_with_scratch(
        feature,
        num_feature_values,
        labels,
        num_classes,
        &mut GainScratch::default(),
    )
}

/// [`evaluate_feature`] with caller-owned count buffers.
///
/// Numerically identical to [`evaluate_feature`] — the scratch only changes
/// where the counts live, never the order they are accumulated or summed in.
pub fn evaluate_feature_with_scratch(
    feature: &[usize],
    num_feature_values: usize,
    labels: &[usize],
    num_classes: usize,
    scratch: &mut GainScratch,
) -> Result<FeatureScore, StatsError> {
    if feature.len() != labels.len() {
        return Err(StatsError::NotEnoughData {
            needed: feature.len(),
            got: labels.len(),
        });
    }
    if feature.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let n = feature.len() as f64;

    // Joint counts: per feature value, per class (flattened row-major).
    scratch.joint.clear();
    scratch.joint.resize(num_feature_values * num_classes, 0);
    scratch.per_value.clear();
    scratch.per_value.resize(num_feature_values, 0);
    scratch.label_counts.clear();
    scratch.label_counts.resize(num_classes, 0);
    for (&f, &l) in feature.iter().zip(labels) {
        assert!(f < num_feature_values, "feature value {f} out of range");
        assert!(l < num_classes, "label {l} out of range");
        scratch.joint[f * num_classes + l] += 1;
        scratch.per_value[f] += 1;
        scratch.label_counts[l] += 1;
    }

    let h_labels = entropy_from_counts(&scratch.label_counts);
    let mut h_cond = 0.0;
    for (v, counts) in scratch.joint.chunks(num_classes).enumerate() {
        if scratch.per_value[v] == 0 {
            continue;
        }
        let w = scratch.per_value[v] as f64 / n;
        h_cond += w * entropy_from_counts(counts);
    }
    let gain = (h_labels - h_cond).max(0.0);
    let split_info = entropy_from_counts(&scratch.per_value);
    let gain_ratio = if split_info > 0.0 {
        gain / split_info
    } else {
        0.0
    };
    Ok(FeatureScore {
        gain,
        split_info,
        gain_ratio,
    })
}

/// A named feature column for [`rank_features`].
#[derive(Debug, Clone)]
pub struct FeatureColumn {
    /// Human-readable feature name (e.g. `"job size"`).
    pub name: String,
    /// Per-observation category ids.
    pub values: Vec<usize>,
    /// Number of categories.
    pub cardinality: usize,
}

/// Rank features by gain ratio, descending. Ties broken by name for
/// determinism.
pub fn rank_features(
    features: &[FeatureColumn],
    labels: &[usize],
    num_classes: usize,
) -> Result<Vec<(String, FeatureScore)>, StatsError> {
    let mut out = Vec::with_capacity(features.len());
    for f in features {
        let score = evaluate_feature(&f.values, f.cardinality, labels, num_classes)?;
        out.push((f.name.clone(), score));
    }
    out.sort_by(|a, b| {
        b.1.gain_ratio
            .total_cmp(&a.1.gain_ratio)
            .then_with(|| a.0.cmp(&b.0))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_from_counts(&[]), 0.0);
        assert_eq!(entropy_from_counts(&[10]), 0.0);
        assert!((entropy_from_counts(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy_from_counts(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Skewed is less than uniform.
        assert!(entropy_from_counts(&[9, 1]) < 1.0);
        assert!((entropy(&[0, 1, 0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_predictive_feature() {
        // feature == label: gain = H(labels) = 1 bit, gain ratio = 1.
        let labels = [0, 0, 1, 1];
        let feature = [0, 0, 1, 1];
        let s = evaluate_feature(&feature, 2, &labels, 2).unwrap();
        assert!((s.gain - 1.0).abs() < 1e-12);
        assert!((s.gain_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_feature() {
        // Constant feature: no gain, zero split info → ratio 0 (not NaN).
        let labels = [0, 1, 0, 1];
        let feature = [0, 0, 0, 0];
        let s = evaluate_feature(&feature, 1, &labels, 2).unwrap();
        assert_eq!(s.gain, 0.0);
        assert_eq!(s.gain_ratio, 0.0);

        // Independent feature: ~no gain.
        let feature = [0, 0, 1, 1];
        let labels = [0, 1, 0, 1];
        let s = evaluate_feature(&feature, 2, &labels, 2).unwrap();
        assert!(s.gain < 1e-12);
    }

    #[test]
    fn gain_ratio_penalizes_fragmentation() {
        // A unique-id feature perfectly "predicts" but fragments completely;
        // its gain ratio must be below that of a clean two-way split.
        let labels = [0, 0, 0, 0, 1, 1, 1, 1];
        let id_feature = [0, 1, 2, 3, 4, 5, 6, 7];
        let clean = [0, 0, 0, 0, 1, 1, 1, 1];
        let s_id = evaluate_feature(&id_feature, 8, &labels, 2).unwrap();
        let s_clean = evaluate_feature(&clean, 2, &labels, 2).unwrap();
        assert!((s_id.gain - s_clean.gain).abs() < 1e-12); // both gain 1 bit
        assert!(s_id.gain_ratio < s_clean.gain_ratio);
    }

    #[test]
    fn ranking() {
        let labels = vec![0, 0, 0, 1, 1, 1];
        let features = vec![
            FeatureColumn {
                name: "noise".into(),
                values: vec![0, 1, 0, 1, 0, 1],
                cardinality: 2,
            },
            FeatureColumn {
                name: "signal".into(),
                values: vec![0, 0, 0, 1, 1, 1],
                cardinality: 2,
            },
        ];
        let ranked = rank_features(&features, &labels, 2).unwrap();
        assert_eq!(ranked[0].0, "signal");
        assert!(ranked[0].1.gain_ratio > ranked[1].1.gain_ratio);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let labels = [0, 1, 0, 1, 1, 0, 0, 1, 1];
        let feats: [(&[usize], usize); 3] = [
            (&[0, 0, 1, 1, 2, 2, 0, 1, 2], 3),
            (&[0, 1, 0, 1, 1, 0, 0, 1, 1], 2),
            (&[4, 3, 2, 1, 0, 1, 2, 3, 4], 5),
        ];
        let mut scratch = GainScratch::default();
        for (f, card) in feats {
            let fresh = evaluate_feature(f, card, &labels, 2).unwrap();
            let reused = evaluate_feature_with_scratch(f, card, &labels, 2, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn errors() {
        assert!(evaluate_feature(&[0], 1, &[], 2).is_err());
        assert!(evaluate_feature(&[], 1, &[], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_feature_panics() {
        let _ = evaluate_feature(&[5], 2, &[0], 2);
    }
}
