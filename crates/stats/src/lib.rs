//! # `bgp_stats` — statistics substrate for log co-analysis
//!
//! Everything the paper's evaluation needs, implemented from scratch (no
//! external statistics crates):
//!
//! * [`weibull`] / [`exponential`] — the two interarrival models the paper
//!   fits (Section V), with maximum-likelihood estimation exactly as in
//!   Schroeder & Gibson \[8\].
//! * [`lrt`] — the likelihood-ratio test the paper uses to show Weibull beats
//!   exponential (exponential is the `shape = 1` submodel of Weibull, so the
//!   LRT statistic is asymptotically χ²₁).
//! * [`ecdf`] — empirical CDFs for Figures 3 and 6.
//! * [`ks`] — Kolmogorov–Smirnov distance as a secondary goodness-of-fit
//!   check.
//! * [`pearson`] — Pearson's correlation coefficient, used by the paper's
//!   root-cause classifier to label leftover fatal types (Section IV-B) and
//!   by the Figure 4 workload/failure-rate comparison.
//! * [`infogain`] — information-gain-ratio feature ranking \[26\], used for
//!   the job-vulnerability study (Section VI-D).
//! * [`special`] — log-gamma and regularized incomplete gamma, needed for
//!   Weibull moments and χ² tail probabilities.
//! * [`summary`], [`hist`] — descriptive statistics and binning helpers.
//! * [`sample`] — seeded samplers (Weibull, exponential, log-normal, Zipf,
//!   categorical, Poisson) used by the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom used throughout this
// crate: it is true for NaN where `x <= 0.0` is not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod ecdf;
pub mod exponential;
pub mod hist;
pub mod infogain;
pub mod ks;
pub mod linreg;
pub mod lrt;
pub mod pearson;
pub mod sample;
pub mod special;
pub mod summary;
pub mod weibull;

pub use ecdf::Ecdf;
pub use exponential::Exponential;
pub use lrt::{compare_models, FitComparison};
pub use weibull::Weibull;

/// Errors from statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty or too small for the requested estimate.
    NotEnoughData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// The input contained a value outside the distribution's support
    /// (e.g. a non-positive interarrival time for Weibull fitting).
    InvalidSample(
        /// The offending value.
        f64,
    ),
    /// An iterative estimator failed to converge.
    NoConvergence {
        /// Which estimator.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A distribution parameter was invalid (non-positive shape/scale/rate).
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::InvalidSample(v) => write!(f, "invalid sample value {v}"),
            StatsError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            StatsError::BadParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}
