//! Empirical cumulative distribution functions (Figures 3 and 6).

use crate::StatsError;

/// An empirical CDF built from a sample.
///
/// Evaluation is `O(log n)` by binary search over the sorted sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (unsorted input fine; NaN rejected).
    pub fn new(xs: &[f64]) -> Result<Ecdf, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if let Some(&nan) = xs.iter().find(|x| x.is_nan()) {
            return Err(StatsError::InvalidSample(nan));
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Ecdf { sorted })
    }

    /// `F̂(x)` = fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we test <=.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying the ECDF.
    pub fn sample(&self) -> &[f64] {
        &self.sorted
    }

    /// The step points of the ECDF as `(x, F̂(x))` pairs, one per distinct
    /// sample value — this is the series a Figure-3-style plot draws.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::with_capacity(self.sorted.len());
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n));
            i = j;
        }
        out
    }

    /// Evaluate at `k` log-spaced points spanning the sample range — the
    /// natural x-axis for interarrival CDFs whose support spans 5 orders of
    /// magnitude (as in the paper's Figure 3).
    ///
    /// Requires a strictly positive sample minimum; `k ≥ 2`.
    pub fn log_spaced(&self, k: usize) -> Result<Vec<(f64, f64)>, StatsError> {
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if !(lo > 0.0) {
            return Err(StatsError::InvalidSample(lo));
        }
        if k < 2 {
            return Err(StatsError::BadParameter {
                name: "k",
                value: k as f64,
            });
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        Ok((0..k)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (k - 1) as f64).exp();
                (x, self.eval(x))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_evaluation() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(2.5), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn steps_deduplicate() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.steps(), vec![(1.0, 0.25), (2.0, 0.75), (5.0, 1.0)]);
    }

    #[test]
    fn log_spaced_spans_range() {
        let e = Ecdf::new(&[10.0, 100.0, 1_000.0, 10_000.0]).unwrap();
        let pts = e.log_spaced(5).unwrap();
        assert_eq!(pts.len(), 5);
        assert!((pts[0].0 - 10.0).abs() < 1e-9);
        assert!((pts[4].0 - 10_000.0).abs() < 1e-6);
        assert_eq!(pts[4].1, 1.0);
        // Non-positive minimum rejected.
        let e = Ecdf::new(&[0.0, 1.0]).unwrap();
        assert!(e.log_spaced(5).is_err());
        let e = Ecdf::new(&[1.0, 2.0]).unwrap();
        assert!(e.log_spaced(1).is_err());
    }

    proptest! {
        #[test]
        fn monotone_and_bounded(
            xs in proptest::collection::vec(-1e6..1e6f64, 1..200),
            probe in proptest::collection::vec(-2e6..2e6f64, 2..20),
        ) {
            let e = Ecdf::new(&xs).unwrap();
            let mut ps: Vec<f64> = probe.clone();
            ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for p in ps {
                let v = e.eval(p);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= prev);
                prev = v;
            }
            // Below min → 0, at max → 1.
            prop_assert_eq!(e.eval(e.sample()[0] - 1.0), 0.0);
            prop_assert_eq!(e.eval(*e.sample().last().unwrap()), 1.0);
        }

        #[test]
        fn dkw_style_agreement_with_true_cdf(seed in 0u64..500) {
            // ECDF of a uniform sample stays within 0.12 of the true CDF
            // for n = 400 (DKW bound with generous epsilon).
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..400).map(|_| rng.random::<f64>()).collect();
            let e = Ecdf::new(&xs).unwrap();
            for i in 1..10 {
                let x = i as f64 / 10.0;
                prop_assert!((e.eval(x) - x).abs() < 0.12);
            }
        }
    }
}
