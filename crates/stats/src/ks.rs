//! Kolmogorov–Smirnov goodness-of-fit distance.
//!
//! A secondary check alongside the likelihood-ratio test: the one-sample KS
//! statistic is the sup-distance between the empirical CDF and a fitted CDF.
//! Smaller is better; comparing the Weibull and exponential KS distances on
//! the same sample is a nonparametric way to see Figure 3's "Weibull hugs the
//! empirical curve" claim.

use crate::{Ecdf, StatsError};

/// One-sample KS statistic: `sup_x |F̂(x) − F(x)|` where `F̂` is the sample
/// ECDF and `F` the candidate CDF.
///
/// Evaluates the sup over the sample points (where the ECDF jumps), checking
/// both sides of each jump — exact for a right-continuous step ECDF.
pub fn ks_statistic<F: Fn(f64) -> f64>(xs: &[f64], cdf: F) -> Result<f64, StatsError> {
    let ecdf = Ecdf::new(xs)?;
    let n = ecdf.len() as f64;
    let mut d: f64 = 0.0;
    let mut below = 0.0; // ECDF value just left of the current jump
    for (x, f_hat) in ecdf.steps() {
        let f = cdf(x);
        if !(0.0..=1.0).contains(&f) || f.is_nan() {
            return Err(StatsError::InvalidSample(f));
        }
        d = d.max((f - below).abs()).max((f_hat - f).abs());
        below = f_hat;
    }
    let _ = n;
    Ok(d)
}

/// Approximate p-value of the one-sample KS test (Kolmogorov asymptotic
/// series with the Stephens small-sample correction).
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if d <= 0.0 {
        return 1.0;
    }
    let n = n as f64;
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    // Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-10 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::weibull as sample_weibull;
    use crate::{Exponential, Weibull};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn minimal_distance_for_mid_jump_cdf() {
        // A continuous CDF passing through the midpoint of every ECDF jump
        // achieves the minimum possible distance for n points: 1/(2n).
        let xs = [1.0, 2.0, 3.0, 4.0];
        let d = ks_statistic(&xs, |x| ((2.0 * x - 1.0) / 8.0).clamp(0.0, 1.0)).unwrap();
        assert!((d - 0.125).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn weibull_fits_weibull_data_better_than_exponential() {
        let mut rng = SmallRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..3_000)
            .map(|_| sample_weibull(&mut rng, 0.45, 8_000.0))
            .collect();
        let w = Weibull::fit_mle(&xs).unwrap();
        let e = Exponential::fit_mle(&xs).unwrap();
        let dw = ks_statistic(&xs, |x| w.cdf(x)).unwrap();
        let de = ks_statistic(&xs, |x| e.cdf(x)).unwrap();
        assert!(dw < de, "KS(Weibull) = {dw} should beat KS(exp) = {de}");
        assert!(dw < 0.05, "good fit expected, got {dw}");
    }

    #[test]
    fn detects_wrong_cdf() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // Uniform(0, 100) is the right model; Uniform(0, 1000) is not.
        let good = ks_statistic(&xs, |x| (x / 100.0).clamp(0.0, 1.0)).unwrap();
        let bad = ks_statistic(&xs, |x| (x / 1000.0).clamp(0.0, 1.0)).unwrap();
        assert!(good < 0.02);
        assert!(bad > 0.5);
    }

    #[test]
    fn rejects_invalid_cdf_values() {
        let xs = [1.0, 2.0];
        assert!(ks_statistic(&xs, |_| 1.5).is_err());
        assert!(ks_statistic(&xs, |_| f64::NAN).is_err());
        assert!(ks_statistic(&[], |x| x).is_err());
    }

    #[test]
    fn p_value_behaviour() {
        assert_eq!(ks_p_value(0.0, 100), 1.0);
        // Large distance, large n → tiny p.
        assert!(ks_p_value(0.5, 1000) < 1e-6);
        // Small distance, small n → large p.
        assert!(ks_p_value(0.05, 20) > 0.5);
        // Monotone in d.
        assert!(ks_p_value(0.1, 100) > ks_p_value(0.2, 100));
    }
}
