//! Binning helpers: fixed-width histograms and edge-based bucketing.
//!
//! Used for Figure 5 (interruptions per day) and for discretizing execution
//! time into the paper's Table VI bins (10–400 s, 400–1600 s, 1600–6400 s,
//! ≥ 6400 s).

use crate::StatsError;

/// A histogram over `[lo, hi)` with equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram, StatsError> {
        if !(hi > lo) || bins == 0 {
            return Err(StatsError::BadParameter {
                name: "histogram range/bins",
                value: hi - lo,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_start, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * i as f64, c))
            .collect()
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Bucket a value against ascending edges: returns the index of the first
/// interval containing `x` given edges `e₀ < e₁ < … < eₖ`, where interval
/// `i` is `[eᵢ, eᵢ₊₁)`; values below `e₀` return `None`, values ≥ `eₖ`
/// fall in the last (open-ended) bucket `k − 1`... i.e. edges define `k`
/// buckets with the final one unbounded above.
///
/// This matches the paper's Table VI runtime groups: edges
/// `[10, 400, 1600, 6400]` give buckets `10–400`, `400–1600`, `1600–6400`,
/// `≥ 6400`.
pub fn bucket_index(edges: &[f64], x: f64) -> Option<usize> {
    if edges.is_empty() || x < edges[0] {
        return None;
    }
    // Index of the last edge ≤ x.
    let idx = edges.partition_point(|&e| e <= x) - 1;
    Some(idx.min(edges.len() - 1))
}

/// The paper's Table VI execution-time bin edges, in seconds.
pub const TABLE_VI_TIME_EDGES: [f64; 4] = [10.0, 400.0, 1600.0, 6400.0];

/// Human-readable labels for [`TABLE_VI_TIME_EDGES`] buckets.
pub const TABLE_VI_TIME_LABELS: [&str; 4] =
    ["10-400 sec", "400-1600 sec", "1600-6400 sec", ">=6400 sec"];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 5.5, 9.999, -1.0, 10.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 5);
        let bins = h.bins();
        assert_eq!(bins[0], (0.0, 2));
        assert_eq!(bins[4], (8.0, 1));
    }

    #[test]
    fn histogram_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn bucket_index_table_vi() {
        let e = TABLE_VI_TIME_EDGES;
        assert_eq!(bucket_index(&e, 5.0), None);
        assert_eq!(bucket_index(&e, 10.0), Some(0));
        assert_eq!(bucket_index(&e, 399.9), Some(0));
        assert_eq!(bucket_index(&e, 400.0), Some(1));
        assert_eq!(bucket_index(&e, 1599.0), Some(1));
        assert_eq!(bucket_index(&e, 1600.0), Some(2));
        assert_eq!(bucket_index(&e, 6399.0), Some(2));
        assert_eq!(bucket_index(&e, 6400.0), Some(3));
        assert_eq!(bucket_index(&e, 1e9), Some(3));
        assert_eq!(bucket_index(&[], 1.0), None);
    }

    proptest! {
        #[test]
        fn every_in_range_value_lands_in_exactly_one_bin(x in 0.0..100.0f64) {
            let mut h = Histogram::new(0.0, 100.0, 17).unwrap();
            h.add(x);
            prop_assert_eq!(h.total(), 1);
            prop_assert_eq!(h.underflow + h.overflow, 0);
        }

        #[test]
        fn bucket_index_is_monotone(x in 10.0..1e5f64, y in 10.0..1e5f64) {
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            let bi = bucket_index(&TABLE_VI_TIME_EDGES, lo).unwrap();
            let bj = bucket_index(&TABLE_VI_TIME_EDGES, hi).unwrap();
            prop_assert!(bi <= bj);
        }
    }
}
