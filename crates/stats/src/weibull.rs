//! The two-parameter Weibull distribution and its maximum-likelihood fit.
//!
//! The paper (Section V) fits Weibull distributions to failure and
//! interruption interarrival times and reports shape, scale, mean, and
//! variance (Tables IV and V). A shape < 1 means a *decreasing hazard rate* —
//! the longer since the last failure, the less likely one is imminent — which
//! drives Observation 10 (job length matters less than job size).

use crate::special::{gamma, ln_gamma};
use crate::StatsError;

/// A two-parameter Weibull distribution with shape `k` and scale `λ`:
///
/// `F(x) = 1 − exp(−(x/λ)^k)` for `x ≥ 0`.
///
/// ```
/// use bgp_stats::Weibull;
///
/// // Fit failure interarrivals by maximum likelihood (Schroeder & Gibson
/// // style) and read off the hazard behaviour.
/// let gaps = [120.0, 4_000.0, 90.0, 30_000.0, 800.0, 2_500.0, 60_000.0, 400.0];
/// let w = Weibull::fit_mle(&gaps).unwrap();
/// assert!(w.shape < 1.0, "bursty data has a decreasing hazard");
/// assert!(w.cdf(w.mean()) > 0.5); // heavy right tail
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter `k` (> 0). `k < 1`: decreasing hazard; `k = 1`:
    /// exponential; `k > 1`: increasing hazard (wear-out).
    pub shape: f64,
    /// Scale parameter `λ` (> 0), in the same units as the data.
    pub scale: f64,
}

impl Weibull {
    /// Construct with validation.
    pub fn new(shape: f64, scale: f64) -> Result<Weibull, StatsError> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(StatsError::BadParameter {
                name: "shape",
                value: shape,
            });
        }
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(StatsError::BadParameter {
                name: "scale",
                value: scale,
            });
        }
        Ok(Weibull { shape, scale })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            let z = x / self.scale;
            (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
        }
    }

    /// Natural log of the density (for likelihoods); `−∞` for `x ≤ 0`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            f64::NEG_INFINITY
        } else {
            let z = x / self.scale;
            self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * z.ln() - z.powf(self.shape)
        }
    }

    /// Hazard (failure-rate) function `h(x) = pdf / (1 − cdf)`.
    pub fn hazard(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0)
    }

    /// Mean: `λ Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    /// Variance: `λ² [Γ(1 + 2/k) − Γ(1 + 1/k)²]`.
    pub fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    /// Quantile function (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    /// Log-likelihood of a sample under this distribution.
    pub fn log_likelihood(&self, xs: &[f64]) -> f64 {
        xs.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Maximum-likelihood fit.
    ///
    /// The profile-likelihood equation for the shape,
    ///
    /// `g(k) = Σ xᵢᵏ ln xᵢ / Σ xᵢᵏ − 1/k − (1/n) Σ ln xᵢ = 0`,
    ///
    /// is solved by Newton iteration with bisection safeguarding; the scale
    /// then follows in closed form: `λ = ((1/n) Σ xᵢᵏ)^{1/k}`.
    ///
    /// Requires ≥ 2 strictly positive observations that are not all equal.
    pub fn fit_mle(xs: &[f64]) -> Result<Weibull, StatsError> {
        if xs.len() < 2 {
            return Err(StatsError::NotEnoughData {
                needed: 2,
                got: xs.len(),
            });
        }
        for &x in xs {
            if !(x > 0.0) || !x.is_finite() {
                return Err(StatsError::InvalidSample(x));
            }
        }
        let n = xs.len() as f64;
        // Work with scaled data to avoid overflow of x^k for large x:
        // fitting x/c multiplies the scale by c and leaves the shape alone.
        let c = crate::summary::Summary::of(xs)?.mean;
        let scaled: Vec<f64> = xs.iter().map(|&x| x / c).collect();
        let mean_ln: f64 = scaled.iter().map(|&x| x.ln()).sum::<f64>() / n;

        if scaled.iter().all(|&x| (x - scaled[0]).abs() < 1e-12) {
            return Err(StatsError::InvalidSample(xs[0]));
        }

        // g(k) and g'(k).
        let g = |k: f64| -> (f64, f64) {
            let mut s0 = 0.0; // Σ x^k
            let mut s1 = 0.0; // Σ x^k ln x
            let mut s2 = 0.0; // Σ x^k (ln x)^2
            for &x in &scaled {
                let lx = x.ln();
                let xk = (k * lx).exp();
                s0 += xk;
                s1 += xk * lx;
                s2 += xk * lx * lx;
            }
            let val = s1 / s0 - 1.0 / k - mean_ln;
            let deriv = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            (val, deriv)
        };

        // g is increasing in k; bracket the root.
        let (mut lo, mut hi) = (1e-3, 1.0);
        while g(hi).0 < 0.0 {
            hi *= 2.0;
            if hi > 1e6 {
                return Err(StatsError::NoConvergence {
                    what: "Weibull shape bracketing",
                    iterations: 0,
                });
            }
        }
        while g(lo).0 > 0.0 {
            lo /= 2.0;
            if lo < 1e-12 {
                return Err(StatsError::NoConvergence {
                    what: "Weibull shape bracketing",
                    iterations: 0,
                });
            }
        }

        let mut k = 0.5 * (lo + hi);
        const MAX_ITERS: usize = 200;
        for _ in 0..MAX_ITERS {
            let (val, deriv) = g(k);
            if val > 0.0 {
                hi = k;
            } else {
                lo = k;
            }
            let mut next = k - val / deriv;
            if !(lo..=hi).contains(&next) || !next.is_finite() {
                next = 0.5 * (lo + hi); // fall back to bisection
            }
            if (next - k).abs() <= 1e-12 * k.max(1.0) {
                k = next;
                let lambda = (scaled.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
                return Weibull::new(k, lambda * c);
            }
            k = next;
        }
        Err(StatsError::NoConvergence {
            what: "Weibull shape Newton iteration",
            iterations: MAX_ITERS,
        })
    }
}

/// A bootstrap confidence interval for the Weibull parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullCi {
    /// The point estimate (MLE on the full sample).
    pub fit: Weibull,
    /// Central 90 % interval for the shape.
    pub shape_90: (f64, f64),
    /// Central 90 % interval for the scale.
    pub scale_90: (f64, f64),
    /// Bootstrap resamples that produced a valid fit.
    pub resamples: usize,
}

/// Nonparametric bootstrap for the Weibull MLE: refit `n_resamples`
/// resamples (with replacement) and report central 90 % intervals.
///
/// Resamples whose MLE fails (degenerate draw) are skipped; the returned
/// `resamples` says how many succeeded. Errors if the base fit fails or
/// fewer than 20 resamples converge.
pub fn fit_mle_bootstrap<R: rand::Rng>(
    xs: &[f64],
    n_resamples: usize,
    rng: &mut R,
) -> Result<WeibullCi, StatsError> {
    use rand::RngExt;
    let fit = Weibull::fit_mle(xs)?;
    let mut shapes = Vec::with_capacity(n_resamples);
    let mut scales = Vec::with_capacity(n_resamples);
    let mut resample = vec![0.0f64; xs.len()];
    for _ in 0..n_resamples {
        for slot in resample.iter_mut() {
            *slot = xs[rng.random_range(0..xs.len())];
        }
        if let Ok(w) = Weibull::fit_mle(&resample) {
            shapes.push(w.shape);
            scales.push(w.scale);
        }
    }
    if shapes.len() < 20 {
        return Err(StatsError::NotEnoughData {
            needed: 20,
            got: shapes.len(),
        });
    }
    let q = |v: &[f64], p: f64| crate::summary::quantile(v, p);
    Ok(WeibullCi {
        fit,
        shape_90: (q(&shapes, 0.05)?, q(&shapes, 0.95)?),
        scale_90: (q(&scales, 0.05)?, q(&scales, 0.95)?),
        resamples: shapes.len(),
    })
}

impl std::fmt::Display for Weibull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Weibull(shape={:.6}, scale={:.1})",
            self.shape, self.scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::weibull as sample_weibull;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
        assert!(Weibull::new(0.5, 1e4).is_ok());
    }

    #[test]
    fn exponential_special_case() {
        // Weibull(1, λ) is Exponential(1/λ).
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((w.mean() - 2.0).abs() < 1e-10);
        assert!((w.variance() - 4.0).abs() < 1e-9);
        // Constant hazard.
        assert!((w.hazard(0.5) - w.hazard(5.0)).abs() < 1e-12);
    }

    #[test]
    fn hazard_decreasing_for_shape_below_one() {
        let w = Weibull::new(0.5, 1000.0).unwrap();
        assert!(w.hazard(10.0) > w.hazard(100.0));
        assert!(w.hazard(100.0) > w.hazard(1000.0));
    }

    #[test]
    fn cdf_quantile_inverse() {
        let w = Weibull::new(0.7, 5_000.0).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = w.quantile(p);
            assert!((w.cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoidal integration of the pdf.
        let w = Weibull::new(1.5, 3.0).unwrap();
        let mut acc = 0.0;
        let dx = 0.001;
        let mut x = dx;
        while x < 40.0 {
            acc += w.pdf(x) * dx;
            x += dx;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = SmallRng::seed_from_u64(42);
        let truth = Weibull::new(0.55, 40_000.0).unwrap();
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_weibull(&mut rng, truth.shape, truth.scale))
            .collect();
        let fit = Weibull::fit_mle(&xs).unwrap();
        assert!(
            (fit.shape - truth.shape).abs() / truth.shape < 0.05,
            "shape {} vs {}",
            fit.shape,
            truth.shape
        );
        assert!(
            (fit.scale - truth.scale).abs() / truth.scale < 0.05,
            "scale {} vs {}",
            fit.scale,
            truth.scale
        );
    }

    #[test]
    fn mle_shape_above_one_also_recovered() {
        let mut rng = SmallRng::seed_from_u64(7);
        let truth = Weibull::new(2.2, 10.0).unwrap();
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_weibull(&mut rng, truth.shape, truth.scale))
            .collect();
        let fit = Weibull::fit_mle(&xs).unwrap();
        assert!((fit.shape - truth.shape).abs() / truth.shape < 0.05);
        assert!((fit.scale - truth.scale).abs() / truth.scale < 0.05);
    }

    #[test]
    fn mle_input_validation() {
        assert!(Weibull::fit_mle(&[]).is_err());
        assert!(Weibull::fit_mle(&[1.0]).is_err());
        assert!(Weibull::fit_mle(&[1.0, -2.0]).is_err());
        assert!(Weibull::fit_mle(&[1.0, 0.0]).is_err());
        assert!(Weibull::fit_mle(&[3.0, 3.0, 3.0]).is_err()); // degenerate
    }

    #[test]
    fn mle_is_scale_equivariant() {
        let mut rng = SmallRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..5_000)
            .map(|_| sample_weibull(&mut rng, 0.8, 1.0))
            .collect();
        let base = Weibull::fit_mle(&xs).unwrap();
        let scaled: Vec<f64> = xs.iter().map(|&x| x * 1e6).collect();
        let fit = Weibull::fit_mle(&scaled).unwrap();
        assert!((fit.shape - base.shape).abs() < 1e-6);
        assert!((fit.scale / base.scale - 1e6).abs() / 1e6 < 1e-6);
    }

    #[test]
    fn log_likelihood_peaks_at_mle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..4_000)
            .map(|_| sample_weibull(&mut rng, 0.6, 100.0))
            .collect();
        let fit = Weibull::fit_mle(&xs).unwrap();
        let ll = fit.log_likelihood(&xs);
        for (ds, dl) in [(1.05, 1.0), (0.95, 1.0), (1.0, 1.1), (1.0, 0.9)] {
            let other = Weibull::new(fit.shape * ds, fit.scale * dl).unwrap();
            assert!(
                other.log_likelihood(&xs) <= ll + 1e-6,
                "perturbation ({ds},{dl}) beat the MLE"
            );
        }
    }

    #[test]
    fn bootstrap_interval_coverage() {
        // A 90 % CI misses the truth ~10 % of the time by construction, so
        // check *coverage* across independent samples rather than one draw.
        let truth = Weibull::new(0.6, 20_000.0).unwrap();
        let mut shape_hits = 0usize;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = SmallRng::seed_from_u64(700 + seed);
            let xs: Vec<f64> = (0..800)
                .map(|_| sample_weibull(&mut rng, truth.shape, truth.scale))
                .collect();
            let ci = fit_mle_bootstrap(&xs, 120, &mut rng).unwrap();
            assert!(ci.resamples >= 100);
            // The interval always brackets its own point estimate.
            assert!(ci.shape_90.0 <= ci.fit.shape && ci.fit.shape <= ci.shape_90.1);
            assert!(ci.scale_90.0 <= ci.fit.scale && ci.fit.scale <= ci.scale_90.1);
            if ci.shape_90.0 <= truth.shape && truth.shape <= ci.shape_90.1 {
                shape_hits += 1;
            }
        }
        assert!(
            shape_hits >= 7,
            "shape CI covered truth only {shape_hits}/{trials} times"
        );
    }

    #[test]
    fn bootstrap_propagates_fit_errors() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(fit_mle_bootstrap(&[1.0], 50, &mut rng).is_err());
        assert!(fit_mle_bootstrap(&[2.0, 2.0, 2.0], 50, &mut rng).is_err());
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(
            shape in 0.2..4.0f64,
            scale in 0.5..1e5f64,
            x1 in 0.0..1e6f64,
            x2 in 0.0..1e6f64,
        ) {
            let w = Weibull::new(shape, scale).unwrap();
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(w.cdf(lo) <= w.cdf(hi) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&w.cdf(x1)));
        }

        #[test]
        fn mean_consistent_with_quantiles(shape in 0.3..3.0f64, scale in 1.0..1e4f64) {
            // The mean lies between the 1st and 99th percentile for these shapes.
            let w = Weibull::new(shape, scale).unwrap();
            prop_assert!(w.mean() > w.quantile(0.01));
            prop_assert!(w.mean() < w.quantile(0.999));
        }
    }
}
