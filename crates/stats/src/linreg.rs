//! Simple (ordinary-least-squares) linear regression.
//!
//! Used by trend analyses: is the failure rate drifting over the study
//! window, or is the process stationary enough for a single Weibull fit to
//! be honest?

use crate::StatsError;

/// An OLS fit of `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope per unit of `x`.
    pub slope: f64,
    /// Intercept at `x = 0`.
    pub intercept: f64,
    /// Pearson correlation between `x` and `y` (sign matches the slope).
    pub r: f64,
    /// Points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Coefficient of determination `r²`.
    pub fn r_squared(&self) -> f64 {
        self.r * self.r
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit by ordinary least squares. Errors on length mismatch, < 3 points,
/// NaN, or zero variance in `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::NotEnoughData {
            needed: xs.len(),
            got: ys.len(),
        });
    }
    if xs.len() < 3 {
        return Err(StatsError::NotEnoughData {
            needed: 3,
            got: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let (mut mx, mut my) = (0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            return Err(StatsError::InvalidSample(f64::NAN));
        }
        mx += x;
        my += y;
    }
    mx /= n;
    my /= n;
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 {
        return Err(StatsError::InvalidSample(xs[0]));
    }
    let slope = sxy / sxx;
    let r = if syy <= 0.0 {
        0.0 // constant y: slope 0, no correlation to speak of
    } else {
        (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
    };
    Ok(LinearFit {
        slope,
        intercept: my - slope * mx,
        r,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 58.0).abs() < 1e-9);
        assert!((f.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 5.0, 5.0, 5.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r, 0.0);
    }

    #[test]
    fn errors() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(linear_fit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_err());
    }

    proptest! {
        #[test]
        fn residuals_sum_to_zero(
            pairs in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..50)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(f) = linear_fit(&xs, &ys) {
                let resid: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - f.predict(x)).sum();
                prop_assert!(resid.abs() < 1e-6 * (ys.len() as f64));
                prop_assert!((-1.0..=1.0).contains(&f.r));
            }
        }
    }
}
