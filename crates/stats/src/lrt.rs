//! Likelihood-ratio comparison of exponential vs. Weibull interarrival fits.
//!
//! The exponential distribution is the `shape = 1` submodel of the Weibull,
//! so the models are nested and Wilks' theorem applies: under the null
//! (exponential is adequate) the statistic `D = 2 (ℓ_W − ℓ_E)` is
//! asymptotically χ² with one degree of freedom. The paper uses exactly this
//! test (citing Crowder et al. \[16\]) to conclude that Weibull fits better
//! (Observations 4 and, implicitly, 10).

use crate::special::chi2_sf;
use crate::{Exponential, StatsError, Weibull};

/// The outcome of fitting both models to a sample and comparing them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitComparison {
    /// The fitted Weibull model.
    pub weibull: Weibull,
    /// The fitted exponential model.
    pub exponential: Exponential,
    /// Log-likelihood of the Weibull fit.
    pub ll_weibull: f64,
    /// Log-likelihood of the exponential fit.
    pub ll_exponential: f64,
    /// LRT statistic `D = 2 (ℓ_W − ℓ_E)` (≥ 0 up to numerical noise).
    pub lrt_statistic: f64,
    /// Asymptotic p-value of the null "exponential is adequate"
    /// (χ²₁ survival function of `D`).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl FitComparison {
    /// Does the test reject the exponential at significance level `alpha`?
    pub fn weibull_preferred(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Akaike information criterion of the Weibull fit (2 parameters).
    pub fn aic_weibull(&self) -> f64 {
        2.0 * 2.0 - 2.0 * self.ll_weibull
    }

    /// Akaike information criterion of the exponential fit (1 parameter).
    pub fn aic_exponential(&self) -> f64 {
        2.0 * 1.0 - 2.0 * self.ll_exponential
    }
}

/// Fit both models by maximum likelihood and run the likelihood-ratio test.
///
/// Requires ≥ 2 strictly positive, non-degenerate observations (the Weibull
/// MLE preconditions).
pub fn compare_models(xs: &[f64]) -> Result<FitComparison, StatsError> {
    let weibull = Weibull::fit_mle(xs)?;
    let exponential = Exponential::fit_mle(xs)?;
    let ll_weibull = weibull.log_likelihood(xs);
    let ll_exponential = exponential.log_likelihood(xs);
    // The exponential is nested in the Weibull, so ℓ_W ≥ ℓ_E; clamp tiny
    // negative noise from the iterative shape solve.
    let lrt_statistic = (2.0 * (ll_weibull - ll_exponential)).max(0.0);
    let p_value = chi2_sf(lrt_statistic, 1.0);
    Ok(FitComparison {
        weibull,
        exponential,
        ll_weibull,
        ll_exponential,
        lrt_statistic,
        p_value,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{exponential as sample_exp, weibull as sample_weibull};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weibull_wins_on_weibull_data() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..5_000)
            .map(|_| sample_weibull(&mut rng, 0.4, 10_000.0))
            .collect();
        let cmp = compare_models(&xs).unwrap();
        assert!(cmp.ll_weibull > cmp.ll_exponential);
        assert!(cmp.weibull_preferred(0.01));
        assert!(cmp.aic_weibull() < cmp.aic_exponential());
        assert!(cmp.weibull.shape < 1.0);
    }

    #[test]
    fn exponential_not_rejected_on_exponential_data() {
        // Aggregate over seeds: on truly exponential data the test should
        // reject at the 1 % level only rarely.
        let mut rejections = 0;
        for seed in 0..40 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..800).map(|_| sample_exp(&mut rng, 0.001)).collect();
            let cmp = compare_models(&xs).unwrap();
            if cmp.weibull_preferred(0.01) {
                rejections += 1;
            }
            // Shape estimate should hover near 1.
            assert!((cmp.weibull.shape - 1.0).abs() < 0.25, "seed {seed}");
        }
        assert!(rejections <= 4, "too many false rejections: {rejections}");
    }

    #[test]
    fn statistic_nonnegative_and_pvalue_bounded() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let xs: Vec<f64> = (0..200)
                .map(|_| sample_weibull(&mut rng, 1.2, 50.0))
                .collect();
            let cmp = compare_models(&xs).unwrap();
            assert!(cmp.lrt_statistic >= 0.0);
            assert!((0.0..=1.0).contains(&cmp.p_value));
            assert_eq!(cmp.n, 200);
        }
    }

    #[test]
    fn propagates_fit_errors() {
        assert!(compare_models(&[]).is_err());
        assert!(compare_models(&[5.0, 5.0]).is_err());
        assert!(compare_models(&[1.0, -1.0]).is_err());
    }
}
