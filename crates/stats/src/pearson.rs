//! Pearson's product-moment correlation coefficient.
//!
//! Used in two places, mirroring the paper:
//!
//! * the root-cause classifier assigns unlabeled fatal types to the
//!   (system / application) category whose occurrence profile they correlate
//!   with best (Section IV-B);
//! * the midplane study correlates per-midplane failure counts with total
//!   and wide-job workload (Figure 4 / Observation 5).

use crate::StatsError;

/// Pearson correlation of two equal-length samples, in `[-1, 1]`.
///
/// Errors on length mismatch, fewer than 2 points, NaN, or zero variance in
/// either sample (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::NotEnoughData {
            needed: xs.len(),
            got: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mut mx = 0.0;
    let mut my = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_nan() || y.is_nan() {
            return Err(StatsError::InvalidSample(f64::NAN));
        }
        mx += x;
        my += y;
    }
    mx /= n;
    my /= n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(StatsError::InvalidSample(xs[0]));
    }
    if syy <= 0.0 {
        return Err(StatsError::InvalidSample(ys[0]));
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_near_zero() {
        // A balanced orthogonal design has exactly zero correlation.
        let xs = [1.0, 1.0, -1.0, -1.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero variance
        assert!(pearson(&[1.0, 2.0], &[3.0, 3.0]).is_err());
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn bounded_and_symmetric(
            pairs in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..50)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let (Ok(r1), Ok(r2)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
                prop_assert!((-1.0..=1.0).contains(&r1));
                prop_assert!((r1 - r2).abs() < 1e-9);
            }
        }

        #[test]
        fn invariant_under_affine_maps(
            pairs in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..50),
            a in 0.1..10.0f64,
            b in -100.0..100.0f64,
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let (Ok(r1), Ok(r2)) = (pearson(&xs, &ys), pearson(&xs2, &ys)) {
                prop_assert!((r1 - r2).abs() < 1e-6);
            }
        }
    }
}
