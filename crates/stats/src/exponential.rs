//! The exponential distribution — the paper's baseline interarrival model.
//!
//! The exponential is the memoryless special case (Weibull shape = 1). The
//! paper shows it fits failure interarrivals *worse* than Weibull on Blue
//! Gene/P; we reproduce that comparison in [`crate::lrt`].

use crate::StatsError;

/// An exponential distribution with rate `λ`: `F(x) = 1 − e^{−λx}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (> 0), reciprocal of the mean.
    pub rate: f64,
}

impl Exponential {
    /// Construct with validation.
    pub fn new(rate: f64) -> Result<Exponential, StatsError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(StatsError::BadParameter {
                name: "rate",
                value: rate,
            });
        }
        Ok(Exponential { rate })
    }

    /// Construct from the mean (`1/rate`).
    pub fn from_mean(mean: f64) -> Result<Exponential, StatsError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(StatsError::BadParameter {
                name: "mean",
                value: mean,
            });
        }
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    /// Natural log of the density; `−∞` for `x < 0`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Variance `1/λ²`.
    pub fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    /// Quantile function (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        -(1.0 - p).ln() / self.rate
    }

    /// Log-likelihood of a sample.
    pub fn log_likelihood(&self, xs: &[f64]) -> f64 {
        xs.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Maximum-likelihood fit: `λ̂ = n / Σ xᵢ`.
    ///
    /// Requires at least one strictly positive observation; all observations
    /// must be non-negative and finite.
    pub fn fit_mle(xs: &[f64]) -> Result<Exponential, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let mut sum = 0.0;
        for &x in xs {
            if !(x >= 0.0) || !x.is_finite() {
                return Err(StatsError::InvalidSample(x));
            }
            sum += x;
        }
        if sum <= 0.0 {
            return Err(StatsError::InvalidSample(0.0));
        }
        Exponential::new(xs.len() as f64 / sum)
    }
}

impl std::fmt::Display for Exponential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Exponential(rate={:.3e})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::exponential as sample_exp;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
        assert!(Exponential::from_mean(100.0).is_ok());
    }

    #[test]
    fn moments() {
        let e = Exponential::from_mean(250.0).unwrap();
        assert!((e.mean() - 250.0).abs() < 1e-12);
        assert!((e.variance() - 62_500.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let e = Exponential::new(0.01).unwrap();
        for &p in &[0.05, 0.5, 0.95] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn memorylessness() {
        // P(X > s + t | X > s) = P(X > t).
        let e = Exponential::new(0.2).unwrap();
        let sf = |x: f64| 1.0 - e.cdf(x);
        let (s, t) = (3.0, 5.0);
        assert!((sf(s + t) / sf(s) - sf(t)).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..50_000).map(|_| sample_exp(&mut rng, 0.002)).collect();
        let fit = Exponential::fit_mle(&xs).unwrap();
        assert!((fit.rate - 0.002).abs() / 0.002 < 0.03, "rate {}", fit.rate);
    }

    #[test]
    fn mle_validation() {
        assert!(Exponential::fit_mle(&[]).is_err());
        assert!(Exponential::fit_mle(&[1.0, -0.5]).is_err());
        assert!(Exponential::fit_mle(&[0.0, 0.0]).is_err());
        assert!(Exponential::fit_mle(&[0.0, 2.0]).is_ok()); // zeros tolerated
    }

    #[test]
    fn matches_weibull_shape_one() {
        let e = Exponential::new(0.5).unwrap();
        let w = crate::Weibull::new(1.0, 2.0).unwrap();
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((e.cdf(x) - w.cdf(x)).abs() < 1e-12);
            assert!((e.ln_pdf(x) - w.ln_pdf(x)).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn mle_equals_inverse_mean(xs in proptest::collection::vec(0.001..1e5f64, 1..200)) {
            let fit = Exponential::fit_mle(&xs).unwrap();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((fit.mean() - mean).abs() / mean < 1e-9);
        }
    }
}
