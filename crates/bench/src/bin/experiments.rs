//! Regenerate the paper's tables and figures from a simulated Intrepid.
//!
//! ```text
//! experiments [--seed N] [--small] [--json DIR] <subcommand>
//! experiments --bench-json [--quick] [--threads N] [--out FILE]
//!
//! subcommands: table1 schema table4 table5 table6
//!              fig3 fig4 fig5 fig6 fig7
//!              observations scorecard all
//! ```
//!
//! `--bench-json` runs the pipeline benchmark (paper scale + 10×, or the
//! 12-day preset with `--quick`) and writes `BENCH_PIPELINE.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp_bench::{bench_pipeline, Experiments, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut scale = Scale::Full;
    let mut json_dir: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut bench_json = false;
    let mut quick = false;
    let mut threads = 4usize;
    let mut out_path = PathBuf::from("BENCH_PIPELINE.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--small" => scale = Scale::Small,
            "--json" => match args.next() {
                Some(v) => json_dir = Some(PathBuf::from(v)),
                None => return usage("--json needs a directory"),
            },
            "--bench-json" => bench_json = true,
            "--quick" => quick = true,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => threads = v,
                _ => return usage("--threads needs a count >= 1"),
            },
            "--out" => match args.next() {
                Some(v) => out_path = PathBuf::from(v),
                None => return usage("--out needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_owned());
            }
            other => return usage(&format!("unrecognized argument {other:?}")),
        }
    }
    if bench_json {
        eprintln!(
            "benchmarking pipeline ({} mode, {threads} threads, seed {seed})...",
            if quick { "quick" } else { "paper + 10x + 100x" }
        );
        let t0 = std::time::Instant::now();
        let report = bench_pipeline::run(quick, threads, seed);
        match std::fs::write(&out_path, report.pretty()) {
            Ok(()) => {
                eprintln!("wrote {} in {:.1?}", out_path.display(), t0.elapsed());
                return ExitCode::SUCCESS;
            }
            Err(err) => {
                eprintln!("failed to write {}: {err}", out_path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(command) = command else {
        return usage("missing subcommand");
    };

    // These run their own simulations.
    if command == "fig7avg" {
        println!("{}", Experiments::fig7_across_seeds(scale, seed, 5));
        return ExitCode::SUCCESS;
    }
    if command == "sweep" {
        println!("{}", Experiments::sweep_same_partition(scale, seed));
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "simulating ({} preset, seed {seed}) and running co-analysis...",
        if scale == Scale::Full {
            "full 237-day"
        } else {
            "small 12-day"
        }
    );
    let t0 = std::time::Instant::now();
    let e = Experiments::run(scale, seed);
    eprintln!(
        "done in {:.1?}: {} RAS records, {} jobs, {} events after filtering\n",
        t0.elapsed(),
        e.out.ras.len(),
        e.out.jobs.len(),
        e.result.filter_stats.after_causal,
    );

    let output = match command.as_str() {
        "table1" => e.table1(),
        "schema" | "table2" | "table3" => e.schema(),
        "table4" => e.table4(),
        "table5" => e.table5(),
        "table6" => e.table6(),
        "fig3" => e.fig3(),
        "fig4" => e.fig4(),
        "fig5" => e.fig5(),
        "fig6" => e.fig6(),
        "fig7" => e.fig7(),
        "observations" | "obs" => e.observations(),
        "codes" => e.codes(),
        "scorecard" => e.scorecard(),
        "prediction" => e.prediction(),
        "checkpoint" => e.checkpoint(),
        "ablation" => e.ablation(),
        "all" => e.all(),
        other => return usage(&format!("unknown subcommand {other:?}")),
    };
    println!("{output}");

    if let Some(dir) = json_dir {
        match e.export_json(&dir) {
            Ok(()) => eprintln!("JSON series written to {}", dir.display()),
            Err(err) => {
                eprintln!("failed to write JSON: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments [--seed N] [--small] [--json DIR] <subcommand>\n\
         \x20      experiments --bench-json [--quick] [--threads N] [--out FILE]\n\
         subcommands: table1 schema table4 table5 table6 fig3 fig4 fig5 fig6 fig7\n\
         \x20             fig7avg observations codes scorecard prediction checkpoint\n\
         \x20             ablation sweep all"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
