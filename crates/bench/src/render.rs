//! Tiny text-rendering helpers for experiment output: aligned tables and
//! ASCII sparkline-style series.

/// Render rows as an aligned, pipe-separated table. The first row is the
/// header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            line.push_str("| ");
            line.push_str(cell);
            line.push_str(&" ".repeat(pad + 1));
        }
        line.push('|');
        out.push_str(&line);
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Render a numeric series as a fixed-height ASCII bar chart (one column
/// per value), with a y-axis legend. Good enough to eyeball Figure 4/5
/// shapes in a terminal.
pub fn bars(values: &[f64], height: usize) -> String {
    if values.is_empty() || height == 0 {
        return String::new();
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return format!("(all zero, {} points)\n", values.len());
    }
    let mut out = String::new();
    for level in (1..=height).rev() {
        let threshold = max * level as f64 / height as f64;
        let row: String = values
            .iter()
            .map(|&v| if v >= threshold - 1e-12 { '#' } else { ' ' })
            .collect();
        if level == height {
            out.push_str(&format!("{max:>10.1} |{row}|\n"));
        } else {
            out.push_str(&format!("{:>10} |{row}|\n", ""));
        }
    }
    out.push_str(&format!("{:>10} +{}+\n", 0, "-".repeat(values.len())));
    out
}

/// Percent formatting.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(&[
            vec!["a".into(), "long header".into()],
            vec!["xxxx".into(), "1".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(table(&[]).is_empty());
    }

    #[test]
    fn bars_shape() {
        let b = bars(&[1.0, 2.0, 4.0], 4);
        let lines: Vec<&str> = b.lines().collect();
        assert_eq!(lines.len(), 5);
        // The tallest bar reaches the top row; the shortest only the bottom.
        assert!(lines[0].contains('#'));
        assert!(lines[3].contains("###"));
        assert!(bars(&[], 4).is_empty());
        assert!(bars(&[0.0, 0.0], 3).contains("all zero"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.34%");
    }
}
