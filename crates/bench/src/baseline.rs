//! Pre-optimization reference kernels, kept verbatim for benchmarking.
//!
//! These are the analysis kernels as they stood before the sweep-line
//! matcher and the parallel classification/ranking rewrites: the per-event
//! machine-wide termination rescan, the hash-map-of-vectors rule grouping,
//! and the per-job hash-lookup vulnerability passes. `--bench-json` runs
//! them head-to-head against the optimized kernels on the same inputs so
//! the committed `BENCH_PIPELINE.json` records a real speedup, not a
//! guess — and the equivalence tests in `tests/parallel_kernels.rs` hold
//! the optimized kernels to bit-identical output.

use bgp_model::intern::Interner;
use bgp_model::MidplaneId;
use bgp_stats::hist::{bucket_index, TABLE_VI_TIME_EDGES};
use bgp_stats::infogain::{rank_features, FeatureColumn, FeatureScore};
use bgp_stats::pearson::pearson;
use coanalysis::analysis::fda::{
    FdaAnalysis, FdaDim, FdaItemValue, FdaItemset, FdaParams, JobDims, NUM_DIMS, NUM_JOB_DIMS,
};
use coanalysis::analysis::vulnerability::{
    ResubmissionStats, SizeLengthTable, VulnerabilityAnalysis, SIZE_ROWS,
};
use coanalysis::classify::root_cause::{RootCause, RootCauseRule, RootCauseSummary};
use coanalysis::context::AnalysisContext;
use coanalysis::event::Event;
use coanalysis::matching::{EventCase, EventMatch, Matcher, Matching};
use joblog::{JobRecord, ProjectId, UserId};
use raslog::ErrCode;
use std::collections::{HashMap, HashSet};

/// The pre-sweep matcher: per event, a machine-wide `ended_in_window`
/// scan filtered by footprint overlap, and an `O(n²)` running-job dedup.
pub fn match_events(matcher: &Matcher, events: &[Event], ctx: &AnalysisContext<'_>) -> Matching {
    let mut per_event = Vec::with_capacity(events.len());
    // job id → (event index, |end − event time|), best so far.
    let mut best: HashMap<u64, (usize, i64)> = HashMap::new();

    for (i, e) in events.iter().enumerate() {
        // Jobs running anywhere on the event's footprint at event time.
        let mut running = 0usize;
        let mut seen: Vec<u64> = Vec::new();
        for m in e.footprint.midplanes() {
            for j in ctx.running_at(m, e.time) {
                if !seen.contains(&j.job_id) {
                    seen.push(j.job_id);
                    running += 1;
                }
            }
        }
        let ended = ctx.ended_in_window(e.time - matcher.window, e.time + matcher.window);
        let victims: Vec<u64> = ended
            .iter()
            .filter(|j| j.partition.overlaps(e.footprint))
            .filter(|j| !matcher.require_failed_exit || !j.exit.is_success())
            .map(|j| j.job_id)
            .collect();
        for &job_id in &victims {
            let Some(end) = ctx.job(job_id).map(|j| j.end_time) else {
                continue; // victim ids come from this log; nothing to rank otherwise
            };
            let dist = (end - e.time).abs().as_secs();
            match best.get(&job_id) {
                Some(&(_, d)) if d <= dist => {}
                _ => {
                    best.insert(job_id, (i, dist));
                }
            }
        }
        let case = if !victims.is_empty() {
            EventCase::Interrupted
        } else if running == 0 {
            EventCase::IdleLocation
        } else {
            EventCase::NotInterrupted
        };
        per_event.push(EventMatch {
            victims,
            running,
            case,
        });
    }

    // Keep only the best attribution per job, and drop victims that a
    // closer event claimed.
    let job_to_event: HashMap<u64, usize> = best.into_iter().map(|(j, (i, _))| (j, i)).collect();
    for (i, m) in per_event.iter_mut().enumerate() {
        m.victims.retain(|j| job_to_event.get(j) == Some(&i));
        if m.victims.is_empty() && m.case == EventCase::Interrupted {
            m.case = if m.running == 0 {
                EventCase::IdleLocation
            } else {
                EventCase::NotInterrupted
            };
        }
    }
    Matching {
        per_event,
        job_to_event,
    }
}

/// The pre-rewrite root-cause classifier: hash-map-of-vectors evidence
/// grouping, per-code allocation of the rule-2/rule-3 group maps, and an
/// allocating `overlapping` probe in the clean-run check.
pub fn classify_root_cause(
    events: &[Event],
    matching: &Matching,
    ctx: &AnalysisContext<'_>,
) -> RootCauseSummary {
    assert_eq!(events.len(), matching.per_event.len());
    let mut summary = RootCauseSummary::default();

    // Gather per-code evidence.
    #[derive(Default)]
    struct Evidence {
        interrupts: bool,
        hits: Vec<(u8, joblog::ExecId, bgp_model::Timestamp)>,
    }
    let mut evidence: HashMap<ErrCode, Evidence> = HashMap::new();
    for (e, m) in events.iter().zip(&matching.per_event) {
        let ev = evidence.entry(e.errcode).or_default();
        for &job_id in &m.victims {
            if let Some(job) = ctx.job(job_id) {
                ev.interrupts = true;
                ev.hits.push((
                    job.partition.first().map_or(0, |m| m.index()) as u8,
                    job.exec,
                    e.time,
                ));
            }
        }
    }

    for (&code, ev) in &evidence {
        // Rule 1.
        if !ev.interrupts {
            summary
                .per_code
                .insert(code, (RootCause::SystemFailure, RootCauseRule::IdleOnly));
            continue;
        }
        // Rule 2: consecutive interruptions of different executables at one
        // location with no clean run in between.
        let mut by_location: HashMap<u8, Vec<(joblog::ExecId, bgp_model::Timestamp)>> =
            HashMap::new();
        for &(mp, exec, t) in &ev.hits {
            by_location.entry(mp).or_default().push((exec, t));
        }
        let mut sticky = false;
        'outer: for (&mp_idx, hits) in by_location.iter_mut() {
            hits.sort_by_key(|&(_, t)| t);
            let Ok(mp) = MidplaneId::from_index(mp_idx) else {
                continue;
            };
            for pair in hits.windows(2) {
                let ((exec_a, t_a), (exec_b, t_b)) = (pair[0], pair[1]);
                if exec_a == exec_b {
                    continue;
                }
                let clean_between = ctx.overlapping(mp, t_a, t_b).iter().any(|j| {
                    j.start_time > t_a
                        && j.end_time < t_b
                        && !matching.job_to_event.contains_key(&j.job_id)
                });
                if !clean_between {
                    sticky = true;
                    break 'outer;
                }
            }
        }
        if sticky {
            summary.per_code.insert(
                code,
                (RootCause::SystemFailure, RootCauseRule::StickyLocation),
            );
            continue;
        }
        // Rule 3: the code follows one executable across locations and the
        // old location goes quiet.
        let mut by_exec: HashMap<joblog::ExecId, Vec<(u8, bgp_model::Timestamp)>> = HashMap::new();
        for &(mp, exec, t) in &ev.hits {
            by_exec.entry(exec).or_default().push((mp, t));
        }
        let mut follows = false;
        'exec_scan: for hits in by_exec.values_mut() {
            hits.sort_by_key(|&(_, t)| t);
            for w in hits.windows(2) {
                let ((m1, t1), (m2, _t2)) = (w[0], w[1]);
                if m1 == m2 {
                    continue;
                }
                let old_location_quiet = !ev.hits.iter().any(|&(mp, _, t)| mp == m1 && t > t1);
                if old_location_quiet {
                    follows = true;
                    break 'exec_scan;
                }
            }
        }
        if follows {
            summary.per_code.insert(
                code,
                (
                    RootCause::ApplicationError,
                    RootCauseRule::FollowsExecutable,
                ),
            );
            continue;
        }
    }

    // Rule 4: Pearson fallback over daily occurrence profiles.
    let unlabeled: Vec<ErrCode> = evidence
        .keys()
        .filter(|c| !summary.per_code.contains_key(c))
        .copied()
        .collect();
    if !unlabeled.is_empty() {
        let profiles = daily_profiles(events);
        let mut labeled: Vec<(ErrCode, RootCause)> = summary
            .per_code
            .iter()
            .map(|(&c, &(cause, _))| (c, cause))
            .collect();
        labeled.sort_by_key(|&(c, _)| c);
        for code in unlabeled {
            let mut best: Option<(f64, RootCause)> = None;
            if let Some(p) = profiles.get(&code) {
                for &(other, cause) in &labeled {
                    if let Some(q) = profiles.get(&other) {
                        if let Ok(r) = pearson(p, q) {
                            if best.is_none_or(|(b, _)| r > b) {
                                best = Some((r, cause));
                            }
                        }
                    }
                }
            }
            let cause = best.map_or(RootCause::SystemFailure, |(_, c)| c);
            summary
                .per_code
                .insert(code, (cause, RootCauseRule::CorrelationFallback));
        }
    }
    summary
}

fn daily_profiles(events: &[Event]) -> HashMap<ErrCode, Vec<f64>> {
    let mut out: HashMap<ErrCode, Vec<f64>> = HashMap::new();
    let Some(first) = events.first() else {
        return out;
    };
    let t0 = first.time;
    let days = events
        .last()
        .map(|e| e.time.days_since(t0) as usize + 1)
        .unwrap_or(1);
    for e in events {
        let day = e.time.days_since(t0) as usize;
        let v = out.entry(e.errcode).or_insert_with(|| vec![0.0; days]);
        v[day] += 1.0;
    }
    out
}

/// The pre-rewrite vulnerability analysis: one `HashMap` lookup per job
/// per pass, owned `FeatureColumn` allocations, and strictly serial
/// per-category / per-feature ranking.
pub fn vulnerability(
    events: &[Event],
    matching: &Matching,
    root_cause: &RootCauseSummary,
    ctx: &AnalysisContext<'_>,
    fatal_counts_per_midplane: &[u32],
) -> VulnerabilityAnalysis {
    let causes = job_causes(events, matching, root_cause);
    let table = build_table(ctx, &causes);
    let resubmission = build_resubmission(ctx, &causes);
    let (suspicious_users, suspicious_projects) = suspicious_sets(ctx, &causes);
    let unreliable_midplanes = top_failing(fatal_counts_per_midplane, 12);

    let ranking_system = rank(
        ctx,
        &causes,
        RootCause::SystemFailure,
        &suspicious_users.0,
        &suspicious_projects.0,
        &unreliable_midplanes,
    );
    let ranking_application = rank(
        ctx,
        &causes,
        RootCause::ApplicationError,
        &suspicious_users.0,
        &suspicious_projects.0,
        &unreliable_midplanes,
    );

    let app_jobs: Vec<&JobRecord> = causes
        .iter()
        .filter(|&(_, &c)| c == RootCause::ApplicationError)
        .filter_map(|(&id, _)| ctx.job(id))
        .collect();
    let app_interruptions_first_hour = if app_jobs.is_empty() {
        0.0
    } else {
        app_jobs
            .iter()
            .filter(|j| j.runtime().as_secs() < 3_600)
            .count() as f64
            / app_jobs.len() as f64
    };

    let uncovered_by_history_k2 = history_uncovered(ctx, &causes, 2);

    VulnerabilityAnalysis {
        table,
        resubmission,
        ranking_system,
        ranking_application,
        suspicious_users,
        suspicious_projects,
        unreliable_midplanes,
        app_interruptions_first_hour,
        uncovered_by_history_k2,
    }
}

fn job_causes(
    events: &[Event],
    matching: &Matching,
    root_cause: &RootCauseSummary,
) -> HashMap<u64, RootCause> {
    matching
        .job_to_event
        .iter()
        .map(|(&job_id, &idx)| {
            let cause = events
                .get(idx)
                .and_then(|e| root_cause.cause(e.errcode))
                .unwrap_or(RootCause::SystemFailure);
            (job_id, cause)
        })
        .collect()
}

fn size_row(size: u32) -> Option<usize> {
    SIZE_ROWS.iter().position(|&s| s == size)
}

fn time_col(runtime_secs: i64) -> usize {
    bucket_index(&TABLE_VI_TIME_EDGES, runtime_secs as f64).unwrap_or(0)
}

fn build_table(ctx: &AnalysisContext<'_>, causes: &HashMap<u64, RootCause>) -> SizeLengthTable {
    let mut interrupted = [[0u32; 4]; 9];
    let mut total = [[0u32; 4]; 9];
    for j in ctx.job_records() {
        match causes.get(&j.job_id) {
            Some(RootCause::ApplicationError) => continue,
            Some(RootCause::SystemFailure) => {
                if let Some(r) = size_row(j.size_midplanes()) {
                    let c = time_col(j.runtime().as_secs());
                    interrupted[r][c] += 1;
                    total[r][c] += 1;
                }
            }
            None => {
                if let Some(r) = size_row(j.size_midplanes()) {
                    let c = time_col(j.runtime().as_secs());
                    total[r][c] += 1;
                }
            }
        }
    }
    SizeLengthTable { interrupted, total }
}

fn build_resubmission(
    ctx: &AnalysisContext<'_>,
    causes: &HashMap<u64, RootCause>,
) -> ResubmissionStats {
    let mut system = [(0u32, 0u32); 3];
    let mut application = [(0u32, 0u32); 3];
    for (_, group) in ctx.exec_groups() {
        for (cat, counts) in [
            (RootCause::SystemFailure, &mut system),
            (RootCause::ApplicationError, &mut application),
        ] {
            let mut run = 0usize;
            for j in group {
                let interrupted = causes.get(&j.job_id) == Some(&cat);
                if (1..=3).contains(&run) {
                    counts[run - 1].0 += 1;
                    if interrupted {
                        counts[run - 1].1 += 1;
                    }
                }
                run = if interrupted { run + 1 } else { 0 };
            }
        }
    }
    ResubmissionStats {
        system,
        application,
    }
}

fn suspicious_sets(
    ctx: &AnalysisContext<'_>,
    causes: &HashMap<u64, RootCause>,
) -> ((Vec<UserId>, f64), (Vec<ProjectId>, f64)) {
    let mut by_user: HashMap<UserId, u32> = HashMap::new();
    let mut by_project: HashMap<ProjectId, u32> = HashMap::new();
    let total = causes.len() as f64;
    for (&job_id, _) in causes.iter() {
        if let Some(j) = ctx.job(job_id) {
            *by_user.entry(j.user).or_insert(0) += 1;
            *by_project.entry(j.project).or_insert(0) += 1;
        }
    }
    fn cover<K: Copy + Ord>(counts: &HashMap<K, u32>, total: f64, target: f64) -> (Vec<K>, f64) {
        let mut pairs: Vec<(K, u32)> = counts.iter().map(|(&k, &c)| (k, c)).collect();
        pairs.sort_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        let mut acc = 0u32;
        let mut out = Vec::new();
        for (k, c) in pairs {
            if total > 0.0 && f64::from(acc) / total >= target {
                break;
            }
            out.push(k);
            acc += c;
        }
        let share = if total > 0.0 {
            f64::from(acc) / total
        } else {
            0.0
        };
        (out, share)
    }
    let users = cover(&by_user, total, 0.5);
    let projects = cover(&by_project, total, 0.74);
    (users, projects)
}

fn top_failing(fatal_counts: &[u32], k: usize) -> Vec<MidplaneId> {
    let mut idx: Vec<usize> = (0..fatal_counts.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(fatal_counts.get(i).copied().unwrap_or(0)));
    idx.into_iter()
        .take(k)
        .filter_map(|i| MidplaneId::from_index(i as u8).ok())
        .collect()
}

fn rank(
    ctx: &AnalysisContext<'_>,
    causes: &HashMap<u64, RootCause>,
    category: RootCause,
    suspicious_users: &[UserId],
    suspicious_projects: &[ProjectId],
    unreliable: &[MidplaneId],
) -> Vec<(String, FeatureScore)> {
    let sus_users: HashSet<UserId> = suspicious_users.iter().copied().collect();
    let sus_projects: HashSet<ProjectId> = suspicious_projects.iter().copied().collect();
    let unreliable: HashSet<MidplaneId> = unreliable.iter().copied().collect();

    let mut user_f = Vec::new();
    let mut project_f = Vec::new();
    let mut size_f = Vec::new();
    let mut time_f = Vec::new();
    let mut loc_f = Vec::new();
    let mut labels = Vec::new();
    for j in ctx.job_records() {
        match causes.get(&j.job_id) {
            Some(&c) if c != category => continue,
            other => labels.push(usize::from(other == Some(&category))),
        }
        user_f.push(usize::from(sus_users.contains(&j.user)));
        project_f.push(usize::from(sus_projects.contains(&j.project)));
        size_f.push(size_row(j.size_midplanes()).unwrap_or(0));
        time_f.push(time_col(j.runtime().as_secs()));
        loc_f.push(usize::from(
            j.partition.midplanes().any(|m| unreliable.contains(&m)),
        ));
    }
    let features = vec![
        FeatureColumn {
            name: "user".into(),
            values: user_f,
            cardinality: 2,
        },
        FeatureColumn {
            name: "project".into(),
            values: project_f,
            cardinality: 2,
        },
        FeatureColumn {
            name: "size".into(),
            values: size_f,
            cardinality: 9,
        },
        FeatureColumn {
            name: "execution time".into(),
            values: time_f,
            cardinality: 4,
        },
        FeatureColumn {
            name: "location".into(),
            values: loc_f,
            cardinality: 2,
        },
    ];
    rank_features(&features, &labels, 2).unwrap_or_default()
}

/// The naive row-major FDA miner: per lattice level, one pass over *every*
/// job row enumerating each row's item subsets and probing a candidate
/// hash map — no interleaved column scans, no postings lists, no sharding.
/// Bit-identical output to the sharded [`FdaAnalysis::compute`] kernel
/// (same candidate generation, support thresholds, lift arithmetic, and
/// ranking), which is exactly what `matches_baseline` asserts.
pub fn fda(
    events: &[Event],
    matching: &Matching,
    dims: &JobDims,
    params: &FdaParams,
) -> FdaAnalysis {
    type Item = (u8, u32);
    let n = dims.rows();

    // Errcode column: same join as the optimized kernel (victims are
    // event-ordered, dedup keeps the lowest (row, code) pair).
    let mut attributed: Vec<(u32, u16)> = Vec::new();
    for (i, em) in matching.per_event.iter().enumerate() {
        let code = events.get(i).map_or(0, |e| e.errcode.0);
        for &job_id in &em.victims {
            if let Some(row) = dims.row_of(job_id) {
                attributed.push((row, code));
            }
        }
    }
    attributed.sort_unstable();
    attributed.dedup_by_key(|p| p.0);
    let errdict = Interner::from_values(attributed.iter().map(|&(_, c)| c));
    let mut errcol = vec![0u32; n];
    for &(row, code) in &attributed {
        errcol[row as usize] = errdict.id(code).unwrap_or(0) + 1;
    }
    let n_fatal = attributed.len();
    let min_support = params.min_support(n_fatal);
    let max_level = params.max_level.min(NUM_DIMS);

    let mut analysis = FdaAnalysis {
        n_jobs: n,
        n_fatal,
        min_support,
        max_level,
        ranked: Vec::new(),
    };
    if n == 0 || n_fatal == 0 || max_level == 0 {
        return analysis;
    }

    let row_items = |row: usize| -> [Item; NUM_DIMS] {
        let mut items = [(0u8, errcol[row]); NUM_DIMS];
        for d in 0..NUM_JOB_DIMS {
            items[d + 1] = (d as u8 + 1, dims.job_col(d)[row]);
        }
        items
    };

    // Level 1: row-major count of every single item, fatal + total
    // together.
    let mut counts: HashMap<Vec<Item>, (u32, u32)> = HashMap::new();
    for (row, &ec) in errcol.iter().enumerate() {
        let fatal_row = ec != 0;
        for &it in &row_items(row) {
            let e = counts.entry(vec![it]).or_insert((0, 0));
            e.1 += 1;
            if fatal_row {
                e.0 += 1;
            }
        }
    }
    let mut frequent: Vec<Vec<Item>> = counts
        .iter()
        .filter(|&(_, &(f, _))| f >= min_support)
        .map(|(k, _)| k.clone())
        .collect();
    frequent.sort();

    let mut mined: Vec<(Vec<Item>, u32, u32, f64)> = Vec::new();
    let mut level = 1usize;
    loop {
        for items in &frequent {
            let &(fatal, total) = counts.get(items).unwrap_or(&(0, 0));
            let lift = (f64::from(fatal) * n as f64) / (f64::from(total.max(1)) * n_fatal as f64);
            if lift >= params.min_lift {
                mined.push((items.clone(), fatal, total, lift));
            }
        }
        level += 1;
        if level > max_level || frequent.is_empty() {
            break;
        }
        let candidates = fda_candidates(&frequent);
        if candidates.is_empty() {
            break;
        }
        counts = candidates
            .iter()
            .map(|c| (c.clone(), (0u32, 0u32)))
            .collect();
        let mut scratch: Vec<Item> = Vec::with_capacity(level);
        for (row, &ec) in errcol.iter().enumerate() {
            let items = row_items(row);
            let fatal_row = ec != 0;
            // Every `level`-subset of the row's 6 items, via bitmask.
            for mask in 1u32..(1 << NUM_DIMS) {
                if mask.count_ones() as usize != level {
                    continue;
                }
                scratch.clear();
                for (d, &it) in items.iter().enumerate() {
                    if mask & (1 << d) != 0 {
                        scratch.push(it);
                    }
                }
                if let Some(e) = counts.get_mut(scratch.as_slice()) {
                    e.1 += 1;
                    if fatal_row {
                        e.0 += 1;
                    }
                }
            }
        }
        frequent = candidates
            .into_iter()
            .filter(|c| counts.get(c).is_some_and(|&(f, _)| f >= min_support))
            .collect();
    }

    mined.sort_by(|a, b| {
        b.3.total_cmp(&a.3)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.0.cmp(&b.0))
    });
    analysis.ranked = mined
        .into_iter()
        .map(|(items, fatal, total, lift)| FdaItemset {
            items: items
                .iter()
                .map(|&(d, id)| FdaItemValue {
                    dim: FdaDim::ALL[d as usize],
                    value: if d == 0 {
                        match id.checked_sub(1).and_then(|i| errdict.value(i)) {
                            Some(code) => ErrCode(code).to_string(),
                            None => "-".to_string(),
                        }
                    } else {
                        dims.job_name(d as usize - 1, id).to_string()
                    },
                })
                .collect(),
            fatal_support: fatal,
            total_support: total,
            lift,
        })
        .collect();
    analysis
}

/// Apriori join + downward closure over lex-sorted frequent itemsets —
/// the same candidate semantics as the optimized kernel.
fn fda_candidates(frequent: &[Vec<(u8, u32)>]) -> Vec<Vec<(u8, u32)>> {
    let k = frequent.first().map_or(0, Vec::len);
    let mut out = Vec::new();
    let mut i = 0;
    while i < frequent.len() {
        let prefix = &frequent[i][..k.saturating_sub(1)];
        let mut j = i;
        while j < frequent.len() && &frequent[j][..k.saturating_sub(1)] == prefix {
            j += 1;
        }
        for a in i..j {
            for b in (a + 1)..j {
                let (Some(&la), Some(&lb)) = (frequent[a].last(), frequent[b].last()) else {
                    continue;
                };
                if la.0 >= lb.0 {
                    continue;
                }
                let mut cand = frequent[a].clone();
                cand.push(lb);
                let closed = (0..k.saturating_sub(1)).all(|drop| {
                    let sub: Vec<(u8, u32)> = cand
                        .iter()
                        .enumerate()
                        .filter_map(|(p, &it)| (p != drop).then_some(it))
                        .collect();
                    frequent.binary_search(&sub).is_ok()
                });
                if closed {
                    out.push(cand);
                }
            }
        }
        i = j;
    }
    out
}

fn history_uncovered(ctx: &AnalysisContext<'_>, causes: &HashMap<u64, RootCause>, k: usize) -> f64 {
    let mut covered = 0usize;
    let mut total = 0usize;
    for (_, group) in ctx.exec_groups() {
        let mut run = 0usize;
        for j in group {
            let interrupted = causes.contains_key(&j.job_id);
            if interrupted {
                total += 1;
                if run >= k {
                    covered += 1;
                }
                run += 1;
            } else {
                run = 0;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        1.0 - covered as f64 / total as f64
    }
}
