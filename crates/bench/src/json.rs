//! Minimal JSON emission for the experiment exports.
//!
//! The build environment cannot reach crates.io, so instead of `serde_json`
//! this module provides the tiny subset the harness needs: a [`Json`] value
//! tree, a [`ToJson`] conversion trait for the numeric shapes the experiments
//! produce, a [`crate::json!`] object macro, and a pretty printer.
//!
//! Non-finite floats serialize as `null` (JSON has no NaN/Infinity), matching
//! what external plotting scripts expect from missing data points.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite input becomes [`Json::Null`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0", like
                    // serde_json prints integers.
                    if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        let _ = write_int(out, *x);
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn write_int(out: &mut String, x: f64) -> std::fmt::Result {
    use std::fmt::Write;
    write!(out, "{}", x as i64)
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Convert `self` to a JSON tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_num_to_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            #[allow(clippy::cast_precision_loss)] // export precision is plot-level
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )+};
}

impl_num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
        ])
    }
}

/// Build a [`Json::Obj`] with `serde_json::json!`-like object syntax:
/// `json!({ "key": value_expr, ... })`. Values go through [`ToJson`];
/// nested objects are written as explicit inner `json!` calls.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::json::Json::Obj(vec![
            $(($key.to_owned(), $crate::json::ToJson::to_json(&$value)),)*
        ])
    };
}

/// Field-by-field export of the paper's twelve observations.
///
/// Implemented here (not in `coanalysis`) so the core crate stays free of
/// serialization concerns; the exhaustive destructuring makes this impl break
/// at compile time when `Observations` gains a field.
impl ToJson for coanalysis::report::Observations {
    fn to_json(&self) -> Json {
        let coanalysis::report::Observations {
            obs1_nonfatal_codes,
            obs1_nonimpacting_event_fraction,
            obs2_system_types,
            obs2_application_types,
            obs2_app_event_fraction,
            obs3_ts_compression,
            obs3_job_compression,
            obs4_shape_before,
            obs4_shape_after,
            obs4_mtbf_ratio,
            obs4_weibull_preferred,
            obs5_corr_total_workload,
            obs5_corr_wide_workload,
            obs6_interrupted_job_fraction,
            obs6_quick_reinterruptions,
            obs6_max_consecutive,
            obs7_mtti_over_mtbf,
            obs7_idle_event_fraction,
            obs8_spatial_fraction,
            obs8_spatial_code_count,
            obs9_system_probs,
            obs9_application_probs,
            obs10_size_gain_ratio,
            obs10_time_gain_ratio,
            obs11_app_first_hour,
            obs12_suspicious_users,
            obs12_user_share,
        } = self;
        crate::json!({
            "obs1_nonfatal_codes": obs1_nonfatal_codes,
            "obs1_nonimpacting_event_fraction": obs1_nonimpacting_event_fraction,
            "obs2_system_types": obs2_system_types,
            "obs2_application_types": obs2_application_types,
            "obs2_app_event_fraction": obs2_app_event_fraction,
            "obs3_ts_compression": obs3_ts_compression,
            "obs3_job_compression": obs3_job_compression,
            "obs4_shape_before": obs4_shape_before,
            "obs4_shape_after": obs4_shape_after,
            "obs4_mtbf_ratio": obs4_mtbf_ratio,
            "obs4_weibull_preferred": obs4_weibull_preferred,
            "obs5_corr_total_workload": obs5_corr_total_workload,
            "obs5_corr_wide_workload": obs5_corr_wide_workload,
            "obs6_interrupted_job_fraction": obs6_interrupted_job_fraction,
            "obs6_quick_reinterruptions": obs6_quick_reinterruptions,
            "obs6_max_consecutive": obs6_max_consecutive,
            "obs7_mtti_over_mtbf": obs7_mtti_over_mtbf,
            "obs7_idle_event_fraction": obs7_idle_event_fraction,
            "obs8_spatial_fraction": obs8_spatial_fraction,
            "obs8_spatial_code_count": obs8_spatial_code_count,
            "obs9_system_probs": obs9_system_probs,
            "obs9_application_probs": obs9_application_probs,
            "obs10_size_gain_ratio": obs10_size_gain_ratio,
            "obs10_time_gain_ratio": obs10_time_gain_ratio,
            "obs11_app_first_hour": obs11_app_first_hour,
            "obs12_suspicious_users": obs12_suspicious_users,
            "obs12_user_share": obs12_user_share,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_object() {
        let v = crate::json!({
            "a": 1u32,
            "b": crate::json!({"c": 2.5f64, "d": vec![1u64, 2, 3]}),
            "e": Option::<f64>::None,
        });
        let s = v.pretty();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": 2.5"));
        assert!(s.contains("\"d\": [\n"));
        assert!(s.contains("\"e\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json().pretty().trim(), "null");
        assert_eq!(f64::INFINITY.to_json().pretty().trim(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::Str("a\"b\\c\nd".to_owned());
        assert_eq!(v.pretty().trim(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn tuple_series_serialize_as_arrays() {
        let series = vec![(1.0, 0.5, 0.4, 0.6)];
        let s = series.to_json().pretty();
        assert!(s.contains("0.5"));
        assert!(s.starts_with("[\n"));
    }
}
