//! # `bgp-bench` — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation from a
//! simulated Intrepid (see `DESIGN.md` §3 for the experiment index), and
//! hosts the Criterion performance benches.
//!
//! The heavy lifting lives in [`Experiments`]: it runs the simulator once,
//! runs the co-analysis pipeline once, and each `table_*` / `fig_*` method
//! renders one deliverable as text (and optionally as JSON series for
//! plotting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bench_pipeline;
pub mod experiments;
pub mod json;
pub mod render;

pub use experiments::{Experiments, Scale};
