//! One method per table/figure of the paper.

use crate::render::{bars, pct, table};
use bgp_sim::{FaultNature, SimConfig, SimOutput, Simulation};
use coanalysis::classify::RootCause;
use coanalysis::{CoAnalysis, CoAnalysisResult};
use joblog::write::format_record as format_job;
use raslog::write::format_record as format_ras;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Which preset to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The 237-day calibrated Intrepid window (a few seconds to simulate).
    Full,
    /// The 12-day test preset (sub-second).
    Small,
}

/// A simulated system plus its co-analysis, ready to render experiments.
pub struct Experiments {
    /// The simulator output (logs + ground truth).
    pub out: SimOutput,
    /// The co-analysis result.
    pub result: CoAnalysisResult,
}

impl Experiments {
    /// Simulate and analyze.
    pub fn run(scale: Scale, seed: u64) -> Experiments {
        let cfg = match scale {
            Scale::Full => SimConfig::intrepid_2009(seed),
            Scale::Small => SimConfig::small_test(seed),
        };
        // xtask-allow(no-panic): configs here are the crate's own presets; failing validation is a programmer error with no recovery in a report generator
        #[allow(clippy::expect_used)]
        let out = Simulation::new(cfg).expect("preset config is valid").run();
        let result = CoAnalysis::default().run(&out.ras, &out.jobs);
        Experiments { out, result }
    }

    /// Tables II and III: one example record from each log, field by field.
    pub fn schema(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== Table II: example RAS record ==");
        if let Some(r) = self.out.ras.fatal().next() {
            let line = format_ras(r);
            for (name, value) in [
                "RECID",
                "MSG_ID",
                "COMPONENT",
                "SUBCOMPONENT",
                "ERRCODE",
                "SEVERITY",
                "EVENT_TIME",
                "LOCATION",
                "MESSAGE",
            ]
            .iter()
            .zip(line.split('|'))
            {
                let _ = writeln!(s, "  {name:<13} {value}");
            }
        }
        let _ = writeln!(s, "\n== Table III: example job record ==");
        if let Some(j) = self.out.jobs.jobs().first() {
            let line = format_job(j);
            for (name, value) in [
                "Job ID",
                "Execution File",
                "User",
                "Project",
                "Queuing Time",
                "Starting Time",
                "End Time",
                "Location",
                "Exit",
            ]
            .iter()
            .zip(line.split('|'))
            {
                let _ = writeln!(s, "  {name:<15} {value}");
            }
        }
        s
    }

    /// Table I: summary of both logs.
    pub fn table1(&self) -> String {
        let cfg = &self.out.config;
        // Estimate on-disk sizes from a sample of formatted lines.
        let ras_bytes = estimate_size(self.out.ras.len(), || {
            self.out
                .ras
                .records()
                .iter()
                .take(2_000)
                .map(|r| format_ras(r).len() + 1)
                .sum::<usize>()
                / self.out.ras.len().clamp(1, 2_000)
        });
        let job_bytes = estimate_size(self.out.jobs.len(), || {
            self.out
                .jobs
                .jobs()
                .iter()
                .take(2_000)
                .map(|j| format_job(j).len() + 1)
                .sum::<usize>()
                / self.out.jobs.len().clamp(1, 2_000)
        });
        let mut rows = vec![
            vec![
                "Log Name".into(),
                "Days".into(),
                "Start Date".into(),
                "End Date".into(),
                "Log Size".into(),
                "No. of Records".into(),
            ],
            vec![
                "RAS".into(),
                cfg.days.to_string(),
                fmt_date(cfg.start),
                fmt_date(cfg.end()),
                human_size(ras_bytes),
                group_thousands(self.out.ras.len()),
            ],
            vec![
                "Job".into(),
                cfg.days.to_string(),
                fmt_date(cfg.start),
                fmt_date(cfg.end()),
                human_size(job_bytes),
                group_thousands(self.out.jobs.len()),
            ],
        ];
        let mut s = String::from("== Table I: log summary ==\n");
        s.push_str(&table(&rows));
        rows.clear();
        let _ = writeln!(
            s,
            "FATAL records: {}   distinct FATAL codes: {}   distinct executables: {}",
            group_thousands(self.out.ras.fatal().count()),
            self.out.ras.fatal_only().distinct_fatal_codes(),
            group_thousands(self.out.jobs.distinct_execs()),
        );
        // The paper's Section IV-B lead-in: the share of FATAL events
        // reported from the KERNEL domain (Intrepid: 75 %), which is why
        // COMPONENT alone cannot separate system from application faults.
        let summary = raslog::LogSummary::of(&self.out.ras, 3);
        let _ = writeln!(
            s,
            "FATAL by component: KERNEL {}   (paper: ~75%; APPLICATION contributes none)",
            pct(summary.fatal_component_share(raslog::Component::Kernel)),
        );
        s
    }

    /// Table IV: Weibull parameters before/after job-related filtering.
    pub fn table4(&self) -> String {
        let mut s = String::from("== Table IV: Weibull fits of fatal-event interarrivals ==\n");
        let Some(t) = &self.result.table_iv else {
            return s + "(not enough events to fit)\n";
        };
        let row = |name: &str, f: &coanalysis::analysis::failure_stats::FailureStats| {
            vec![
                name.to_owned(),
                format!("{:.6}", f.fits.weibull.shape),
                format!("{:.1}", f.fits.weibull.scale),
                format!("{:.0}", f.fits.weibull.mean()),
                format!("{:.4e}", f.fits.weibull.variance()),
                f.n_events.to_string(),
            ]
        };
        s.push_str(&table(&[
            vec![
                "".into(),
                "Shape".into(),
                "Scale".into(),
                "Mean".into(),
                "Variance".into(),
                "Events".into(),
            ],
            row("Before job-related filtering", &t.before),
            row("After job-related filtering", &t.after),
        ]));
        let _ = writeln!(
            s,
            "MTBF ratio after/before: {:.2}x   LRT prefers Weibull: before p={:.2e}, after p={:.2e}",
            t.mtbf_ratio(),
            t.before.fits.p_value,
            t.after.fits.p_value
        );
        // Bootstrap CIs quantify how much the shape shift means.
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(13);
        for (name, f) in [("before", &t.before), ("after", &t.after)] {
            if let Ok(ci) = bgp_stats::weibull::fit_mle_bootstrap(&f.interarrivals, 200, &mut rng) {
                let _ = writeln!(
                    s,
                    "shape 90% bootstrap CI ({name}): [{:.3}, {:.3}]",
                    ci.shape_90.0, ci.shape_90.1
                );
            }
        }
        s
    }

    /// Table V: Weibull parameters of interruption interarrivals by cause.
    pub fn table5(&self) -> String {
        let mut s = String::from("== Table V: Weibull fits of job-interruption interarrivals ==\n");
        let mut rows = vec![vec![
            "Interruption Cause".into(),
            "Shape".into(),
            "Scale".into(),
            "Mean".into(),
            "Variance".into(),
            "Count".into(),
        ]];
        for (name, c) in [
            ("System Failures", &self.result.interruption.system),
            ("Application Errors", &self.result.interruption.application),
        ] {
            match &c.fits {
                Some(f) => rows.push(vec![
                    name.into(),
                    format!("{:.6}", f.weibull.shape),
                    format!("{:.1}", f.weibull.scale),
                    format!("{:.0}", f.weibull.mean()),
                    format!("{:.4e}", f.weibull.variance()),
                    c.count.to_string(),
                ]),
                None => rows.push(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    c.count.to_string(),
                ]),
            }
        }
        s.push_str(&table(&rows));
        if let (Some(sys), Some(app)) = (
            self.result.interruption.system.mtti(),
            self.result.interruption.application.mtti(),
        ) {
            let _ = writeln!(s, "MTTI(application) / MTTI(system) = {:.2}", app / sys);
        }
        if let Some(t) = &self.result.table_iv {
            if let Some(r) = self.result.interruption.mtti_over_mtbf(t.before.mtbf()) {
                let _ = writeln!(s, "MTTI(system) / MTBF(before filtering) = {:.2}", r);
            }
        }
        s
    }

    /// Table VI: system interruptions / total jobs by size × runtime bucket.
    pub fn table6(&self) -> String {
        let t = &self.result.vulnerability.table;
        let mut rows = Vec::new();
        let mut header: Vec<String> = vec!["".into()];
        header.extend(
            coanalysis::analysis::SizeLengthTable::col_labels()
                .iter()
                .map(|s| s.to_string()),
        );
        header.push("sum:proportion".into());
        rows.push(header);
        for (r, &size) in coanalysis::analysis::vulnerability::SIZE_ROWS
            .iter()
            .enumerate()
        {
            let mut row = vec![format!(
                "{} midplane{}",
                size,
                if size == 1 { "" } else { "s" }
            )];
            for c in 0..4 {
                row.push(format!("{}/{}", t.interrupted[r][c], t.total[r][c]));
            }
            let (i, tt, rate) = t.row_summary()[r];
            row.push(format!("{i}/{tt}={}", pct(rate)));
            rows.push(row);
        }
        let mut footer: Vec<String> = vec!["sum:proportion".into()];
        for (i, tt, rate) in t.col_summary() {
            footer.push(format!("{i}/{tt}={}", pct(rate)));
        }
        let (ti, ttot): (u32, u32) = t
            .row_summary()
            .iter()
            .fold((0, 0), |acc, &(i, t, _)| (acc.0 + i, acc.1 + t));
        footer.push(format!(
            "{ti}/{ttot}={}",
            pct(f64::from(ti) / f64::from(ttot.max(1)))
        ));
        rows.push(footer);
        let mut s =
            String::from("== Table VI: system interruptions / jobs, by size x execution time ==\n");
        s.push_str(&table(&rows));
        let _ = writeln!(
            s,
            "size-rate monotonicity violations (rows with >= 100 jobs): {} (paper's own matrix has 1)",
            t.size_rate_violations(100)
        );
        s
    }

    /// Figure 3: ECDF + fits of fatal interarrivals, with and without
    /// job-related redundancy.
    pub fn fig3(&self) -> String {
        let mut s = String::from("== Figure 3: fatal-event interarrival CDFs ==\n");
        let Some(t) = &self.result.table_iv else {
            return s + "(not enough events)\n";
        };
        for (name, f) in [
            ("(a) with job-related redundancy", &t.before),
            ("(b) without job-related redundancy", &t.after),
        ] {
            let _ = writeln!(s, "{name}:");
            let mut rows = vec![vec![
                "interarrival (s)".into(),
                "empirical".into(),
                "Weibull".into(),
                "exponential".into(),
            ]];
            if let Ok(series) = f.cdf_series(12) {
                for (x, emp, w, e) in series {
                    rows.push(vec![
                        format!("{x:.0}"),
                        format!("{emp:.3}"),
                        format!("{w:.3}"),
                        format!("{e:.3}"),
                    ]);
                }
            }
            s.push_str(&table(&rows));
            let dw = bgp_stats::ks::ks_statistic(&f.interarrivals, |x| f.fits.weibull.cdf(x))
                .unwrap_or(f64::NAN);
            let de = bgp_stats::ks::ks_statistic(&f.interarrivals, |x| f.fits.exponential.cdf(x))
                .unwrap_or(f64::NAN);
            let _ = writeln!(s, "KS distance: Weibull {dw:.4} vs exponential {de:.4}\n");
        }
        s
    }

    /// Figure 4: per-midplane fatal counts, workload, wide-job workload.
    pub fn fig4(&self) -> String {
        let p = &self.result.midplane;
        let mut s = String::from("== Figure 4: per-midplane profile (80 midplanes) ==\n");
        let counts: Vec<f64> = p.fatal_counts.iter().map(|&c| f64::from(c)).collect();
        let _ = writeln!(s, "(a) fatal events per midplane:");
        s.push_str(&bars(&counts, 8));
        let load: Vec<f64> = p.workload_secs.iter().map(|&v| v as f64 / 3600.0).collect();
        let _ = writeln!(s, "(b) workload per midplane (busy hours):");
        s.push_str(&bars(&load, 8));
        let wide: Vec<f64> = p
            .wide_workload_secs
            .iter()
            .map(|&v| v as f64 / 3600.0)
            .collect();
        let _ = writeln!(
            s,
            "(c) wide-job (>= {} midplanes) workload per midplane (busy hours):",
            p.wide_threshold
        );
        s.push_str(&bars(&wide, 8));
        let _ = writeln!(
            s,
            "Pearson(fatal counts, total workload) = {:.3}",
            p.corr_with_workload().unwrap_or(f64::NAN)
        );
        let _ = writeln!(
            s,
            "Pearson(fatal counts, wide workload)  = {:.3}",
            p.corr_with_wide_workload().unwrap_or(f64::NAN)
        );
        let _ = writeln!(
            s,
            "middle-band (midplanes 33-64) share of fatal events: {}",
            pct(p.middle_band_share())
        );
        // Section V-B: Weibull still fits at midplane level.
        let fits = coanalysis::analysis::midplane::per_midplane_fits(&self.result.events, 8);
        if !fits.is_empty() {
            let weibull_wins = fits
                .iter()
                .filter(|(_, f)| f.weibull_preferred(0.05))
                .count();
            let shapes: Vec<f64> = fits.iter().map(|(_, f)| f.weibull.shape).collect();
            let mean_shape = shapes.iter().sum::<f64>() / shapes.len() as f64;
            let _ = writeln!(
                s,
                "midplane-level fits ({} midplanes with >= 8 events): Weibull preferred on {}, mean shape {:.3}",
                fits.len(),
                weibull_wins,
                mean_shape
            );
        }
        s
    }

    /// Ablation: sweep the scheduler's same-partition resubmission
    /// preference (Intrepid: 57.4 %) and watch job-related redundancy
    /// respond — the knob behind Observations 3 and 9.
    pub fn sweep_same_partition(scale: Scale, seed: u64) -> String {
        let mut rows = vec![vec![
            "same-partition probability".into(),
            "chain faults".into(),
            "interruptions".into(),
            "interrupted executables".into(),
        ]];
        for prob in [0.0, 0.3, 0.574, 0.9] {
            let mut cfg = match scale {
                Scale::Full => SimConfig::intrepid_2009(seed),
                Scale::Small => SimConfig::small_test(seed),
            };
            cfg.same_partition_prob = prob;
            // xtask-allow(no-panic): preset config with one probability tweaked; still valid by construction
            #[allow(clippy::expect_used)]
            let out = Simulation::new(cfg).expect("preset config is valid").run();
            let interrupted_execs: std::collections::HashSet<_> = out
                .truth
                .job_cause
                .keys()
                .filter_map(|&id| out.jobs.by_job_id(id).map(|j| j.exec))
                .collect();
            rows.push(vec![
                format!("{prob:.3}"),
                out.truth.chain_faults().to_string(),
                out.truth.total_interruptions().to_string(),
                interrupted_execs.len().to_string(),
            ]);
        }
        let mut s = String::from(
            "== Ablation: same-partition resubmission preference vs job-related redundancy ==\n",
        );
        s.push_str(&table(&rows));
        s.push_str(
            "(the paper's 57.4% preference is a major driver of the chains that\n\
             job-related filtering exists to remove)\n",
        );
        s
    }

    /// Figure 5: interruptions per day.
    pub fn fig5(&self) -> String {
        let b = &self.result.burst;
        let mut s = String::from("== Figure 5: job interruptions per day ==\n");
        let series: Vec<f64> = b.per_day.iter().map(|&c| f64::from(c)).collect();
        s.push_str(&bars(&series, 6));
        let _ = writeln!(
            s,
            "interrupted jobs: {} of all jobs; burst days (>=3) among active days: {}",
            pct(b.interrupted_job_fraction),
            pct(b.burst_day_fraction()),
        );
        let _ = writeln!(
            s,
            "re-interruptions of the same executable within {} s: {}; longest consecutive run: {}",
            b.quick_window_secs, b.quick_reinterruptions, b.max_consecutive_one_exec
        );
        // Stationarity sanity check behind the single-fit assumption.
        if let Some(span) = self.out.ras.time_span() {
            let trend =
                coanalysis::analysis::trend::FailureTrend::new(&self.result.events, span.0, span.1);
            if let Some(f) = &trend.fit {
                let _ = writeln!(
                    s,
                    "weekly fatal-event trend: slope {:+.2}/week (r = {:+.2}) -> {}",
                    f.slope,
                    f.r,
                    if trend.is_stationary(0.5, 0.5) {
                        "stationary enough for a single Weibull fit"
                    } else {
                        "non-stationary: interpret Table IV with care"
                    }
                );
            }
        }
        s
    }

    /// Figure 6: interruption interarrival CDFs by cause.
    pub fn fig6(&self) -> String {
        let mut s = String::from("== Figure 6: interruption interarrival CDFs ==\n");
        for (name, c) in [
            (
                "(a) due to system failures",
                &self.result.interruption.system,
            ),
            (
                "(b) due to application errors",
                &self.result.interruption.application,
            ),
        ] {
            let _ = writeln!(s, "{name} ({} interruptions):", c.count);
            match c.cdf_series(10) {
                Ok(series) => {
                    let mut rows = vec![vec![
                        "interarrival (s)".into(),
                        "empirical".into(),
                        "Weibull".into(),
                        "exponential".into(),
                    ]];
                    for (x, emp, w, e) in series {
                        rows.push(vec![
                            format!("{x:.0}"),
                            format!("{emp:.3}"),
                            format!("{w:.3}"),
                            format!("{e:.3}"),
                        ]);
                    }
                    s.push_str(&table(&rows));
                }
                Err(_) => {
                    let _ = writeln!(s, "  (not enough interruptions to fit)");
                }
            }
        }
        s
    }

    /// Figure 7: interruption probability of resubmissions vs. k.
    pub fn fig7(&self) -> String {
        let r = &self.result.vulnerability.resubmission;
        let mut rows = vec![vec![
            "k (consecutive prior interruptions)".into(),
            "category 1 (system)".into(),
            "category 2 (application)".into(),
        ]];
        for k in 1..=3usize {
            let cell = |counts: &[(u32, u32); 3]| {
                let (n, hit) = counts[k - 1];
                if n == 0 {
                    "n/a".to_owned()
                } else {
                    format!("{} ({hit}/{n})", pct(f64::from(hit) / f64::from(n)))
                }
            };
            rows.push(vec![k.to_string(), cell(&r.system), cell(&r.application)]);
        }
        let mut s =
            String::from("== Figure 7: P(interrupted | k consecutive prior interruptions) ==\n");
        s.push_str(&table(&rows));
        s
    }

    /// Figure 7 aggregated across several seeds: the k = 2, 3 cells hold
    /// only a handful of jobs in any single window (the paper's too), so
    /// the stable curve needs pooling.
    pub fn fig7_across_seeds(scale: Scale, base_seed: u64, n: u64) -> String {
        let mut system = [(0u32, 0u32); 3];
        let mut application = [(0u32, 0u32); 3];
        for i in 0..n {
            let e = Experiments::run(scale, base_seed + i);
            let r = &e.result.vulnerability.resubmission;
            for k in 0..3 {
                system[k].0 += r.system[k].0;
                system[k].1 += r.system[k].1;
                application[k].0 += r.application[k].0;
                application[k].1 += r.application[k].1;
            }
        }
        let mut rows = vec![vec![
            "k".into(),
            "category 1 (system)".into(),
            "category 2 (application)".into(),
        ]];
        let cell = |counts: &[(u32, u32); 3], k: usize| {
            let (nn, hit) = counts[k];
            if nn == 0 {
                "n/a".to_owned()
            } else {
                format!("{} ({hit}/{nn})", pct(f64::from(hit) / f64::from(nn)))
            }
        };
        for k in 0..3usize {
            rows.push(vec![
                (k + 1).to_string(),
                cell(&system, k),
                cell(&application, k),
            ]);
        }
        let mut s = format!(
            "== Figure 7 pooled over {n} seeds (base {base_seed}): P(interrupted | k) ==\n"
        );
        s.push_str(&table(&rows));
        s
    }

    /// The twelve observations plus the feature ranking detail and the
    /// paper-shape checklist.
    pub fn observations(&self) -> String {
        let obs = self.result.observations();
        let mut s = obs.to_string();
        let _ = writeln!(s, "\nShape checklist vs the paper:");
        for c in obs.check_against_paper() {
            let _ = writeln!(
                s,
                "  [{}] Obs {:>2}: {}",
                if c.pass { "PASS" } else { "MISS" },
                c.observation,
                c.claim
            );
        }
        let _ = writeln!(s, "\nFeature ranking, category 1 (system) interruptions:");
        for (name, score) in &self.result.vulnerability.ranking_system {
            let _ = writeln!(
                s,
                "  {name:<15} gain ratio {:.5} (gain {:.5})",
                score.gain_ratio, score.gain
            );
        }
        let _ = writeln!(
            s,
            "Feature ranking, category 2 (application) interruptions:"
        );
        for (name, score) in &self.result.vulnerability.ranking_application {
            let _ = writeln!(
                s,
                "  {name:<15} gain ratio {:.5} (gain {:.5})",
                score.gain_ratio, score.gain
            );
        }
        s
    }

    /// Scorecard against the simulator's ground truth — the validation the
    /// paper could only do by interviewing administrators.
    pub fn scorecard(&self) -> String {
        let truth = &self.out.truth;
        let mut s = String::from("== Ground-truth scorecard ==\n");
        // Interruption recall/precision.
        let found = &self.result.matching.job_to_event;
        let tp = found
            .keys()
            .filter(|id| truth.job_cause.contains_key(id))
            .count();
        let recall = tp as f64 / truth.job_cause.len().max(1) as f64;
        let precision = tp as f64 / found.len().max(1) as f64;
        let _ = writeln!(
            s,
            "interruption matching: recall {} precision {} ({} found, {} true)",
            pct(recall),
            pct(precision),
            found.len(),
            truth.job_cause.len()
        );
        // Root-cause accuracy over codes that truly interrupted something.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (&code, &nature) in &truth.code_nature {
            let Some(classified) = self.result.root_cause.cause(code) else {
                continue;
            };
            let truth_cause = match nature {
                FaultNature::ApplicationError => RootCause::ApplicationError,
                _ => RootCause::SystemFailure,
            };
            total += 1;
            if classified == truth_cause {
                correct += 1;
            }
        }
        let _ = writeln!(
            s,
            "root-cause classification: {}/{} codes correct ({})",
            correct,
            total,
            pct(correct as f64 / total.max(1) as f64)
        );
        // Chain (job-related redundancy) detection.
        let true_chains = truth.chain_faults();
        let flagged = self.result.job_redundant.iter().filter(|&&f| f).count();
        let _ = writeln!(
            s,
            "job-related redundancy: flagged {flagged} events (ground truth: {true_chains} chain faults)",
        );
        s
    }

    /// Per-code verdict table: what Section IV concluded about every FATAL
    /// code that fired — the machine-generated version of the paper's
    /// prose inventory ("BULK_POWER_FATAL is a hardware-related alarm…").
    pub fn codes(&self) -> String {
        use coanalysis::classify::{CodeImpact, RootCause};
        use coanalysis::matching::EventCase;
        let mut per_code: std::collections::HashMap<raslog::ErrCode, (usize, usize)> =
            std::collections::HashMap::new();
        for (e, m) in self
            .result
            .events
            .iter()
            .zip(&self.result.matching.per_event)
        {
            let entry = per_code.entry(e.errcode).or_insert((0, 0));
            entry.0 += 1;
            if m.case == EventCase::Interrupted {
                entry.1 += m.victims.len();
            }
        }
        let mut codes: Vec<_> = per_code.into_iter().collect();
        codes.sort_by_key(|&(c, (n, _))| (std::cmp::Reverse(n), c));
        let mut rows = vec![vec![
            "ERRCODE".into(),
            "events".into(),
            "victims".into(),
            "impact verdict".into(),
            "root cause (rule)".into(),
        ]];
        let cat = raslog::Catalog::standard();
        for (code, (events, victims)) in codes {
            let impact = match self.result.impact.per_code.get(&code) {
                Some(CodeImpact::InterruptionRelated) => "interruption-related",
                Some(CodeImpact::NonFatal) => "non-fatal in practice",
                Some(CodeImpact::UndeterminedIdle) => "undetermined (idle only)",
                Some(CodeImpact::UndeterminedMixed) => "undetermined (mixed)",
                None => "-",
            };
            let cause = match self.result.root_cause.per_code.get(&code) {
                Some((RootCause::SystemFailure, rule)) => format!("system ({rule:?})"),
                Some((RootCause::ApplicationError, rule)) => {
                    format!("application ({rule:?})")
                }
                None => "-".into(),
            };
            rows.push(vec![
                cat.info(code).name.to_owned(),
                events.to_string(),
                victims.to_string(),
                impact.into(),
                cause,
            ]);
        }
        let mut s = String::from("== Per-code verdicts (Section IV, mechanized) ==\n");
        s.push_str(&table(&rows));
        s
    }

    /// Section VII, recommendation 1: warning-policy evaluation — what a
    /// failure predictor gains from co-analysis (impact verdicts + location
    /// awareness).
    pub fn prediction(&self) -> String {
        use coanalysis::predict::{chain_guard, evaluate_policies};
        let scores = evaluate_policies(
            &self.result.events,
            &self.result.matching,
            &self.result.impact,
        );
        let mut rows = vec![vec![
            "warning policy".into(),
            "warnings".into(),
            "useful".into(),
            "false alarms".into(),
            "precision".into(),
            "recall".into(),
        ]];
        for s in &scores {
            rows.push(vec![
                s.policy.name().into(),
                s.warnings.to_string(),
                s.useful.to_string(),
                s.false_alarms().to_string(),
                pct(s.precision()),
                pct(s.recall()),
            ]);
        }
        let mut out = String::from(
            "== Section VII.1: failure-warning policies (co-analysis vs severity-only) ==\n",
        );
        out.push_str(&table(&rows));
        if let (Some(base), Some(best)) = (scores.first(), scores.last()) {
            let _ = writeln!(
                out,
                "co-analysis removes {} of {} false alarms ({}) at {} recall",
                base.false_alarms() - best.false_alarms(),
                base.false_alarms(),
                pct(1.0 - best.false_alarms() as f64 / base.false_alarms().max(1) as f64),
                pct(best.recall()),
            );
        }
        let (predictions, hits) = chain_guard(&self.result.events, &self.result.matching);
        let _ = writeln!(
            out,
            "chain guard (predict repeat interruptions at a struck midplane): {hits}/{predictions} correct",
        );
        // Lead-time prediction from correctable-error precursors.
        let score = coanalysis::predict::PrecursorPredictor::default().evaluate(
            &self.out.ras,
            &self.result.events,
            &self.result.matching,
        );
        let _ = writeln!(
            out,
            "precursor predictor (ECC-warning bursts): {} alerts, precision {}, recall {}, median lead {}",
            score.alerts,
            pct(score.precision()),
            pct(score.recall()),
            score
                .median_lead_secs
                .map(|s| format!("{:.1} min", s as f64 / 60.0))
                .unwrap_or_else(|| "n/a".into()),
        );
        out
    }

    /// Section VII, recommendation 2: checkpoint-policy cost comparison.
    pub fn checkpoint(&self) -> String {
        use coanalysis::analysis::checkpoint::standard_study;
        use coanalysis::classify::RootCause;
        let causes: std::collections::HashMap<u64, RootCause> = self
            .result
            .matching
            .job_to_event
            .iter()
            .map(|(&job_id, &idx)| {
                let code = self.result.events[idx].errcode;
                (
                    job_id,
                    self.result
                        .root_cause
                        .cause(code)
                        .unwrap_or(RootCause::SystemFailure),
                )
            })
            .collect();
        let mtti = self.result.interruption.system.mtti().unwrap_or(100_000.0);
        let outcomes = standard_study(&self.out.jobs, &causes, mtti, 300.0, 32);
        let mut rows = vec![vec![
            "policy".into(),
            "lost node-hours".into(),
            "overhead node-hours".into(),
            "total node-hours".into(),
            "jobs checkpointing".into(),
        ]];
        for o in &outcomes {
            rows.push(vec![
                o.policy.name().into(),
                format!("{:.0}", o.lost_node_secs / 3600.0),
                format!("{:.0}", o.overhead_node_secs / 3600.0),
                format!("{:.0}", o.total_cost() / 3600.0),
                o.jobs_checkpointing.to_string(),
            ]);
        }
        let mut out = String::from(
            "== Section VII.2: checkpoint-policy replay (300 s checkpoint cost, Young interval from measured MTTI) ==\n",
        );
        out.push_str(&table(&rows));
        let _ = writeln!(
            out,
            "(MTTI used for the Young interval: {:.1} h)",
            mtti / 3600.0
        );
        out
    }

    /// Section VII, recommendation 3: the fault-aware-scheduler what-if —
    /// rerun the *same seed* with the scheduler subscribed to failure
    /// information and compare.
    pub fn ablation(&self) -> String {
        let mut cfg = self.out.config.clone();
        cfg.fault_aware_scheduler = true;
        // xtask-allow(no-panic): rerun of a config that already validated, with one flag flipped
        #[allow(clippy::expect_used)]
        let aware = Simulation::new(cfg).expect("validated config").run();
        let blind = &self.out;
        let mut rows = vec![
            vec![
                "".into(),
                "fault-blind (real Intrepid)".into(),
                "fault-aware (CiFTS what-if)".into(),
            ],
            vec![
                "job interruptions".into(),
                blind.truth.total_interruptions().to_string(),
                aware.truth.total_interruptions().to_string(),
            ],
            vec![
                "chain (job-related redundant) faults".into(),
                blind.truth.chain_faults().to_string(),
                aware.truth.chain_faults().to_string(),
            ],
            vec![
                "jobs completed".into(),
                blind.jobs.len().to_string(),
                aware.jobs.len().to_string(),
            ],
        ];
        let mut out = String::from(
            "== Section VII.3: fault-aware scheduling what-if (same seed, same faults) ==\n",
        );
        out.push_str(&table(&rows));
        rows.clear();
        let saved = blind
            .truth
            .chain_faults()
            .saturating_sub(aware.truth.chain_faults());
        let _ = writeln!(
            out,
            "a failure feed to the scheduler avoids {saved} of {} chain faults",
            blind.truth.chain_faults()
        );
        out
    }

    /// Everything, in paper order.
    pub fn all(&self) -> String {
        [
            self.table1(),
            self.schema(),
            self.observations(),
            self.table4(),
            self.fig3(),
            self.fig4(),
            self.fig5(),
            self.table5(),
            self.fig6(),
            self.fig7(),
            self.table6(),
            self.prediction(),
            self.checkpoint(),
            self.ablation(),
            self.scorecard(),
        ]
        .join("\n")
    }

    /// Export the figure series as JSON files under `dir` (for external
    /// plotting).
    pub fn export_json(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let write = |name: &str, value: crate::json::Json| -> io::Result<()> {
            std::fs::write(dir.join(name), value.pretty())
        };
        if let Some(t) = &self.result.table_iv {
            write(
                "fig3.json",
                crate::json!({
                    "before": t.before.cdf_series(64).ok(),
                    "after": t.after.cdf_series(64).ok(),
                    "weibull_before": crate::json!({"shape": t.before.fits.weibull.shape,
                                        "scale": t.before.fits.weibull.scale}),
                    "weibull_after": crate::json!({"shape": t.after.fits.weibull.shape,
                                       "scale": t.after.fits.weibull.scale}),
                }),
            )?;
        }
        write(
            "fig4.json",
            crate::json!({
                "fatal_counts": self.result.midplane.fatal_counts,
                "workload_secs": self.result.midplane.workload_secs,
                "wide_workload_secs": self.result.midplane.wide_workload_secs,
            }),
        )?;
        write(
            "fig5.json",
            crate::json!({ "per_day": self.result.burst.per_day }),
        )?;
        write(
            "fig6.json",
            crate::json!({
                "system": self.result.interruption.system.cdf_series(64).ok(),
                "application": self.result.interruption.application.cdf_series(64).ok(),
            }),
        )?;
        write(
            "fig7.json",
            crate::json!({
                "system": self.result.vulnerability.resubmission.system,
                "application": self.result.vulnerability.resubmission.application,
            }),
        )?;
        write(
            "table6.json",
            crate::json!({
                "interrupted": self.result.vulnerability.table.interrupted,
                "total": self.result.vulnerability.table.total,
            }),
        )?;
        write(
            "observations.json",
            crate::json::ToJson::to_json(&self.result.observations()),
        )?;
        Ok(())
    }
}

fn estimate_size(n: usize, avg_line: impl FnOnce() -> usize) -> usize {
    if n == 0 {
        0
    } else {
        n * avg_line()
    }
}

fn human_size(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

fn group_thousands(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn fmt_date(t: bgp_model::Timestamp) -> String {
    let (y, m, d, _, _, _) = t.to_civil();
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> &'static Experiments {
        use std::sync::OnceLock;
        static E: OnceLock<Experiments> = OnceLock::new();
        E.get_or_init(|| Experiments::run(Scale::Small, 7))
    }

    #[test]
    fn every_experiment_renders() {
        let e = exp();
        for (name, text) in [
            ("table1", e.table1()),
            ("schema", e.schema()),
            ("table4", e.table4()),
            ("table5", e.table5()),
            ("table6", e.table6()),
            ("fig3", e.fig3()),
            ("fig4", e.fig4()),
            ("fig5", e.fig5()),
            ("fig6", e.fig6()),
            ("fig7", e.fig7()),
            ("observations", e.observations()),
            ("scorecard", e.scorecard()),
            ("prediction", e.prediction()),
            ("checkpoint", e.checkpoint()),
        ] {
            assert!(text.len() > 50, "{name} output too short:\n{text}");
        }
        assert!(e.all().contains("Table VI"));
    }

    #[test]
    fn helpers() {
        assert_eq!(group_thousands(1_234_567), "1,234,567");
        assert_eq!(group_thousands(12), "12");
        assert_eq!(human_size(512), "512.0 B");
        assert_eq!(human_size(2048), "2.0 KB");
        assert!(human_size(2_000_000).contains("MB"));
    }

    #[test]
    fn json_export_writes_files() {
        let e = exp();
        let dir = std::env::temp_dir().join("bgp_bench_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        e.export_json(&dir).unwrap();
        for f in [
            "fig4.json",
            "fig5.json",
            "fig7.json",
            "table6.json",
            "observations.json",
        ] {
            assert!(dir.join(f).exists(), "missing {f}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
