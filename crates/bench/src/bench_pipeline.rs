//! The `--bench-json` pipeline benchmark behind `BENCH_PIPELINE.json`.
//!
//! Simulates Intrepid at paper scale (the 237-day calibrated window), at
//! 10× and at 100× that, runs the full pipeline once with a wall-clock
//! stage observer, then times the rewritten kernels — matching, root-cause
//! classification, vulnerability ranking, the SWAR delimiter scan behind
//! ingest, the incremental stage graph, and the sharded FDA lattice miner —
//! head-to-head against the pre-optimization reference implementations (in
//! [`crate::baseline`], the scalar byte scan, and the one-shot full
//! re-analysis respectively) on the exact same inputs. Kernel times are the
//! minimum over several repetitions (the honest estimate on a noisy
//! machine); every head-to-head also checks the optimized output equals the
//! baseline output and records the verdict in the JSON, so a regression in
//! either speed or semantics shows up in the committed artifact.
//!
//! Schema (`"schema": "bench-pipeline/v3"`): see the README "Benchmarks"
//! section for the field-by-field description and how to regenerate. v2
//! added the `ingest-simd` and `delta-rerun` kernels and the 100× scale
//! row; v3 adds the `fda` kernel (column-sharded Apriori lattice mining vs
//! the row-major hash-probing reference).

use crate::baseline;
use crate::json::Json;
use bgp_sim::{SimConfig, SimOutput, Simulation};
use coanalysis::analysis::VulnerabilityAnalysis;
use coanalysis::classify::{classify_root_cause_with_threads, RootCauseSummary};
use coanalysis::matching::Matching;
use coanalysis::{
    AnalysisContext, AnalysisSet, AppendBatch, CoAnalysis, CoAnalysisConfig, DeltaSession, StageId,
    StageObserver,
};
use joblog::JobLog;
use raslog::RasLog;
use std::sync::Mutex;
use std::time::Instant;

/// How many times each kernel is run per measurement; the reported time is
/// the minimum (then the pair is measured again, interleaved, to keep a
/// frequency ramp from favoring whichever ran last). The paper-scale
/// matching and classification kernels finish in well under a millisecond,
/// so the min needs a healthy sample to shed scheduler noise.
const REPS: usize = 15;

/// One kernel's head-to-head result.
struct KernelResult {
    name: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
    matches_baseline: bool,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Records per-stage wall clock, in execution order.
#[derive(Default)]
struct WallClockObserver {
    started: Mutex<Vec<(StageId, Instant)>>,
    finished: Mutex<Vec<(StageId, f64)>>,
}

impl StageObserver for WallClockObserver {
    fn stage_started(&self, id: StageId) {
        if let Ok(mut s) = self.started.lock() {
            s.push((id, Instant::now()));
        }
    }

    fn stage_finished(&self, id: StageId) {
        let t0 = self.started.lock().ok().and_then(|s| {
            s.iter()
                .rev()
                .find(|(sid, _)| sid.name() == id.name())
                .map(|&(_, t)| t)
        });
        if let (Some(t0), Ok(mut f)) = (t0, self.finished.lock()) {
            f.push((id, t0.elapsed().as_secs_f64() * 1e3));
        }
    }
}

/// Time `f` as the minimum wall clock over `reps` runs, returning
/// (min milliseconds, last output).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, Option<T>) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out)
}

/// Benchmark one simulated scale end to end; `label` names it in the JSON.
fn bench_scale(label: &str, cfg: SimConfig, threads: usize, reps: usize) -> Json {
    let days = cfg.days;
    let out = match Simulation::new(cfg) {
        Ok(sim) => sim.run(),
        Err(e) => {
            return crate::json!({ "name": label, "error": format!("sim config: {e}") });
        }
    };
    let records = out.ras.len() + out.jobs.len();

    // One observed full-pipeline run for the per-stage wall clock.
    let observer = WallClockObserver::default();
    let pipeline = CoAnalysis::with_config(CoAnalysisConfig {
        threads,
        ..CoAnalysisConfig::default()
    });
    let ctx = AnalysisContext::new(&out.ras, &out.jobs);
    let t_run = Instant::now();
    let products = pipeline.run_on_observed(&ctx, AnalysisSet::all(), &observer);
    let analyze_ms = t_run.elapsed().as_secs_f64() * 1e3;
    let Some(r) = products.into_result() else {
        return crate::json!({ "name": label, "error": "pipeline left a product empty" });
    };
    let stage_ms: Vec<(StageId, f64)> = observer
        .finished
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let stages: Vec<Json> = stage_ms
        .iter()
        .map(|&(id, ms)| crate::json!({ "stage": id.name(), "ms": ms }))
        .collect();

    // Kernel head-to-heads on the pipeline's own intermediate products.
    let matcher = pipeline.config.matcher;
    let events = &r.events;
    let fatal_counts = r.midplane.fatal_counts.as_slice();

    let (base_ms, base_out) = time_min(reps, || baseline::match_events(&matcher, events, &ctx));
    let (opt_ms, opt_out) = time_min(reps, || matcher.run_with_threads(events, &ctx, threads));
    let matching_kernel = KernelResult {
        name: "matching",
        baseline_ms: base_ms,
        optimized_ms: opt_ms,
        matches_baseline: matches(&base_out, &opt_out),
    };
    let matching: Matching = opt_out.unwrap_or_default();

    let (base_ms, base_out) = time_min(reps, || {
        baseline::classify_root_cause(events, &matching, &ctx)
    });
    let (opt_ms, opt_out) = time_min(reps, || {
        classify_root_cause_with_threads(events, &matching, &ctx, threads)
    });
    let root_cause_kernel = KernelResult {
        name: "root-cause",
        baseline_ms: base_ms,
        optimized_ms: opt_ms,
        matches_baseline: matches(&base_out, &opt_out),
    };
    let root_cause: RootCauseSummary = opt_out.unwrap_or_default();

    let (base_ms, base_out) = time_min(reps, || {
        baseline::vulnerability(events, &matching, &root_cause, &ctx, fatal_counts)
    });
    let (opt_ms, opt_out) = time_min(reps, || {
        VulnerabilityAnalysis::new_with_threads(
            events,
            &matching,
            &root_cause,
            &ctx,
            fatal_counts,
            threads,
        )
    });
    let vulnerability_kernel = KernelResult {
        name: "vulnerability",
        baseline_ms: base_ms,
        optimized_ms: opt_ms,
        matches_baseline: matches(&base_out, &opt_out),
    };

    // FDA lattice mining: the interned columns are an AnalysisContext
    // cache shared by both sides, so resolve them outside the timed
    // region — the head-to-head measures mining, not interning.
    let fda_dims = ctx.fda_columns();
    let fda_params = pipeline.config.fda;
    let (base_ms, base_out) = time_min(reps, || {
        baseline::fda(events, &matching, fda_dims, &fda_params)
    });
    let (opt_ms, opt_out) = time_min(reps, || {
        coanalysis::FdaAnalysis::compute(events, &matching, fda_dims, &fda_params, threads)
    });
    let fda_kernel = KernelResult {
        name: "fda",
        baseline_ms: base_ms,
        optimized_ms: opt_ms,
        matches_baseline: matches(&base_out, &opt_out),
    };

    let ingest_kernel = bench_ingest_simd(&out, reps);
    let delta_kernel = bench_delta_rerun(&out, threads, reps);

    let kernels: Vec<Json> = [
        matching_kernel,
        root_cause_kernel,
        vulnerability_kernel,
        fda_kernel,
        ingest_kernel,
        delta_kernel,
    ]
    .iter()
    .map(|k| {
        crate::json!({
            "kernel": k.name,
            "baseline_ms": k.baseline_ms,
            "optimized_ms": k.optimized_ms,
            "speedup": k.speedup(),
            "matches_baseline": k.matches_baseline,
        })
    })
    .collect();

    let analyze_secs = analyze_ms / 1e3;
    crate::json!({
        "name": label,
        "sim_days": days,
        "ras_records": out.ras.len(),
        "jobs": out.jobs.len(),
        "filtered_events": r.events.len(),
        "ingest_lines": out.ras.len().min(INGEST_SCAN_LINES),
        "analyze_ms": analyze_ms,
        "records_per_sec": if analyze_secs > 0.0 { records as f64 / analyze_secs } else { 0.0 },
        "stages": Json::Arr(stages),
        "kernels": Json::Arr(kernels),
    })
}

fn matches<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// Cap on the RAS lines serialized for the ingest scan — 4M lines keeps the
/// scan buffer a few hundred MB at the 100× scale while still dwarfing
/// every cache level. The cap is recorded in the JSON (`ingest_lines`).
const INGEST_SCAN_LINES: usize = 4_000_000;

/// Walk every occurrence of `needle` in `data` with the given scanner,
/// folding (count, FNV-1a of positions) — the equivalence fingerprint the
/// SWAR/scalar head-to-head compares. Generic so each scanner inlines.
fn scan_delimiters(
    data: &[u8],
    needle: u8,
    find: impl Fn(u8, &[u8]) -> Option<usize>,
) -> (u64, u64) {
    let mut count = 0u64;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut pos = 0usize;
    while let Some(i) = data.get(pos..).and_then(|tail| find(needle, tail)) {
        let at = pos + i;
        count += 1;
        hash ^= at as u64;
        hash = hash.wrapping_mul(0x0100_0000_01b3);
        pos = at + 1;
    }
    (count, hash)
}

/// The ingest hot-path head-to-head: the SWAR newline-framing scan
/// ([`bgp_model::bytes::find_byte`], the scan `line_chunks` and the
/// zero-copy loaders are built on) vs the scalar byte walk it replaced,
/// over the serialized text of the simulated RAS log.
fn bench_ingest_simd(out: &SimOutput, reps: usize) -> KernelResult {
    let mut text = String::new();
    for r in out.ras.records().iter().take(INGEST_SCAN_LINES) {
        text.push_str(&raslog::format_record(r));
        text.push('\n');
    }
    let data = text.as_bytes();
    let (base_ms, base_out) = time_min(reps, || {
        scan_delimiters(data, b'\n', bgp_model::bytes::find_byte_scalar)
    });
    let (opt_ms, opt_out) = time_min(reps, || {
        scan_delimiters(data, b'\n', bgp_model::bytes::find_byte)
    });
    KernelResult {
        name: "ingest-simd",
        baseline_ms: base_ms,
        optimized_ms: opt_ms,
        matches_baseline: matches(&base_out, &opt_out),
    }
}

/// The incremental stage graph head-to-head: appending the final simulated
/// day through [`DeltaSession::append`] vs a one-shot full analysis over
/// the concatenated logs (including index construction, which the delta
/// path also pays for its merge). Priming the session on the base window
/// is untimed — that cost is the previous day's run.
fn bench_delta_rerun(out: &SimOutput, threads: usize, reps: usize) -> KernelResult {
    let cfg = CoAnalysisConfig {
        threads,
        ..CoAnalysisConfig::default()
    };
    let records = out.ras.records();
    let jobs = out.jobs.jobs();
    let cut = match records.last() {
        Some(last) => last.event_time - bgp_model::Duration::days(1),
        None => {
            return KernelResult {
                name: "delta-rerun",
                baseline_ms: 0.0,
                optimized_ms: 0.0,
                matches_baseline: false,
            };
        }
    };
    let (base_ras, day_ras): (Vec<raslog::RasRecord>, Vec<raslog::RasRecord>) =
        records.iter().cloned().partition(|r| r.event_time < cut);
    let (base_jobs, day_jobs): (Vec<joblog::JobRecord>, Vec<joblog::JobRecord>) =
        jobs.iter().copied().partition(|j| j.start_time < cut);
    let reps = reps.clamp(1, 3);

    // Baseline: what yesterday's operator did — rebuild both logs from the
    // full concatenated record streams and run the whole pipeline.
    let mut base_best = f64::INFINITY;
    let mut base_out = None;
    for _ in 0..reps {
        let all_ras = records.to_vec();
        let all_jobs = jobs.to_vec();
        let t = Instant::now();
        let ras = RasLog::from_records(all_ras);
        let jlog = JobLog::from_jobs(all_jobs);
        let r = CoAnalysis::with_config(cfg).run(&ras, &jlog);
        base_best = base_best.min(t.elapsed().as_secs_f64() * 1e3);
        base_out = Some(r);
    }

    // Optimized: fold only the final day into a session primed on the base
    // window. Re-prime per rep (append consumes the session's clean state).
    let base_log = RasLog::from_records(base_ras);
    let mut opt_best = f64::INFINITY;
    let mut opt_out = None;
    for _ in 0..reps {
        let (mut session, _) =
            DeltaSession::new(cfg, &base_log, JobLog::from_jobs(base_jobs.clone()));
        let batch = AppendBatch {
            ras: day_ras.clone(),
            jobs: day_jobs.clone(),
        };
        let t = Instant::now();
        let (r, _) = session.append(batch);
        opt_best = opt_best.min(t.elapsed().as_secs_f64() * 1e3);
        opt_out = Some(r);
    }

    KernelResult {
        name: "delta-rerun",
        baseline_ms: base_best,
        optimized_ms: opt_best,
        matches_baseline: matches(&base_out, &opt_out),
    }
}

/// Run the pipeline benchmark and return the `BENCH_PIPELINE.json` tree.
///
/// `quick` benches only the 12-day test preset (the CI smoke mode);
/// otherwise the paper-scale window plus 10× and 100× windows are all
/// measured. The 100× row (~200M log records) is the scale gate for the
/// delta-ingestion work: one appended day must cost a small fraction of
/// the one-shot re-analysis it replaces.
pub fn run(quick: bool, threads: usize, seed: u64) -> Json {
    let scales: Vec<Json> = if quick {
        vec![bench_scale(
            "quick",
            SimConfig::small_test(seed),
            threads,
            3,
        )]
    } else {
        let mut ten_x = SimConfig::intrepid_2009(seed);
        ten_x.days *= 10;
        let mut hundred_x = SimConfig::intrepid_2009(seed);
        hundred_x.days *= 100;
        vec![
            bench_scale("paper", SimConfig::intrepid_2009(seed), threads, REPS),
            bench_scale("10x", ten_x, threads, 5),
            bench_scale("100x", hundred_x, threads, 2),
        ]
    };
    crate::json!({
        "schema": "bench-pipeline/v3",
        "threads": threads,
        "seed": seed,
        "quick": quick,
        "scales": Json::Arr(scales),
    })
}
