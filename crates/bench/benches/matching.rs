//! Event↔job matching throughput and the interval-index queries behind it.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_sim::{SimConfig, Simulation};
use coanalysis::event::Event;
use coanalysis::filter::{CausalFilter, SpatialFilter, TemporalFilter};
use coanalysis::matching::Matcher;
use coanalysis::AnalysisContext;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let out = Simulation::new(SimConfig::small_test(3))
        .expect("valid config")
        .run();
    let raw = Event::from_fatal_records(&out.ras);
    let ts = SpatialFilter::default().apply(&TemporalFilter::default().apply(&raw));
    let (events, _) = CausalFilter::default().filter(&ts);

    let mut g = c.benchmark_group("matching");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("match_events_to_jobs", |b| {
        let m = Matcher::default();
        let ctx = AnalysisContext::for_jobs(&out.jobs);
        b.iter(|| black_box(m.run(&events, &ctx)));
    });
    g.finish();

    let mut g = c.benchmark_group("interval_index");
    let times: Vec<bgp_model::Timestamp> = events.iter().map(|e| e.time).collect();
    let mids: Vec<bgp_model::MidplaneId> = events.iter().map(|e| e.midplane()).collect();
    g.throughput(Throughput::Elements(times.len() as u64));
    g.bench_function("running_at_sweep", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (&t, &m) in times.iter().zip(&mids) {
                total += out.jobs.running_at(m, t).len();
            }
            black_box(total)
        });
    });
    g.bench_function("ended_in_window_sweep", |b| {
        let w = bgp_model::Duration::seconds(30);
        b.iter(|| {
            let mut total = 0usize;
            for &t in &times {
                total += out.jobs.ended_in_window(t - w, t + w).len();
            }
            black_box(total)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
