//! Simulator throughput: full discrete-event runs at increasing window
//! lengths, and the RAS emission volume sweep.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for days in [6u32, 12, 24] {
        let mut cfg = SimConfig::small_test(5);
        cfg.days = days;
        cfg.num_execs = 500 * days / 12;
        // Throughput in simulated days per iteration.
        g.throughput(Throughput::Elements(u64::from(days)));
        g.bench_with_input(BenchmarkId::new("days", days), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::new(cfg.clone()).expect("valid config").run()));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("emission");
    g.sample_size(10);
    // Noise-scale sweep: background emission dominates full-scale runs.
    for scale in [0.01f64, 0.1, 0.5] {
        let mut cfg = SimConfig::small_test(6);
        cfg.noise_scale = scale;
        g.bench_with_input(
            BenchmarkId::new("noise_scale", format!("{scale}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(
                        Simulation::new(cfg.clone())
                            .expect("valid config")
                            .run()
                            .ras
                            .len(),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
