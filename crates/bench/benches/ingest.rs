//! Log-ingestion throughput: the serial streaming readers vs. the parallel
//! byte-chunk parsers (at 1, 2, and all-cores chunks) vs. decoding a
//! `.bgpsnap` snapshot of the same log — the three ways a 48-day site log
//! gets into memory.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_model::bytes::content_hash_64;
use bgp_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use joblog::JobReader;
use raslog::RasReader;
use std::hint::black_box;

struct Prepared {
    ras_text: Vec<u8>,
    job_text: Vec<u8>,
    ras_snap: Vec<u8>,
    job_snap: Vec<u8>,
    n_ras: u64,
    n_jobs: u64,
}

/// A 48-day simulated site log (the paper analyzes a 48-day window),
/// serialized to the native text formats, plus its `.bgpsnap` encoding.
fn prepare() -> Prepared {
    let mut cfg = SimConfig::small_test(9);
    cfg.days = 48;
    cfg.num_execs = 500 * 48 / 12;
    let out = Simulation::new(cfg).expect("valid config").run();
    let mut ras_text = Vec::new();
    raslog::write_log(&mut ras_text, out.ras.records()).unwrap();
    let mut job_text = Vec::new();
    joblog::write_log(&mut job_text, out.jobs.jobs()).unwrap();
    let ras_snap = raslog::snapshot::encode_snapshot(out.ras.records(), content_hash_64(&ras_text));
    let job_snap = joblog::snapshot::encode_snapshot(out.jobs.jobs(), content_hash_64(&job_text));
    Prepared {
        ras_text,
        job_text,
        ras_snap,
        job_snap,
        n_ras: out.ras.len() as u64,
        n_jobs: out.jobs.len() as u64,
    }
}

fn bench_ingest(c: &mut Criterion) {
    let p = prepare();
    let ncpu = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut thread_counts = vec![1, 2, ncpu];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut g = c.benchmark_group("ras_ingest");
    g.throughput(Throughput::Elements(p.n_ras));
    g.bench_function("serial_reader", |b| {
        b.iter(|| black_box(RasReader::new(p.ras_text.as_slice()).read_tolerant()));
    });
    for &threads in &thread_counts {
        g.bench_with_input(
            BenchmarkId::new("parallel_bytes", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(raslog::parse_log_bytes(&p.ras_text, threads)));
            },
        );
    }
    g.bench_function("snapshot_decode", |b| {
        let hash = content_hash_64(&p.ras_text);
        b.iter(|| black_box(raslog::snapshot::decode_snapshot(&p.ras_snap, Some(hash)).unwrap()));
    });
    g.finish();

    let mut g = c.benchmark_group("job_ingest");
    g.throughput(Throughput::Elements(p.n_jobs));
    g.bench_function("serial_reader", |b| {
        b.iter(|| black_box(JobReader::new(p.job_text.as_slice()).read_tolerant()));
    });
    for &threads in &thread_counts {
        g.bench_with_input(
            BenchmarkId::new("parallel_bytes", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(joblog::parse_log_bytes(&p.job_text, threads)));
            },
        );
    }
    g.bench_function("snapshot_decode", |b| {
        let hash = content_hash_64(&p.job_text);
        b.iter(|| black_box(joblog::snapshot::decode_snapshot(&p.job_snap, Some(hash)).unwrap()));
    });
    g.finish();

    // The hash that guards snapshot reuse runs on every snapshot load; it
    // must stay a small fraction of the decode it gates.
    let mut g = c.benchmark_group("source_hash");
    g.throughput(Throughput::Bytes(p.ras_text.len() as u64));
    g.bench_function("content_hash_64", |b| {
        b.iter(|| black_box(content_hash_64(&p.ras_text)));
    });
    g.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
