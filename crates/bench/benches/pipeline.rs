//! End-to-end co-analysis cost, and the parallel-vs-sequential ablation for
//! the sharded filter stages.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_sim::{SimConfig, SimOutput, Simulation};
use coanalysis::{AnalysisSet, CoAnalysis, CoAnalysisConfig, StageId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn prepare(days: u32, seed: u64) -> SimOutput {
    let mut cfg = SimConfig::small_test(seed);
    cfg.days = days;
    cfg.num_execs = 500 * days / 12;
    // More noise so the fatal stream is large enough for parallelism to pay.
    cfg.noise_scale = 0.05;
    Simulation::new(cfg).expect("valid config").run()
}

fn bench_pipeline(c: &mut Criterion) {
    let small = prepare(12, 7);
    let large = prepare(48, 8);

    let mut g = c.benchmark_group("pipeline_end_to_end");
    g.sample_size(20);
    for (label, out) in [("12d", &small), ("48d", &large)] {
        g.throughput(Throughput::Elements(out.ras.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), out, |b, out| {
            let ca = CoAnalysis::default();
            b.iter(|| black_box(ca.run(&out.ras, &out.jobs)));
        });
    }
    g.finish();

    // Ablation: sequential vs parallel shard filtering.
    let mut g = c.benchmark_group("pipeline_parallelism");
    g.sample_size(20);
    for (label, sequential) in [("sequential", true), ("parallel", false)] {
        let config = if sequential {
            CoAnalysisConfig::sequential()
        } else {
            CoAnalysisConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            let ca = CoAnalysis::with_config(*config);
            b.iter(|| black_box(ca.run(&large.ras, &large.jobs)));
        });
    }
    g.finish();

    // Ablation: how much of the full run each analysis selection costs —
    // the stage graph only executes the dependency closure of the
    // requested set.
    let mut g = c.benchmark_group("pipeline_analysis_sets");
    g.sample_size(20);
    let selections: [(&str, AnalysisSet); 4] = [
        ("filters_only", AnalysisSet::of(&[StageId::JobRelated])),
        ("matching_only", AnalysisSet::of(&[StageId::Matching])),
        ("impact_only", AnalysisSet::of(&[StageId::Impact])),
        ("full", AnalysisSet::all()),
    ];
    for (label, set) in selections {
        g.bench_with_input(BenchmarkId::from_parameter(label), &set, |b, set| {
            let ca = CoAnalysis::default();
            b.iter(|| black_box(ca.run_selected(&large.ras, &large.jobs, *set)));
        });
    }
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    use coanalysis::stream::OnlineAnalyzer;
    let out = prepare(12, 9);
    let mut g = c.benchmark_group("online_analyzer");
    g.throughput(Throughput::Elements(out.ras.len() as u64));
    g.bench_function("push_whole_log", |b| {
        b.iter(|| {
            let mut a = OnlineAnalyzer::new();
            for r in out.ras.records() {
                a.push(r);
            }
            black_box(a.events_out())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_streaming);
criterion_main!(benches);
