//! Filter-stack throughput: temporal, spatial, causal, and job-related
//! stages at two log scales, plus a temporal-threshold sweep (the paper's
//! fixed-threshold choice vs. alternatives).

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_sim::{SimConfig, Simulation};
use coanalysis::event::Event;
use coanalysis::filter::{CausalFilter, JobRelatedFilter, SpatialFilter, TemporalFilter};
use coanalysis::matching::Matcher;
use coanalysis::AnalysisContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

struct Prepared {
    label: &'static str,
    raw: Vec<Event>,
    jobs: joblog::JobLog,
}

fn prepare(label: &'static str, days: u32, seed: u64) -> Prepared {
    let mut cfg = SimConfig::small_test(seed);
    cfg.days = days;
    cfg.num_execs = 500 * days / 12;
    let out = Simulation::new(cfg).expect("valid config").run();
    Prepared {
        label,
        raw: Event::from_fatal_records(&out.ras),
        jobs: out.jobs,
    }
}

fn bench_filters(c: &mut Criterion) {
    let sets = [prepare("12d", 12, 1), prepare("48d", 48, 2)];

    let mut g = c.benchmark_group("temporal_filter");
    for p in &sets {
        g.throughput(Throughput::Elements(p.raw.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p.label), p, |b, p| {
            let f = TemporalFilter::default();
            b.iter(|| black_box(f.apply(&p.raw)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("spatial_filter");
    for p in &sets {
        let t = TemporalFilter::default().apply(&p.raw);
        g.throughput(Throughput::Elements(t.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p.label), &t, |b, t| {
            let f = SpatialFilter::default();
            b.iter(|| black_box(f.apply(t)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("causal_filter");
    for p in &sets {
        let ts = SpatialFilter::default().apply(&TemporalFilter::default().apply(&p.raw));
        g.throughput(Throughput::Elements(ts.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p.label), &ts, |b, ts| {
            let f = CausalFilter::default();
            b.iter(|| black_box(f.filter(ts)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("job_related_filter");
    for p in &sets {
        let ts = SpatialFilter::default().apply(&TemporalFilter::default().apply(&p.raw));
        let (events, _) = CausalFilter::default().filter(&ts);
        let ctx = AnalysisContext::for_jobs(&p.jobs);
        let matching = Matcher::default().run(&events, &ctx);
        g.throughput(Throughput::Elements(events.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(p.label),
            &(events, matching),
            |b, (events, matching)| {
                b.iter(|| black_box(JobRelatedFilter.apply(events, matching, &ctx)));
            },
        );
    }
    g.finish();

    // Ablation: how the temporal threshold changes cost (and compression).
    let mut g = c.benchmark_group("temporal_threshold_sweep");
    let p = &sets[0];
    for secs in [60i64, 300, 900] {
        let f = TemporalFilter {
            threshold: bgp_model::Duration::seconds(secs),
        };
        g.bench_with_input(BenchmarkId::from_parameter(secs), &f, |b, f| {
            b.iter(|| black_box(f.apply(&p.raw)));
        });
    }
    // Adaptive (per-code learned thresholds) vs the fixed default.
    g.bench_function("adaptive", |b| {
        let f = coanalysis::filter::AdaptiveTemporalFilter::default();
        b.iter(|| black_box(f.apply(&p.raw)));
    });
    g.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
