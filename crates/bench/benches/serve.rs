//! Daemon ingest throughput: records/second through the sharded analyzer
//! pool at 1, 2, 4, and 8 shards, exercising the same route-by-errcode →
//! bounded queue → per-shard `OnlineAnalyzer` path the `coserved` daemon
//! runs, minus the sockets (framing and parsing are benched in `ingest`).

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_serve::{EventRing, Registry, ServeMetrics, ShardConfig, ShardPool};
use bgp_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raslog::RasRecord;
use std::hint::black_box;
use std::sync::Arc;

/// A simulated site log to stream through the pool.
fn prepare() -> Vec<RasRecord> {
    let mut cfg = SimConfig::small_test(9);
    cfg.days = 30;
    cfg.num_execs = 1_200;
    let out = Simulation::new(cfg).expect("valid config").run();
    out.ras.records().to_vec()
}

fn bench_serve(c: &mut Criterion) {
    let records = prepare();
    let mut g = c.benchmark_group("serve_ingest");
    g.throughput(Throughput::Elements(records.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("shard_pool", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let registry = Registry::new();
                    let metrics = Arc::new(ServeMetrics::register(&registry));
                    let ring = Arc::new(EventRing::new(256));
                    let pool = ShardPool::start(
                        &ShardConfig {
                            shards,
                            queue_capacity: 4_096,
                            temporal: bgp_model::Duration::minutes(5),
                            spatial: bgp_model::Duration::minutes(5),
                            impact: None,
                        },
                        &metrics,
                        &ring,
                    )
                    .expect("pool starts");
                    for r in &records {
                        pool.push(*r, &metrics).expect("pool accepts");
                    }
                    pool.close();
                    pool.join();
                    black_box(pool.counters())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
