//! Statistical-kernel costs: Weibull/exponential MLE, ECDF evaluation,
//! likelihood-ratio comparison, KS distance, information-gain ranking.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_stats::infogain::{rank_features, FeatureColumn};
use bgp_stats::sample::weibull as sample_weibull;
use bgp_stats::{compare_models, Ecdf, Exponential, Weibull};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn sample(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(9);
    (0..n)
        .map(|_| sample_weibull(&mut rng, 0.55, 40_000.0))
        .collect()
}

fn bench_fitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("mle");
    for n in [500usize, 5_000, 50_000] {
        let xs = sample(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("weibull", n), &xs, |b, xs| {
            b.iter(|| black_box(Weibull::fit_mle(xs).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("exponential", n), &xs, |b, xs| {
            b.iter(|| black_box(Exponential::fit_mle(xs).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("lrt_compare", n), &xs, |b, xs| {
            b.iter(|| black_box(compare_models(xs).unwrap()));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ecdf");
    let xs = sample(50_000);
    let ecdf = Ecdf::new(&xs).unwrap();
    g.bench_function("build_50k", |b| {
        b.iter(|| black_box(Ecdf::new(&xs).unwrap()));
    });
    g.bench_function("eval_10k_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000 {
                acc += ecdf.eval(i as f64 * 40.0);
            }
            black_box(acc)
        });
    });
    g.bench_function("ks_statistic_50k", |b| {
        let w = Weibull::fit_mle(&xs).unwrap();
        b.iter(|| black_box(bgp_stats::ks::ks_statistic(&xs, |x| w.cdf(x)).unwrap()));
    });
    g.finish();

    let mut g = c.benchmark_group("infogain");
    let mut rng = SmallRng::seed_from_u64(4);
    let n = 68_000;
    let labels: Vec<usize> = (0..n)
        .map(|_| usize::from(rng.random::<f64>() < 0.005))
        .collect();
    let features: Vec<FeatureColumn> = [("size", 9usize), ("time", 4), ("user", 2)]
        .iter()
        .map(|&(name, card)| FeatureColumn {
            name: name.into(),
            values: (0..n).map(|_| rng.random_range(0..card)).collect(),
            cardinality: card,
        })
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("rank_3_features_68k_jobs", |b| {
        b.iter(|| black_box(rank_features(&features, &labels, 2).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
