//! Cost of building the shared [`AnalysisContext`] index layer once vs.
//! what the passes used to pay rebuilding indexes on the fly.
//!
//! Before the stage graph, every pass re-derived its own view: the
//! matcher and classifiers did linear `by_job_id` scans per lookup, the
//! burst/vulnerability passes rebuilt the per-executable grouping with
//! `by_exec`, and the temporal/spatial filters re-extracted and re-sharded
//! the fatal stream. The context builds all of that exactly once.

// Bench harness code follows the test-code panic policy: a broken fixture
// should abort the run loudly rather than thread Results through hot loops.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_sim::{SimConfig, Simulation};
use coanalysis::event::Event;
use coanalysis::AnalysisContext;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_context(c: &mut Criterion) {
    let out = Simulation::new(SimConfig::small_test(3))
        .expect("valid config")
        .run();

    let mut g = c.benchmark_group("context_build");
    g.throughput(Throughput::Elements(
        (out.ras.len() + out.jobs.len()) as u64,
    ));
    g.bench_function("analysis_context_new", |b| {
        b.iter(|| black_box(AnalysisContext::new(&out.ras, &out.jobs)));
    });
    g.finish();

    // The legacy per-pass rebuild, approximated by the index work the old
    // monolithic run repeated: event extraction + per-code sharding (the
    // filter stage), a by_exec rebuild (burst + resubmission +
    // history-coverage passes each did one), and the linear job-id scans
    // the matcher and classifiers performed per attribution lookup.
    let ctx = AnalysisContext::for_jobs(&out.jobs);
    let job_ids: Vec<u64> = ctx.job_records().iter().map(|j| j.job_id).collect();

    let mut g = c.benchmark_group("per_pass_rebuild");
    g.bench_function("event_extract_and_shard", |b| {
        b.iter(|| {
            let raw = Event::from_fatal_records(&out.ras);
            let mut shards: HashMap<raslog::ErrCode, Vec<Event>> = HashMap::new();
            for e in &raw {
                shards.entry(e.errcode).or_default().push(*e);
            }
            black_box(shards.len())
        });
    });
    g.bench_function("by_exec_rebuild_x3", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for _ in 0..3 {
                n += out.jobs.by_exec().len();
            }
            black_box(n)
        });
    });
    g.bench_function("by_job_id_linear_scans", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &id in &job_ids {
                hits += usize::from(out.jobs.by_job_id(id).is_some());
            }
            black_box(hits)
        });
    });
    g.finish();

    // The indexed equivalents of the same lookups, for the direct
    // comparison.
    let mut g = c.benchmark_group("context_lookup");
    g.bench_function("job_index_lookups", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &id in &job_ids {
                hits += usize::from(ctx.job(id).is_some());
            }
            black_box(hits)
        });
    });
    g.bench_function("exec_groups_reuse_x3", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for _ in 0..3 {
                n += ctx.exec_groups().len();
            }
            black_box(n)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_context);
criterion_main!(benches);
