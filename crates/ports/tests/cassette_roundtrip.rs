//! Property tests for the `.bgpcas` cassette codec, mirroring the
//! `.bgpsnap` snapshot tests: arbitrary recordings round-trip byte-
//! identically, replay preserves chunk boundaries, and every corruption —
//! truncation, bit flips, version drift — yields a typed error rather than
//! garbage records.

// Integration-test helpers follow the test-code panic policy: a broken
// fixture should fail the test loudly, not thread Results around.
#![allow(clippy::unwrap_used, clippy::expect_used, missing_docs)]

use bgp_ports::cassette::{
    Cassette, CassetteError, CassetteFrame, Recorder, StreamKind, FORMAT_VERSION, HEADER_LEN,
};
use bgp_ports::LogFormat;
use proptest::prelude::*;

fn arb_cassette() -> impl Strategy<Value = Cassette> {
    let frame = (0u64..5_000_000_000, collection::vec(0u8..=255, 0..48))
        .prop_map(|(delta_nanos, bytes)| CassetteFrame { delta_nanos, bytes });
    (
        collection::vec(frame, 0..12),
        0usize..3, // inner format index: bgp, bgq, syslog
        0u8..2,    // stream kind
    )
        .prop_map(|(frames, fmt_idx, kind)| {
            let format = [LogFormat::Bgp, LogFormat::Bgq, LogFormat::Syslog][fmt_idx];
            let kind = if kind == 0 {
                StreamKind::Ras
            } else {
                StreamKind::Job
            };
            let mut cas = Cassette::new(format, kind).unwrap();
            cas.frames = frames;
            cas
        })
}

proptest! {
    #[test]
    fn encode_decode_round_trips_exactly(cas in arb_cassette()) {
        let bytes = cas.encode();
        let back = Cassette::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &cas);
        // Replay is the exact concatenation of recorded chunks.
        let concat: Vec<u8> = cas.frames.iter().flat_map(|f| f.bytes.clone()).collect();
        prop_assert_eq!(back.replay_bytes(), concat);
        // And re-encoding the decoded cassette is byte-identical.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn recorder_matches_hand_built_cassette(cas in arb_cassette()) {
        let mut rec = Recorder::new(cas.format, cas.kind).unwrap();
        for f in &cas.frames {
            rec.push(f.delta_nanos, &f.bytes);
        }
        prop_assert_eq!(rec.len(), cas.frames.len());
        prop_assert_eq!(rec.finish(), cas);
    }

    #[test]
    fn truncation_always_yields_a_typed_error(cas in arb_cassette(), cut_back in 1usize..64) {
        let bytes = cas.encode();
        prop_assume!(!bytes.is_empty());
        let cut = bytes.len().saturating_sub(cut_back);
        let e = Cassette::decode(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                e,
                CassetteError::Truncated { .. } | CassetteError::HashMismatch { .. }
            ),
            "unexpected error {:?}",
            e
        );
    }

    #[test]
    fn single_byte_corruption_never_decodes_silently(
        cas in arb_cassette(),
        at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = cas.encode();
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] ^= flip;
        if at >= HEADER_LEN {
            // The frames section is hash-protected: any flip must be caught.
            prop_assert!(Cassette::decode(&bytes).is_err(), "frame corruption undetected");
        } else if let Ok(back) = Cassette::decode(&bytes) {
            // Header flips are field-validated; one may legitimately survive
            // (reserved padding, or a tag flipped to another valid tag) but
            // must never corrupt the frame data itself.
            prop_assert_eq!(back.frames, cas.frames);
        }
    }

    #[test]
    fn version_drift_refuses_to_load(cas in arb_cassette(), other in 0u32..1000) {
        prop_assume!(other != FORMAT_VERSION);
        let mut bytes = cas.encode();
        bytes[12..16].copy_from_slice(&other.to_le_bytes());
        prop_assert_eq!(
            Cassette::decode(&bytes).unwrap_err(),
            CassetteError::VersionMismatch { found: other, expected: FORMAT_VERSION }
        );
    }
}
