//! The Blue Gene/P adapter: the paper's nine-field pipe format.
//!
//! This is a pure delegation layer over `raslog`/`joblog` — the whole point
//! is that it adds *nothing*: records and diagnostics coming out of this
//! adapter are bit-identical to calling the parsers directly (the golden
//! tests and the PR 3 ingest proptests pin that). It exists so the parser
//! crates have exactly one caller outside their own tests, which is what
//! lets the `port-boundary` xtask rule machine-enforce the seam.
//!
//! This module is the **only** sanctioned call site of `raslog::parse` /
//! `joblog::parse` / the `ingest` entry points outside the parser crates
//! themselves.

use crate::{LineOutcome, LogFormat, SourceBatch, SourceDiagnostic, SourceError};
use joblog::JobRecord;
use raslog::RasRecord;

/// The BG/P pipe-format adapter (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct BgpAdapter;

impl crate::RasSource for BgpAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Bgp
    }

    fn decode_ras(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<RasRecord>, SourceError> {
        Ok(decode_ras(data, threads))
    }
}

impl crate::JobSource for BgpAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Bgp
    }

    fn decode_jobs(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<JobRecord>, SourceError> {
        Ok(decode_jobs(data, threads))
    }
}

/// Decode a whole BG/P RAS log (parallel, tolerant) — the exact records and
/// per-line errors of `raslog::ingest::parse_log_bytes`, as a batch.
pub fn decode_ras(data: &[u8], threads: usize) -> SourceBatch<RasRecord> {
    let (records, errors) = raslog::ingest::parse_log_bytes(data, threads);
    SourceBatch {
        records,
        diagnostics: errors.into_iter().map(SourceDiagnostic::from).collect(),
    }
}

/// Decode a whole BG/P job accounting log (parallel, tolerant).
pub fn decode_jobs(data: &[u8], threads: usize) -> SourceBatch<JobRecord> {
    let (records, errors) = joblog::ingest::parse_log_bytes(data, threads);
    SourceBatch {
        records,
        diagnostics: errors.into_iter().map(SourceDiagnostic::from).collect(),
    }
}

/// Classify one complete BG/P line (without its `\n`), exactly as the serve
/// daemon's original protocol classifier did: one trailing `\r` is tolerated,
/// blank lines and `#` comments are skipped, anything else must parse.
pub fn decode_ras_line(line: &[u8]) -> LineOutcome {
    let line = match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    };
    if line.is_empty() || line.first() == Some(&b'#') {
        return LineOutcome::Skip;
    }
    match raslog::parse_line_bytes(line) {
        Ok(r) => LineOutcome::Record(Box::new(r)),
        Err(e) => LineOutcome::Malformed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RasSource;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn line(recid: u64) -> String {
        let rec = RasRecord::new(
            recid,
            Timestamp::from_unix(1_236_000_000),
            "R12-M1-N07-J03".parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
        );
        raslog::format_record(&rec)
    }

    #[test]
    fn batch_is_bit_identical_to_direct_ingest() {
        let text = format!("{}\ngarbage\n{}\n", line(1), line(2));
        for threads in [1, 4] {
            let (direct, errs) = raslog::ingest::parse_log_bytes(text.as_bytes(), threads);
            let batch = decode_ras(text.as_bytes(), threads);
            assert_eq!(batch.records, direct);
            assert_eq!(batch.diagnostics.len(), errs.len());
            assert_eq!(batch.diagnostics[0].line, errs[0].line);
        }
    }

    #[test]
    fn line_decode_matches_protocol_semantics() {
        let good = line(7);
        assert!(matches!(
            decode_ras_line(good.as_bytes()),
            LineOutcome::Record(_)
        ));
        assert!(matches!(
            decode_ras_line(format!("{good}\r").as_bytes()),
            LineOutcome::Record(_)
        ));
        assert_eq!(decode_ras_line(b""), LineOutcome::Skip);
        assert_eq!(decode_ras_line(b"\r"), LineOutcome::Skip);
        assert_eq!(decode_ras_line(b"# comment"), LineOutcome::Skip);
        assert!(matches!(
            decode_ras_line(b"not|a|record"),
            LineOutcome::Malformed(_)
        ));
    }

    #[test]
    fn trait_object_round_trip() {
        let adapter = BgpAdapter;
        assert_eq!(RasSource::format(&adapter), LogFormat::Bgp);
        let text = format!("{}\n", line(3));
        let batch = RasSource::decode_ras(&adapter, text.as_bytes(), 1).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert!(batch.diagnostics.is_empty());
    }
}
