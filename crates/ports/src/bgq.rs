//! The BG/Q-style multi-file adapter (Sîrbu's five-log shape).
//!
//! The holistic BG/Q study consumes five logs — RAS, job, environment,
//! bootblock, network — where the BG/P pipeline has two. This adapter maps
//! the two logs our model represents onto `RasRecord`/`JobRecord` and
//! acknowledges the other three via [`crate::resolve_input`] notes (they
//! carry telemetry the co-analysis model does not yet consume).
//!
//! On disk the shape is a directory of comma-separated files:
//!
//! * `ras.bgq` — `recid,unix_secs,severity,errcode,location`, where
//!   `errcode` is a catalogue name and `location` the usual `Rxx-...`
//!   string. Unlike the BG/P pipe format, the event time is raw unix
//!   seconds and there is no free-text MESSAGE column at all.
//! * `jobs.bgq` — `jobid,exec,user,project,queue,start,end,partition,exit`
//!   with *numeric* exec/user/project ids (BG/Q accounting does not use the
//!   `app00003.exe` dress-up). `exit` follows the BG/P convention
//!   (`0`, `cancelled`, or a failure code); times must be monotone.
//!
//! Blank lines and `#` comments are skipped in both files; line numbering
//! matches the BG/P ingest conventions.

use crate::{LogFormat, SourceBatch, SourceDiagnostic, SourceError};
use bgp_model::{Partition, Timestamp};
use joblog::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
use raslog::{Catalog, RasRecord};

/// The BG/Q multi-file adapter (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct BgqAdapter;

impl crate::RasSource for BgqAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Bgq
    }

    fn decode_ras(
        &self,
        data: &[u8],
        _threads: usize,
    ) -> Result<SourceBatch<RasRecord>, SourceError> {
        Ok(decode_ras(data))
    }
}

impl crate::JobSource for BgqAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Bgq
    }

    fn decode_jobs(
        &self,
        data: &[u8],
        _threads: usize,
    ) -> Result<SourceBatch<JobRecord>, SourceError> {
        Ok(decode_jobs(data))
    }
}

/// Walk `data` line by line with BG/P ingest conventions (count every line,
/// trim trailing `\r` runs, skip blanks and `#` comments), calling `parse`
/// on the rest.
fn for_each_line<R>(
    data: &[u8],
    mut parse: impl FnMut(&[u8], u64) -> Result<R, String>,
) -> SourceBatch<R> {
    let mut out = SourceBatch::default();
    let mut line_no = 0u64;
    let mut rest = data;
    while !rest.is_empty() {
        let line = match bgp_model::bytes::find_byte(b'\n', rest) {
            Some(i) => {
                let line = &rest[..i];
                rest = &rest[i + 1..];
                line
            }
            None => {
                let line = rest;
                rest = &rest[rest.len()..];
                line
            }
        };
        line_no += 1;
        let mut line = line;
        while let [head @ .., b'\r'] = line {
            line = head;
        }
        if line.is_empty() || line.first() == Some(&b'#') {
            continue;
        }
        match parse(line, line_no) {
            Ok(r) => out.records.push(r),
            Err(message) => out.diagnostics.push(SourceDiagnostic {
                line: line_no,
                message,
            }),
        }
    }
    out
}

fn fields_of(line: &[u8], n: usize) -> Result<Vec<&str>, String> {
    let text = std::str::from_utf8(line).map_err(|_| "line is not valid UTF-8".to_owned())?;
    let fields: Vec<&str> = text.split(',').map(str::trim).collect();
    if fields.len() != n {
        return Err(format!("expected {n} fields, found {}", fields.len()));
    }
    Ok(fields)
}

/// Parse one `ras.bgq` line: `recid,unix_secs,severity,errcode,location`.
pub fn parse_ras_line(line: &[u8]) -> Result<RasRecord, String> {
    let f = fields_of(line, 5)?;
    let recid: u64 = f[0].parse().map_err(|_| format!("bad recid {:?}", f[0]))?;
    let secs: i64 = f[1]
        .parse()
        .map_err(|_| format!("bad unix time {:?}", f[1]))?;
    let severity = f[2]
        .parse()
        .map_err(|_| format!("bad severity {:?}", f[2]))?;
    let errcode = Catalog::standard()
        .lookup(f[3])
        .ok_or_else(|| format!("unknown errcode {:?}", f[3]))?;
    let location = f[4]
        .parse()
        .map_err(|_| format!("bad location {:?}", f[4]))?;
    Ok(RasRecord {
        recid,
        event_time: Timestamp::from_unix(secs),
        location,
        errcode,
        severity,
    })
}

/// Parse one `jobs.bgq` line:
/// `jobid,exec,user,project,queue,start,end,partition,exit`.
pub fn parse_job_line(line: &[u8]) -> Result<JobRecord, String> {
    let f = fields_of(line, 9)?;
    let int = |what: &str, v: &str| -> Result<u32, String> {
        v.parse().map_err(|_| format!("bad {what} {v:?}"))
    };
    let time = |what: &str, v: &str| -> Result<Timestamp, String> {
        // Accept a fractional tail like the BG/P accounting parser.
        v.split('.')
            .next()
            .and_then(|whole| whole.parse::<i64>().ok())
            .map(Timestamp::from_unix)
            .ok_or_else(|| format!("bad {what} {v:?}"))
    };
    let job_id: u64 = f[0].parse().map_err(|_| format!("bad jobid {:?}", f[0]))?;
    let exec = ExecId(int("exec", f[1])?);
    let user = UserId(int("user", f[2])?);
    let project = ProjectId(int("project", f[3])?);
    let queue_time = time("queue time", f[4])?;
    let start_time = time("start time", f[5])?;
    let end_time = time("end time", f[6])?;
    if end_time < start_time || start_time < queue_time {
        return Err(format!(
            "non-monotone times: queue {} start {} end {}",
            queue_time.as_unix(),
            start_time.as_unix(),
            end_time.as_unix()
        ));
    }
    let partition: Partition = f[7]
        .parse()
        .map_err(|_| format!("bad partition {:?}", f[7]))?;
    let exit = match f[8] {
        "cancelled" => ExitStatus::Cancelled,
        "0" => ExitStatus::Completed,
        other => ExitStatus::Failed(other.parse().map_err(|_| format!("bad exit {other:?}"))?),
    };
    Ok(JobRecord {
        job_id,
        exec,
        user,
        project,
        queue_time,
        start_time,
        end_time,
        partition,
        exit,
    })
}

/// Decode a whole `ras.bgq` file.
pub fn decode_ras(data: &[u8]) -> SourceBatch<RasRecord> {
    for_each_line(data, |line, _| parse_ras_line(line))
}

/// Decode a whole `jobs.bgq` file.
pub fn decode_jobs(data: &[u8]) -> SourceBatch<JobRecord> {
    for_each_line(data, |line, _| parse_job_line(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::Severity;

    #[test]
    fn ras_lines_round_trip_onto_the_model() {
        let line = b"7,1236000000,FATAL,_bgp_err_kernel_panic,R12-M1-N07-J03";
        let r = parse_ras_line(line).unwrap();
        assert_eq!(r.recid, 7);
        assert_eq!(r.event_time, Timestamp::from_unix(1_236_000_000));
        assert_eq!(r.severity, Severity::Fatal);
        assert_eq!(r.errcode_name(), "_bgp_err_kernel_panic");
    }

    #[test]
    fn job_lines_round_trip_onto_the_model() {
        let line = b"8935,3,1,9,100,200.5,300,R10-R11,0";
        let j = parse_job_line(line).unwrap();
        assert_eq!(j.job_id, 8935);
        assert_eq!(j.exec, ExecId(3));
        assert_eq!(j.start_time, Timestamp::from_unix(200));
        assert_eq!(j.exit, ExitStatus::Completed);
        let j = parse_job_line(b"1,1,1,1,100,200,300,R10-R11,cancelled").unwrap();
        assert_eq!(j.exit, ExitStatus::Cancelled);
        let j = parse_job_line(b"1,1,1,1,100,200,300,R10-R11,139").unwrap();
        assert_eq!(j.exit, ExitStatus::Failed(139));
    }

    #[test]
    fn malformed_lines_carry_reasons() {
        for (line, needle) in [
            (&b"1,2,3"[..], "fields"),
            (b"x,1236000000,FATAL,_bgp_err_kernel_panic,R00-M0", "recid"),
            (b"1,now,FATAL,_bgp_err_kernel_panic,R00-M0", "unix time"),
            (b"1,0,SUPERFATAL,_bgp_err_kernel_panic,R00-M0", "severity"),
            (b"1,0,FATAL,mystery,R00-M0", "errcode"),
            (b"1,0,FATAL,_bgp_err_kernel_panic,Z9", "location"),
        ] {
            let e = parse_ras_line(line).unwrap_err();
            assert!(e.contains(needle), "{line:?} gave {e:?}");
        }
        for (line, needle) in [
            (&b"1,1,1,1,100,200,150,R10-R11,0"[..], "non-monotone"),
            (b"1,1,1,1,300,200,400,R10-R11,0", "non-monotone"),
            (b"1,x,1,1,100,200,300,R10-R11,0", "exec"),
            (b"1,1,1,1,100,200,300,R10-R11,zero", "exit"),
        ] {
            let e = parse_job_line(line).unwrap_err();
            assert!(e.contains(needle), "{line:?} gave {e:?}");
        }
    }

    #[test]
    fn batch_decode_skips_comments_and_numbers_diagnostics() {
        let text = b"# bgq ras\n7,0,FATAL,_bgp_err_kernel_panic,R00-M0\n\ngarbage\n";
        let batch = decode_ras(text);
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.diagnostics.len(), 1);
        assert_eq!(batch.diagnostics[0].line, 4);
        let text = b"1,1,1,1,100,200,300,R10-R11,0\nbad\n";
        let batch = decode_jobs(text);
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.diagnostics[0].line, 2);
    }
}
