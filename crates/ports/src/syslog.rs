//! The generic syslog adapter: RFC 3164 lines as RAS records.
//!
//! A classic BSD syslog line looks like
//!
//! ```text
//! <13>Mar  1 12:30:00 ionode7 sshd[812]: Accepted publickey for root
//! ```
//!
//! and maps onto the RAS model like so:
//!
//! * the `<PRI>` priority (`facility * 8 + severity`) splits into a
//!   **facility**, mapped to the synthetic `syslog_<facility>` errcode
//!   namespace appended to the standard catalogue, and a **severity**,
//!   collapsed onto the CMCS ladder (emergency/alert/critical → FATAL,
//!   error → ERROR, warning → WARNING, notice/info → INFO, debug → DEBUG);
//!   a line without `<PRI>` defaults to priority 13 (`user.notice`), as the
//!   RFC prescribes;
//! * the timestamp (`Mmm dd hh:mm:ss`, no year) is completed with a
//!   configurable [`SyslogConfig::assume_year`] (default 2009, the paper's
//!   observation window);
//! * the hostname is hashed (FNV-1a 64) onto one of the 80 Intrepid
//!   midplanes, so spatial analyses see a stable, deterministic location per
//!   host;
//! * the record id is the 1-based input line number (batch) or a running
//!   counter (streaming) — syslog has no native record id.
//!
//! The tag and message text are not retained, mirroring how the BG/P model
//! drops the free-text MESSAGE column.

use crate::{LineOutcome, LogFormat, SourceBatch, SourceDiagnostic, SourceError};
use bgp_model::{Location, MidplaneId, Timestamp};
use raslog::{Catalog, ErrCode, RasRecord, Severity};
use std::sync::atomic::{AtomicU64, Ordering};

/// How to interpret fields syslog leaves ambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyslogConfig {
    /// The year to complete RFC 3164 timestamps with (the format has none).
    pub assume_year: i32,
}

impl Default for SyslogConfig {
    fn default() -> SyslogConfig {
        SyslogConfig { assume_year: 2009 }
    }
}

/// The facility names of RFC 3164, in priority-code order (0–23); facility
/// `n` maps to errcode `syslog_<FACILITY_NAMES[n]>`.
pub const FACILITY_NAMES: [&str; 24] = [
    "kern", "user", "mail", "daemon", "auth", "syslog", "lpr", "news", "uucp", "cron", "authpriv",
    "ftp", "ntp", "audit", "alert", "clock", "local0", "local1", "local2", "local3", "local4",
    "local5", "local6", "local7",
];

/// The priority assumed for lines without a `<PRI>` part (RFC 3164 §4.3.3:
/// `user.notice`).
pub const DEFAULT_PRIORITY: u8 = 13;

/// Collapse a syslog severity (0–7) onto the CMCS ladder.
pub fn map_severity(syslog_severity: u8) -> Severity {
    match syslog_severity {
        0..=2 => Severity::Fatal, // emergency, alert, critical
        3 => Severity::Error,     // error
        4 => Severity::Warning,   // warning
        5 | 6 => Severity::Info,  // notice, info
        _ => Severity::Debug,     // debug
    }
}

/// The synthetic errcode for a facility, or `None` if the running catalogue
/// lacks the `syslog_*` namespace (a build inconsistency, reported as a
/// malformed line rather than a panic).
pub fn facility_errcode(facility: u8) -> Option<ErrCode> {
    let name = FACILITY_NAMES.get(usize::from(facility))?;
    Catalog::standard().lookup(&format!("syslog_{name}"))
}

/// Deterministically place a host on one of the 80 Intrepid midplanes.
pub fn host_location(host: &str) -> Location {
    let idx = bgp_model::bytes::fnv1a_64(host.as_bytes()) % 80;
    Location::Midplane(MidplaneId::from_index_wrapping(idx as u8))
}

fn month_number(token: &str) -> Option<u32> {
    let months = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    months
        .iter()
        .position(|m| *m == token)
        .map(|i| i as u32 + 1)
}

/// Parse one RFC 3164 line into a RAS record with the given record id.
pub fn parse_syslog_line(line: &[u8], recid: u64, cfg: &SyslogConfig) -> Result<RasRecord, String> {
    let text = std::str::from_utf8(line).map_err(|_| "line is not valid UTF-8".to_owned())?;
    // <PRI>: optional, at most 3 digits, 0..=191.
    let (priority, rest) = match text.strip_prefix('<') {
        Some(after) => {
            let (digits, rest) = after
                .split_once('>')
                .ok_or_else(|| "unterminated <PRI>".to_owned())?;
            let pri: u8 = digits
                .parse()
                .ok()
                .filter(|p| *p <= 191)
                .ok_or_else(|| format!("bad priority {digits:?}"))?;
            (pri, rest)
        }
        None => (DEFAULT_PRIORITY, text),
    };
    let facility = priority / 8;
    let severity = map_severity(priority % 8);
    // TIMESTAMP: "Mmm dd hh:mm:ss" (day may be space- or zero-padded).
    let mut tokens = rest.split_whitespace();
    let month = tokens
        .next()
        .and_then(month_number)
        .ok_or_else(|| "bad or missing month".to_owned())?;
    let day: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .filter(|d| (1..=31).contains(d))
        .ok_or_else(|| "bad or missing day".to_owned())?;
    let time = tokens.next().ok_or_else(|| "missing time".to_owned())?;
    let mut hms = time.split(':');
    let mut unit = |what: &str, max: u32| -> Result<u32, String> {
        hms.next()
            .and_then(|t| t.parse().ok())
            .filter(|v| *v < max)
            .ok_or_else(|| format!("bad {what} in time {time:?}"))
    };
    let (hh, mm, ss) = (unit("hour", 24)?, unit("minute", 60)?, unit("second", 60)?);
    let host = tokens.next().ok_or_else(|| "missing hostname".to_owned())?;
    let errcode =
        facility_errcode(facility).ok_or_else(|| "catalogue lacks syslog namespace".to_owned())?;
    Ok(RasRecord {
        recid,
        event_time: Timestamp::from_civil(cfg.assume_year, month, day, hh, mm, ss),
        location: host_location(host),
        errcode,
        severity,
    })
}

/// The syslog batch adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyslogAdapter {
    /// Ambiguity settings shared by every line.
    pub config: SyslogConfig,
}

impl crate::RasSource for SyslogAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Syslog
    }

    fn decode_ras(
        &self,
        data: &[u8],
        _threads: usize,
    ) -> Result<SourceBatch<RasRecord>, SourceError> {
        Ok(decode(data, &self.config))
    }
}

/// Decode a whole syslog file: one record per parseable line, one diagnostic
/// per malformed line. Line numbering matches the BG/P ingest conventions
/// (every line counts, blank lines and `#` comments are skipped, trailing
/// `\r` runs are trimmed).
pub fn decode(data: &[u8], cfg: &SyslogConfig) -> SourceBatch<RasRecord> {
    let mut out = SourceBatch::default();
    let mut line_no = 0u64;
    let mut rest = data;
    while !rest.is_empty() {
        let line = match bgp_model::bytes::find_byte(b'\n', rest) {
            Some(i) => {
                let line = &rest[..i];
                rest = &rest[i + 1..];
                line
            }
            None => {
                let line = rest;
                rest = &rest[rest.len()..];
                line
            }
        };
        line_no += 1;
        let mut line = line;
        while let [head @ .., b'\r'] = line {
            line = head;
        }
        if line.is_empty() || line.first() == Some(&b'#') {
            continue;
        }
        match parse_syslog_line(line, line_no, cfg) {
            Ok(r) => out.records.push(r),
            Err(message) => out.diagnostics.push(SourceDiagnostic {
                line: line_no,
                message,
            }),
        }
    }
    out
}

/// Streaming (line-at-a-time) syslog decoder for the serve daemon; record
/// ids come from an internal counter, so decoding the same lines in the same
/// order always yields the same records.
#[derive(Debug, Default)]
pub struct SyslogLineDecoder {
    /// Ambiguity settings shared by every line.
    pub config: SyslogConfig,
    next_recid: AtomicU64,
}

impl SyslogLineDecoder {
    /// Classify one complete line (without its `\n`; trailing `\r` tolerated,
    /// blank lines and `#` comments skipped, mirroring the BG/P classifier).
    pub fn decode_line(&self, line: &[u8]) -> LineOutcome {
        let line = match line.split_last() {
            Some((b'\r', rest)) => rest,
            _ => line,
        };
        if line.is_empty() || line.first() == Some(&b'#') {
            return LineOutcome::Skip;
        }
        let recid = self.next_recid.fetch_add(1, Ordering::Relaxed) + 1;
        match parse_syslog_line(line, recid, &self.config) {
            Ok(r) => LineOutcome::Record(Box::new(r)),
            Err(message) => LineOutcome::Malformed(message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_classic_line() {
        let cfg = SyslogConfig::default();
        let r =
            parse_syslog_line(b"<13>Mar  1 12:30:00 ionode7 sshd[812]: hello", 5, &cfg).unwrap();
        assert_eq!(r.recid, 5);
        assert_eq!(r.severity, Severity::Info);
        assert_eq!(r.errcode, facility_errcode(1).unwrap()); // user
        assert_eq!(r.event_time, Timestamp::from_civil(2009, 3, 1, 12, 30, 0));
        assert_eq!(r.location, host_location("ionode7"));
    }

    #[test]
    fn missing_pri_defaults_to_user_notice() {
        let cfg = SyslogConfig::default();
        let r = parse_syslog_line(b"Mar  1 12:30:00 host msg", 1, &cfg).unwrap();
        assert_eq!(r.errcode, facility_errcode(1).unwrap());
        assert_eq!(r.severity, Severity::Info);
    }

    #[test]
    fn severity_ladder_collapses_as_documented() {
        assert_eq!(map_severity(0), Severity::Fatal);
        assert_eq!(map_severity(2), Severity::Fatal);
        assert_eq!(map_severity(3), Severity::Error);
        assert_eq!(map_severity(4), Severity::Warning);
        assert_eq!(map_severity(5), Severity::Info);
        assert_eq!(map_severity(6), Severity::Info);
        assert_eq!(map_severity(7), Severity::Debug);
    }

    #[test]
    fn kernel_critical_maps_to_fatal_kern_facility() {
        let cfg = SyslogConfig::default();
        // <2> = facility 0 (kern), severity 2 (critical).
        let r = parse_syslog_line(b"<2>Oct 11 22:14:15 node5 kernel: oops", 1, &cfg).unwrap();
        assert_eq!(r.severity, Severity::Fatal);
        let info = Catalog::standard().info(r.errcode);
        assert_eq!(info.name, "syslog_kern");
    }

    #[test]
    fn every_facility_resolves_in_the_catalogue() {
        for f in 0..24u8 {
            let code = facility_errcode(f).unwrap_or_else(|| panic!("facility {f} missing"));
            let info = Catalog::standard().info(code);
            assert!(info.name.starts_with("syslog_"), "{}", info.name);
            assert_ne!(info.severity, Severity::Fatal, "defaults stay non-fatal");
        }
        assert_eq!(facility_errcode(24), None);
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        let cfg = SyslogConfig::default();
        for (line, needle) in [
            (&b"<999>Mar  1 12:30:00 h m"[..], "priority"),
            (b"<13 Mar  1 12:30:00 h m", "unterminated"),
            (b"<13>Zzz  1 12:30:00 h m", "month"),
            (b"<13>Mar 99 12:30:00 h m", "day"),
            (b"<13>Mar  1 25:30:00 h m", "hour"),
            (b"<13>Mar  1 12:61:00 h m", "minute"),
            (b"<13>Mar  1", "time"),
            (b"<13>Mar  1 12:30:00", "hostname"),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let e = parse_syslog_line(line, 1, &cfg).unwrap_err();
            assert!(e.contains(needle), "{line:?} gave {e:?}");
        }
    }

    #[test]
    fn batch_decode_numbers_lines_like_bgp_ingest() {
        let text = b"<13>Mar  1 12:30:00 h a\n\n# comment\ngarbage here\n<13>Mar  1 12:30:01 h b\n";
        let batch = decode(text, &SyslogConfig::default());
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.records[0].recid, 1);
        assert_eq!(batch.records[1].recid, 5);
        assert_eq!(batch.diagnostics.len(), 1);
        assert_eq!(batch.diagnostics[0].line, 4);
    }

    #[test]
    fn streaming_decoder_is_deterministic() {
        let run = || {
            let d = SyslogLineDecoder::default();
            let mut ids = Vec::new();
            for line in [
                &b"<13>Mar  1 12:30:00 h a"[..],
                b"# skip",
                b"<13>Mar  1 12:30:01 h b",
            ] {
                if let LineOutcome::Record(r) = d.decode_line(line) {
                    ids.push(r.recid);
                }
            }
            ids
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 2]);
    }

    #[test]
    fn assumed_year_is_configurable() {
        let cfg = SyslogConfig { assume_year: 1999 };
        let r = parse_syslog_line(b"<13>Jan  2 03:04:05 h m", 1, &cfg).unwrap();
        assert_eq!(r.event_time, Timestamp::from_civil(1999, 1, 2, 3, 4, 5));
    }

    #[test]
    fn host_location_is_stable_and_in_range() {
        let a = host_location("ionode7");
        assert_eq!(a, host_location("ionode7"));
        for host in ["a", "b", "login1", "很长的主机名"] {
            match host_location(host) {
                Location::Midplane(mp) => assert!(mp.index() < 80),
                other => panic!("expected midplane, got {other:?}"),
            }
        }
    }
}
