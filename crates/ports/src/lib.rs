//! # `bgp-ports` — ports & adapters for log ingestion
//!
//! The analysis engine (`coanalysis`, `bgp-serve`) consumes typed
//! [`RasRecord`]/[`JobRecord`] streams; *where those records come from* is a
//! port. This crate defines the ports — [`RasSource`] / [`JobSource`] for
//! whole-buffer batch decoding, [`LineDecoder`] for the daemon's line-at-a-
//! time ingest — and four adapters behind them:
//!
//! | format      | adapter module | shape |
//! |-------------|----------------|-------|
//! | `bgp`       | [`bgp`]        | the nine-field pipe format of the paper (delegates to `raslog`/`joblog`; bit-identical) |
//! | `bgq`       | [`bgq`]        | BG/Q-style multi-file schema (Sîrbu's five-log shape, comma-separated) |
//! | `syslog`    | [`syslog`]     | RFC 3164 lines mapped into the severity/errcode catalogue (`syslog_*` namespace) |
//! | `cassette`  | [`cassette`]   | `.bgpcas` recording of another source's byte stream + timing, replayed deterministically |
//!
//! The BG/P adapter is the **only** module allowed to call the
//! `raslog`/`joblog` parsers directly — `cargo xtask lint` enforces that
//! boundary (`port-boundary` rule), so every other consumer in the workspace
//! goes through a port and new formats slot in without touching the engine.
//!
//! Decoding is deliberately split from I/O: adapters consume byte slices and
//! return [`SourceBatch`] values (records plus per-line diagnostics), which
//! keeps every adapter — including cassette replay — inside the determinism
//! lint scope. The only filesystem access here is [`resolve_input`], which
//! maps a user-supplied path to the concrete file(s) a format reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod bgq;
pub mod cassette;
pub mod syslog;

use joblog::JobRecord;
use raslog::RasRecord;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// The log formats an input path can be read as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogFormat {
    /// Blue Gene/P nine-field pipe format (the default; the paper's logs).
    #[default]
    Bgp,
    /// BG/Q-style multi-file schema (`ras.bgq` / `jobs.bgq` in a directory).
    Bgq,
    /// RFC 3164 syslog lines.
    Syslog,
    /// A `.bgpcas` cassette recorded from one of the other formats.
    Cassette,
}

/// The formats accepted by `--format`, comma-separated (for error messages).
pub const SUPPORTED_FORMATS: &str = "bgp, bgq, syslog, cassette";

impl LogFormat {
    /// Every format, in `--format` listing order.
    pub const ALL: [LogFormat; 4] = [
        LogFormat::Bgp,
        LogFormat::Bgq,
        LogFormat::Syslog,
        LogFormat::Cassette,
    ];

    /// The command-line token for this format.
    pub fn as_str(self) -> &'static str {
        match self {
            LogFormat::Bgp => "bgp",
            LogFormat::Bgq => "bgq",
            LogFormat::Syslog => "syslog",
            LogFormat::Cassette => "cassette",
        }
    }
}

impl fmt::Display for LogFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for LogFormat {
    type Err = UnknownFormat;

    fn from_str(s: &str) -> Result<LogFormat, UnknownFormat> {
        match s {
            "bgp" => Ok(LogFormat::Bgp),
            "bgq" => Ok(LogFormat::Bgq),
            "syslog" => Ok(LogFormat::Syslog),
            "cassette" => Ok(LogFormat::Cassette),
            other => Err(UnknownFormat(other.to_owned())),
        }
    }
}

/// Error for an unrecognized `--format` token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFormat(
    /// The offending token.
    pub String,
);

impl fmt::Display for UnknownFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log format {:?} (supported formats: {SUPPORTED_FORMATS})",
            self.0
        )
    }
}

impl std::error::Error for UnknownFormat {}

/// One malformed line (or other per-source note) reported while decoding.
///
/// The analysis never aborts on a dirty line — real logs are dirty — so every
/// source reports what it skipped alongside what it parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDiagnostic {
    /// 1-based line number in the source text (0 when not line-addressable).
    pub line: u64,
    /// Human-readable description of what was skipped and why.
    pub message: String,
}

impl fmt::Display for SourceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl From<raslog::RasParseError> for SourceDiagnostic {
    fn from(e: raslog::RasParseError) -> SourceDiagnostic {
        let full = e.to_string();
        let prefix = format!("line {}: ", e.line);
        let message = full.strip_prefix(&prefix).unwrap_or(&full).to_owned();
        SourceDiagnostic {
            line: e.line,
            message,
        }
    }
}

impl From<joblog::JobParseError> for SourceDiagnostic {
    fn from(e: joblog::JobParseError) -> SourceDiagnostic {
        SourceDiagnostic {
            line: e.line,
            message: e.message,
        }
    }
}

/// What a source produced from one input: records plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceBatch<R> {
    /// Successfully decoded records, in input order.
    pub records: Vec<R>,
    /// Lines (or auxiliary inputs) that were skipped, with why.
    pub diagnostics: Vec<SourceDiagnostic>,
}

impl<R> Default for SourceBatch<R> {
    fn default() -> SourceBatch<R> {
        SourceBatch {
            records: Vec::new(),
            diagnostics: Vec::new(),
        }
    }
}

/// A source-level failure: the input as a whole is unusable (as opposed to a
/// [`SourceDiagnostic`], which skips one line and carries on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A cassette container failed to decode.
    Cassette(cassette::CassetteError),
    /// The format has no job-log schema (e.g. syslog carries no accounting).
    NoJobSchema(LogFormat),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Cassette(e) => write!(f, "cassette: {e}"),
            SourceError::NoJobSchema(fmt_) => {
                write!(f, "format {fmt_} has no job-log schema")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<cassette::CassetteError> for SourceError {
    fn from(e: cassette::CassetteError) -> SourceError {
        SourceError::Cassette(e)
    }
}

/// Port: anything that decodes an in-memory byte stream into RAS records.
///
/// `threads` is the parallelism budget (`0`/`1` mean inline); adapters whose
/// decode is not parallelized may ignore it.
pub trait RasSource {
    /// Which format this source decodes.
    fn format(&self) -> LogFormat;

    /// Decode a whole in-memory byte stream.
    fn decode_ras(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<RasRecord>, SourceError>;
}

/// Port: anything that decodes an in-memory byte stream into job records.
pub trait JobSource {
    /// Which format this source decodes.
    fn format(&self) -> LogFormat;

    /// Decode a whole in-memory byte stream.
    fn decode_jobs(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<JobRecord>, SourceError>;
}

/// The RAS source adapter for `format`.
pub fn ras_source(format: LogFormat) -> Box<dyn RasSource + Send + Sync> {
    match format {
        LogFormat::Bgp => Box::new(bgp::BgpAdapter),
        LogFormat::Bgq => Box::new(bgq::BgqAdapter),
        LogFormat::Syslog => Box::new(syslog::SyslogAdapter::default()),
        LogFormat::Cassette => Box::new(cassette::CassetteAdapter),
    }
}

/// The job source adapter for `format`, or [`SourceError::NoJobSchema`] for
/// formats that carry no accounting data.
pub fn job_source(format: LogFormat) -> Result<Box<dyn JobSource + Send + Sync>, SourceError> {
    match format {
        LogFormat::Bgp => Ok(Box::new(bgp::BgpAdapter)),
        LogFormat::Bgq => Ok(Box::new(bgq::BgqAdapter)),
        LogFormat::Syslog => Err(SourceError::NoJobSchema(LogFormat::Syslog)),
        LogFormat::Cassette => Ok(Box::new(cassette::CassetteAdapter)),
    }
}

/// The concrete file(s) a format reads for a user-supplied input path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedInput {
    /// The RAS log file to read.
    pub ras: PathBuf,
    /// The job log file, when the format bundles one (BG/Q directories).
    pub jobs: Option<PathBuf>,
    /// Notes about auxiliary inputs that were seen but not mapped.
    pub notes: Vec<SourceDiagnostic>,
}

/// Map a user-supplied path to the file(s) `format` actually reads.
///
/// Only the BG/Q adapter is multi-file: given a *directory*, it reads
/// `ras.bgq` and (when present) `jobs.bgq`, and acknowledges Sîrbu's other
/// three logs (`env.bgq`, `bootblock.bgq`, `network.bgq`) with a note each —
/// they carry environmental/boot/network telemetry the co-analysis model
/// does not yet consume. Every other format (and a BG/Q *file* path) reads
/// the path as-is.
pub fn resolve_input(format: LogFormat, path: &Path) -> ResolvedInput {
    if format != LogFormat::Bgq || !path.is_dir() {
        return ResolvedInput {
            ras: path.to_owned(),
            jobs: None,
            notes: Vec::new(),
        };
    }
    let mut notes = Vec::new();
    for aux in ["env.bgq", "bootblock.bgq", "network.bgq"] {
        if path.join(aux).is_file() {
            notes.push(SourceDiagnostic {
                line: 0,
                message: format!("{aux}: present but not mapped (no model for this log yet)"),
            });
        }
    }
    let jobs = path.join("jobs.bgq");
    ResolvedInput {
        ras: path.join("ras.bgq"),
        jobs: jobs.is_file().then_some(jobs),
        notes,
    }
}

/// What one complete ingest line turned out to be (the line-level port used
/// by the streaming daemon).
#[derive(Debug, Clone, PartialEq)]
pub enum LineOutcome {
    /// A decoded record.
    Record(Box<RasRecord>),
    /// A blank line or `#` comment — ignored, not an error.
    Skip,
    /// An undecodable line, with the decoder's description.
    Malformed(String),
}

/// Line-at-a-time RAS decoder for streaming ingest.
///
/// Only line-oriented formats can be streamed: `bgp` and `syslog`. The BG/Q
/// adapter is multi-file and the cassette adapter replays *chunks* (it wraps
/// one of these decoders upstream), so neither appears here.
#[derive(Debug)]
pub enum LineDecoder {
    /// Nine-field BG/P pipe lines (byte-identical to `serve`'s original
    /// classifier).
    Bgp,
    /// RFC 3164 syslog lines; assigns record ids from an internal counter.
    Syslog(syslog::SyslogLineDecoder),
}

impl LineDecoder {
    /// The streaming decoder for `format`, or `None` for formats that cannot
    /// be decoded line-by-line (`bgq`, `cassette`).
    pub fn for_format(format: LogFormat) -> Option<LineDecoder> {
        match format {
            LogFormat::Bgp => Some(LineDecoder::Bgp),
            LogFormat::Syslog => Some(LineDecoder::Syslog(syslog::SyslogLineDecoder::default())),
            LogFormat::Bgq | LogFormat::Cassette => None,
        }
    }

    /// Classify one complete line (without its `\n` terminator; a trailing
    /// `\r` is tolerated).
    pub fn decode_line(&self, line: &[u8]) -> LineOutcome {
        match self {
            LineDecoder::Bgp => bgp::decode_ras_line(line),
            LineDecoder::Syslog(d) => d.decode_line(line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_tokens_round_trip() {
        for f in LogFormat::ALL {
            assert_eq!(f.as_str().parse::<LogFormat>().unwrap(), f);
            assert_eq!(f.to_string(), f.as_str());
            assert!(SUPPORTED_FORMATS.contains(f.as_str()));
        }
        let e = "xml".parse::<LogFormat>().unwrap_err();
        assert!(e.to_string().contains("bgp, bgq, syslog, cassette"));
        assert_eq!(LogFormat::default(), LogFormat::Bgp);
    }

    #[test]
    fn job_source_matrix() {
        assert!(job_source(LogFormat::Bgp).is_ok());
        assert!(job_source(LogFormat::Bgq).is_ok());
        assert!(job_source(LogFormat::Cassette).is_ok());
        assert!(matches!(
            job_source(LogFormat::Syslog),
            Err(SourceError::NoJobSchema(LogFormat::Syslog))
        ));
    }

    #[test]
    fn line_decoder_matrix() {
        assert!(LineDecoder::for_format(LogFormat::Bgp).is_some());
        assert!(LineDecoder::for_format(LogFormat::Syslog).is_some());
        assert!(LineDecoder::for_format(LogFormat::Bgq).is_none());
        assert!(LineDecoder::for_format(LogFormat::Cassette).is_none());
    }

    #[test]
    fn resolve_input_passes_plain_paths_through() {
        let r = resolve_input(LogFormat::Bgp, Path::new("/tmp/ras.log"));
        assert_eq!(r.ras, Path::new("/tmp/ras.log"));
        assert!(r.jobs.is_none());
        assert!(r.notes.is_empty());
    }

    #[test]
    fn resolve_input_maps_bgq_directories() {
        let dir = std::env::temp_dir().join(format!("ports-resolve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ras.bgq"), b"").unwrap();
        std::fs::write(dir.join("jobs.bgq"), b"").unwrap();
        std::fs::write(dir.join("env.bgq"), b"").unwrap();
        let r = resolve_input(LogFormat::Bgq, &dir);
        assert_eq!(r.ras, dir.join("ras.bgq"));
        assert_eq!(r.jobs, Some(dir.join("jobs.bgq")));
        assert_eq!(r.notes.len(), 1);
        assert!(r.notes[0].message.contains("env.bgq"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diagnostics_render_with_line_numbers() {
        let d = SourceDiagnostic {
            line: 7,
            message: "bad".into(),
        };
        assert_eq!(d.to_string(), "line 7: bad");
    }

    #[test]
    fn parse_error_conversion_strips_line_prefix() {
        let e = raslog::parse_line("a|b|c").unwrap_err();
        let d = SourceDiagnostic::from(e.clone());
        assert_eq!(d.line, e.line);
        assert!(!d.message.starts_with("line"));
        assert!(d.message.contains("9 fields"));
    }
}
