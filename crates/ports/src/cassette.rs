//! The `.bgpcas` cassette: record a source's byte stream + timing, replay it
//! deterministically.
//!
//! A cassette captures what a live source actually delivered — the exact
//! byte chunks, in order, with inter-chunk timing — so that a TCP ingest
//! session, a tailed file, or any other nondeterministic transport can be
//! replayed bit-for-bit in tests and benchmarks. Frames preserve *chunk
//! boundaries*, which is what makes framer edge cases (CRLF split across
//! reads, resync mid-line) reproducible.
//!
//! ## File layout (little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"BGPCAS\0\0"` |
//! | 8  | 1 | inner format tag (1 = bgp, 2 = bgq, 3 = syslog) |
//! | 9  | 1 | stream kind (1 = RAS, 2 = job) |
//! | 10 | 2 | reserved, zero |
//! | 12 | 4 | [`FORMAT_VERSION`] (`u32`) |
//! | 16 | 8 | frame count (`u64`) |
//! | 24 | 8 | content hash of the frames section |
//!
//! Each frame is `delta_nanos: u64 | len: u32 | len bytes`. `delta_nanos` is
//! the gap since the *previous* frame (first frame: since recording start);
//! the pure codec never reads a clock — recording timing is supplied by the
//! caller (`bgp-serve`'s recorder holds the `Instant`), which keeps this
//! whole module inside the determinism lint scope.
//!
//! Any mismatch — magic, version, kind, hash, truncation, trailing garbage —
//! yields a typed [`CassetteError`], mirroring the `.bgpsnap` contract. The
//! `snapshot-version` xtask rule pins [`LAYOUT_FINGERPRINT`] to the
//! [`CassetteFrame`] field list so layout drift cannot ship silently.

use crate::{LogFormat, SourceBatch, SourceError};
use bgp_model::bytes::content_hash_64;
use joblog::JobRecord;
use raslog::RasRecord;
use std::fmt;

/// Magic bytes opening every cassette file.
pub const MAGIC: [u8; 8] = *b"BGPCAS\0\0";

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 32;

/// On-disk format version; readers refuse other versions. Bump together with
/// [`LAYOUT_FINGERPRINT`] whenever [`CassetteFrame`] changes — the
/// `snapshot-version` xtask lint ties them.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64 fingerprint of the [`CassetteFrame`] field list; this
/// constant and [`FORMAT_VERSION`] must be updated together.
pub const LAYOUT_FINGERPRINT: u64 = 0x24e3_dfed_9f0f_da3f;

/// One recorded chunk: the gap since the previous chunk plus its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CassetteFrame {
    /// Nanoseconds since the previous frame (first frame: since start).
    pub delta_nanos: u64,
    /// The chunk exactly as the transport delivered it.
    pub bytes: Vec<u8>,
}

/// Which record stream a cassette captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// A RAS record stream.
    Ras,
    /// A job accounting stream.
    Job,
}

impl StreamKind {
    fn tag(self) -> u8 {
        match self {
            StreamKind::Ras => 1,
            StreamKind::Job => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<StreamKind> {
        match tag {
            1 => Some(StreamKind::Ras),
            2 => Some(StreamKind::Job),
            _ => None,
        }
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamKind::Ras => write!(f, "RAS"),
            StreamKind::Job => write!(f, "job"),
        }
    }
}

fn format_tag(format: LogFormat) -> Option<u8> {
    match format {
        LogFormat::Bgp => Some(1),
        LogFormat::Bgq => Some(2),
        LogFormat::Syslog => Some(3),
        LogFormat::Cassette => None, // a cassette of a cassette is senseless
    }
}

fn format_from_tag(tag: u8) -> Option<LogFormat> {
    match tag {
        1 => Some(LogFormat::Bgp),
        2 => Some(LogFormat::Bgq),
        3 => Some(LogFormat::Syslog),
        _ => None,
    }
}

/// Why a cassette could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CassetteError {
    /// The file is shorter than its header + declared frames.
    Truncated {
        /// Bytes required by what is being read.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The on-disk format version differs from this build's.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The inner-format tag is not a recordable format.
    UnknownFormat(
        /// The tag found in the header.
        u8,
    ),
    /// The stream-kind tag is unrecognized.
    UnknownKind(
        /// The tag found in the header.
        u8,
    ),
    /// The cassette holds the other stream kind.
    WrongKind {
        /// Kind recorded in the header.
        found: StreamKind,
        /// Kind the caller needs.
        expected: StreamKind,
    },
    /// The frames section does not hash to the header's value.
    HashMismatch {
        /// Hash found in the header.
        found: u64,
        /// Hash of the frames actually present.
        expected: u64,
    },
    /// Extra bytes follow the declared frames.
    TrailingBytes(
        /// Number of unexpected bytes.
        usize,
    ),
    /// Tried to record a cassette *of* a cassette.
    NestedCassette,
}

impl fmt::Display for CassetteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CassetteError::Truncated { needed, have } => {
                write!(f, "truncated: need {needed} bytes, have {have}")
            }
            CassetteError::BadMagic => write!(f, "not a .bgpcas file (bad magic)"),
            CassetteError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            CassetteError::UnknownFormat(tag) => {
                write!(f, "unknown inner-format tag {tag}")
            }
            CassetteError::UnknownKind(tag) => write!(f, "unknown stream-kind tag {tag}"),
            CassetteError::WrongKind { found, expected } => {
                write!(f, "cassette holds a {found} stream (expected {expected})")
            }
            CassetteError::HashMismatch { found, expected } => write!(
                f,
                "frame hash {found:#018x} does not match content {expected:#018x}"
            ),
            CassetteError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frames"),
            CassetteError::NestedCassette => {
                write!(f, "cannot record a cassette of a cassette")
            }
        }
    }
}

impl std::error::Error for CassetteError {}

/// A decoded cassette: which format/stream it captured, and the frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cassette {
    /// The format of the recorded byte stream.
    pub format: LogFormat,
    /// Which record stream was captured.
    pub kind: StreamKind,
    /// The recorded chunks, in delivery order.
    pub frames: Vec<CassetteFrame>,
}

impl Cassette {
    /// An empty cassette for `format`/`kind`; fails on [`LogFormat::Cassette`]
    /// (nesting is senseless).
    pub fn new(format: LogFormat, kind: StreamKind) -> Result<Cassette, CassetteError> {
        if format_tag(format).is_none() {
            return Err(CassetteError::NestedCassette);
        }
        Ok(Cassette {
            format,
            kind,
            frames: Vec::new(),
        })
    }

    /// Concatenate every frame's bytes — the byte stream a replay delivers.
    pub fn replay_bytes(&self) -> Vec<u8> {
        let total: usize = self.frames.iter().map(|fr| fr.bytes.len()).sum();
        let mut out = Vec::with_capacity(total);
        for fr in &self.frames {
            out.extend_from_slice(&fr.bytes);
        }
        out
    }

    /// Encode to the `.bgpcas` byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut frames = Vec::new();
        for fr in &self.frames {
            frames.extend_from_slice(&fr.delta_nanos.to_le_bytes());
            frames.extend_from_slice(&(fr.bytes.len() as u32).to_le_bytes());
            frames.extend_from_slice(&fr.bytes);
        }
        let mut out = Vec::with_capacity(HEADER_LEN + frames.len());
        out.extend_from_slice(&MAGIC);
        out.push(format_tag(self.format).unwrap_or(0));
        out.push(self.kind.tag());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.frames.len() as u64).to_le_bytes());
        out.extend_from_slice(&content_hash_64(&frames).to_le_bytes());
        out.extend_from_slice(&frames);
        out
    }

    /// Decode a `.bgpcas` byte buffer, validating everything.
    pub fn decode(bytes: &[u8]) -> Result<Cassette, CassetteError> {
        if bytes.len() < HEADER_LEN {
            return Err(CassetteError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CassetteError::BadMagic);
        }
        let format = format_from_tag(bytes[8]).ok_or(CassetteError::UnknownFormat(bytes[8]))?;
        let kind = StreamKind::from_tag(bytes[9]).ok_or(CassetteError::UnknownKind(bytes[9]))?;
        let word = |at: usize| -> [u8; 8] {
            bytes
                .get(at..at + 8)
                .and_then(|b| b.try_into().ok())
                .unwrap_or([0; 8])
        };
        let version = u32::from_le_bytes(
            bytes
                .get(12..16)
                .and_then(|b| b.try_into().ok())
                .unwrap_or([0; 4]),
        );
        if version != FORMAT_VERSION {
            return Err(CassetteError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = u64::from_le_bytes(word(16));
        let declared_hash = u64::from_le_bytes(word(24));
        let frames_bytes = &bytes[HEADER_LEN..];
        let actual_hash = content_hash_64(frames_bytes);
        if declared_hash != actual_hash {
            return Err(CassetteError::HashMismatch {
                found: declared_hash,
                expected: actual_hash,
            });
        }
        let mut frames = Vec::new();
        let mut pos = 0usize;
        let need = |pos: usize, n: usize| -> Result<usize, CassetteError> {
            let end = pos.checked_add(n).ok_or(CassetteError::Truncated {
                needed: usize::MAX,
                have: frames_bytes.len(),
            })?;
            if end > frames_bytes.len() {
                return Err(CassetteError::Truncated {
                    needed: HEADER_LEN + end,
                    have: bytes.len(),
                });
            }
            Ok(end)
        };
        for _ in 0..count {
            let end = need(pos, 12)?;
            let delta_nanos = u64::from_le_bytes(
                frames_bytes
                    .get(pos..pos + 8)
                    .and_then(|b| b.try_into().ok())
                    .unwrap_or([0; 8]),
            );
            let len = u32::from_le_bytes(
                frames_bytes
                    .get(pos + 8..pos + 12)
                    .and_then(|b| b.try_into().ok())
                    .unwrap_or([0; 4]),
            ) as usize;
            pos = end;
            let end = need(pos, len)?;
            frames.push(CassetteFrame {
                delta_nanos,
                bytes: frames_bytes
                    .get(pos..end)
                    .map(<[u8]>::to_vec)
                    .unwrap_or_default(),
            });
            pos = end;
        }
        if pos != frames_bytes.len() {
            return Err(CassetteError::TrailingBytes(frames_bytes.len() - pos));
        }
        Ok(Cassette {
            format,
            kind,
            frames,
        })
    }

    /// Decode, additionally requiring the stream kind the caller consumes.
    pub fn decode_expecting(bytes: &[u8], expected: StreamKind) -> Result<Cassette, CassetteError> {
        let cas = Cassette::decode(bytes)?;
        if cas.kind != expected {
            return Err(CassetteError::WrongKind {
                found: cas.kind,
                expected,
            });
        }
        Ok(cas)
    }
}

/// A pure cassette recorder: the caller supplies timing, so this type never
/// reads a clock (keeping it inside the determinism lint scope; `bgp-serve`
/// owns the `Instant` that feeds `delta_nanos`).
#[derive(Debug)]
pub struct Recorder {
    cassette: Cassette,
}

impl Recorder {
    /// Start recording a `format`/`kind` stream.
    pub fn new(format: LogFormat, kind: StreamKind) -> Result<Recorder, CassetteError> {
        Ok(Recorder {
            cassette: Cassette::new(format, kind)?,
        })
    }

    /// Append one delivered chunk (`delta_nanos` since the previous one).
    /// Empty chunks are recorded too — boundaries are the point.
    pub fn push(&mut self, delta_nanos: u64, bytes: &[u8]) {
        self.cassette.frames.push(CassetteFrame {
            delta_nanos,
            bytes: bytes.to_vec(),
        });
    }

    /// Number of frames recorded so far.
    pub fn len(&self) -> usize {
        self.cassette.frames.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.cassette.frames.is_empty()
    }

    /// The cassette recorded so far (borrow; [`Recorder::finish`] consumes).
    pub fn cassette(&self) -> &Cassette {
        &self.cassette
    }

    /// Finish and return the cassette.
    pub fn finish(self) -> Cassette {
        self.cassette
    }
}

/// The cassette batch adapter: decode the container, then hand the replayed
/// bytes to the *inner* format's adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct CassetteAdapter;

impl crate::RasSource for CassetteAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Cassette
    }

    fn decode_ras(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<RasRecord>, SourceError> {
        let cas = Cassette::decode_expecting(data, StreamKind::Ras)?;
        let bytes = cas.replay_bytes();
        match cas.format {
            LogFormat::Bgp => Ok(crate::bgp::decode_ras(&bytes, threads)),
            LogFormat::Bgq => Ok(crate::bgq::decode_ras(&bytes)),
            LogFormat::Syslog => Ok(crate::syslog::decode(
                &bytes,
                &crate::syslog::SyslogConfig::default(),
            )),
            LogFormat::Cassette => Err(CassetteError::NestedCassette.into()),
        }
    }
}

impl crate::JobSource for CassetteAdapter {
    fn format(&self) -> LogFormat {
        LogFormat::Cassette
    }

    fn decode_jobs(
        &self,
        data: &[u8],
        threads: usize,
    ) -> Result<SourceBatch<JobRecord>, SourceError> {
        let cas = Cassette::decode_expecting(data, StreamKind::Job)?;
        let bytes = cas.replay_bytes();
        match cas.format {
            LogFormat::Bgp => Ok(crate::bgp::decode_jobs(&bytes, threads)),
            LogFormat::Bgq => Ok(crate::bgq::decode_jobs(&bytes)),
            LogFormat::Syslog => Err(SourceError::NoJobSchema(LogFormat::Syslog)),
            LogFormat::Cassette => Err(CassetteError::NestedCassette.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RasSource;

    fn sample() -> Cassette {
        let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).unwrap();
        rec.push(0, b"first chunk ");
        rec.push(1_500_000, b"");
        rec.push(250, b"second\nchunk");
        rec.finish()
    }

    #[test]
    fn encode_decode_round_trip() {
        let cas = sample();
        let bytes = cas.encode();
        assert_eq!(&bytes[..8], &MAGIC);
        let back = Cassette::decode(&bytes).unwrap();
        assert_eq!(back, cas);
        assert_eq!(back.replay_bytes(), b"first chunk second\nchunk");
    }

    #[test]
    fn nested_cassettes_are_refused() {
        assert_eq!(
            Cassette::new(LogFormat::Cassette, StreamKind::Ras).unwrap_err(),
            CassetteError::NestedCassette
        );
        assert!(Recorder::new(LogFormat::Cassette, StreamKind::Job).is_err());
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let good = sample().encode();
        assert!(matches!(
            Cassette::decode(&good[..HEADER_LEN - 1]),
            Err(CassetteError::Truncated { .. })
        ));
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Cassette::decode(&bad).unwrap_err(), CassetteError::BadMagic);
        let mut bad = good.clone();
        bad[8] = 99;
        assert_eq!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::UnknownFormat(99)
        );
        let mut bad = good.clone();
        bad[9] = 0;
        assert_eq!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::UnknownKind(0)
        );
        let mut bad = good.clone();
        bad[12] = 0xEE; // version
        assert!(matches!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::VersionMismatch { .. }
        ));
        // Flip one payload byte: the hash check catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::HashMismatch { .. }
        ));
        // Truncated frame payload (hash recomputed so truncation is reached).
        let mut bad = good.clone();
        bad.truncate(good.len() - 3);
        let h = content_hash_64(&bad[HEADER_LEN..]).to_le_bytes();
        bad[24..32].copy_from_slice(&h);
        assert!(matches!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::Truncated { .. }
        ));
        // Trailing garbage after the declared frames.
        let mut bad = good.clone();
        bad.extend_from_slice(b"zz");
        let h = content_hash_64(&bad[HEADER_LEN..]).to_le_bytes();
        bad[24..32].copy_from_slice(&h);
        assert_eq!(
            Cassette::decode(&bad).unwrap_err(),
            CassetteError::TrailingBytes(2)
        );
        // Every error renders.
        for e in [
            CassetteError::BadMagic,
            CassetteError::NestedCassette,
            CassetteError::WrongKind {
                found: StreamKind::Job,
                expected: StreamKind::Ras,
            },
            CassetteError::TrailingBytes(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn kind_is_enforced_on_decode() {
        let bytes = sample().encode();
        assert!(Cassette::decode_expecting(&bytes, StreamKind::Ras).is_ok());
        assert!(matches!(
            Cassette::decode_expecting(&bytes, StreamKind::Job),
            Err(CassetteError::WrongKind {
                found: StreamKind::Ras,
                expected: StreamKind::Job,
            })
        ));
    }

    #[test]
    fn adapter_replays_through_the_inner_format() {
        let rec_line = {
            let r = RasRecord::new(
                1,
                bgp_model::Timestamp::from_unix(1_236_000_000),
                "R00-M0".parse().unwrap(),
                raslog::Catalog::standard()
                    .lookup("_bgp_err_kernel_panic")
                    .unwrap(),
            );
            raslog::format_record(&r)
        };
        let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).unwrap();
        // Split the line across chunks mid-field: replay must reassemble it.
        let text = format!("{rec_line}\ngarbage\n");
        let (a, b) = text.as_bytes().split_at(10);
        rec.push(0, a);
        rec.push(1000, b);
        let bytes = rec.finish().encode();
        let batch = CassetteAdapter.decode_ras(&bytes, 1).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].recid, 1);
        assert_eq!(batch.diagnostics.len(), 1);
        // And the whole batch equals a direct BG/P parse of the same text.
        assert_eq!(batch, crate::bgp::decode_ras(text.as_bytes(), 1));
    }
}
