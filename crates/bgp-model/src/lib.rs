//! # `bgp_model` — Blue Gene/P machine model
//!
//! This crate is the hardware substrate shared by every other crate in the
//! workspace: it knows what an Intrepid-class Blue Gene/P *is* — racks,
//! midplanes, node cards, compute nodes, I/O nodes, link and service cards —
//! and how the RAS subsystem and the Cobalt scheduler name pieces of it.
//!
//! The main exports are:
//!
//! * [`Location`] — a parsed, strongly typed BG/P location code
//!   (`R23-M1-N04-J12` and friends) with containment and projection queries.
//! * [`Machine`] — the machine geometry (Intrepid is 40 racks in 5 rows of 8,
//!   i.e. 80 midplanes / 40,960 compute nodes / 163,840 cores).
//! * [`Partition`] — a set of midplanes a job can be scheduled on, with the
//!   BG/P legal-size rule ({1, 2, 4, 8, 16, 32, 48, 64, 80} midplanes).
//! * [`Timestamp`] / [`Duration`] — the time axis used by both logs, with
//!   BG/P-style `YYYY-MM-DD-HH.MM.SS` formatting.
//! * [`torus`] — 3-D torus coordinates of midplanes and partition torus
//!   dimensions.
//!
//! ## Location grammar
//!
//! Real CMCS location strings have several historical quirks (the paper's
//! Table II shows `R-04-M0-S`). We use a regularized grammar, documented in
//! [`location`], that preserves the information content: rack row/column,
//! midplane, node card, node slot, and the card type.

// `deny`, not `forbid`: the one sanctioned `unsafe` module (`mmap`, the
// read-only file-mapping wrapper) opts back in with a scoped
// `#![allow(unsafe_code)]` and carries the safety argument in its docs.
// Every other module still cannot use `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod error;
pub mod intern;
pub mod location;
pub mod mmap;
pub mod partition;
pub mod snapshot;
pub mod time;
pub mod topology;
pub mod torus;

pub use error::ModelError;
pub use location::{ComputeNodeId, Location, MidplaneId, NodeCardId, RackId};
pub use partition::{Partition, PartitionSize};
pub use time::{Duration, Timestamp};
pub use topology::Machine;
