//! Job partitions: sets of midplanes with the BG/P legal-size rule.
//!
//! Intrepid schedules jobs onto *partitions*: a distinct set of compute and
//! I/O nodes plus the associated torus wiring. The midplane is the minimum
//! partition; adjacent midplanes can be joined into larger ones. Legal job
//! sizes on Intrepid are 1, 2, 4, 8, 16, 32, 48, 64, or 80 midplanes
//! (Table VI of the paper).
//!
//! [`Partition`] is a bitmask over the 80 midplane indices — 16 bytes, copy,
//! set-algebra in a few instructions, which matters because interruption
//! matching tests millions of (event, job) pairs for location overlap.

use crate::error::ModelError;
use crate::location::{Location, MidplaneId};
use crate::topology::NUM_MIDPLANES;
use std::fmt;
use std::str::FromStr;

/// The legal partition sizes (in midplanes) on Intrepid.
pub const LEGAL_SIZES: [u32; 9] = [1, 2, 4, 8, 16, 32, 48, 64, 80];

/// A validated legal partition size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionSize(u32);

impl PartitionSize {
    /// Validate a midplane count against [`LEGAL_SIZES`].
    pub fn new(midplanes: u32) -> Result<PartitionSize, ModelError> {
        if LEGAL_SIZES.contains(&midplanes) {
            Ok(PartitionSize(midplanes))
        } else {
            Err(ModelError::IllegalPartitionSize(midplanes))
        }
    }

    /// The size in midplanes.
    pub fn midplanes(self) -> u32 {
        self.0
    }

    /// The size in compute nodes.
    pub fn nodes(self) -> u32 {
        self.0 * u32::from(crate::topology::NODES_PER_MIDPLANE)
    }

    /// All legal sizes, ascending.
    pub fn all() -> impl Iterator<Item = PartitionSize> {
        LEGAL_SIZES.into_iter().map(PartitionSize)
    }

    /// Is this a "wide" job in the paper's sense (≥ 32 midplanes)?
    pub fn is_wide(self) -> bool {
        self.0 >= 32
    }
}

impl fmt::Display for PartitionSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} midplanes", self.0)
    }
}

/// A set of midplanes allocated to a job.
///
/// Invariants: non-empty whenever produced by a constructor other than
/// [`Partition::empty`]; only bits `0..NUM_MIDPLANES` may be set.
///
/// ```
/// use bgp_model::{Location, Partition};
///
/// // Racks R10..R11 — the job-log location form the paper's Table III shows.
/// let p: Partition = "R10-R11".parse().unwrap();
/// assert_eq!(p.len(), 4);
/// let node: Location = "R10-M1-N04-J12".parse().unwrap();
/// assert!(p.covers_location(node));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    mask: u128,
}

impl Partition {
    /// The mask with every populated-machine bit allowed.
    const FULL_MASK: u128 = (1u128 << NUM_MIDPLANES) - 1;

    /// The empty partition (no midplanes). Useful as an accumulator identity.
    pub fn empty() -> Partition {
        Partition { mask: 0 }
    }

    /// A partition consisting of a single midplane.
    pub fn single(m: MidplaneId) -> Partition {
        Partition {
            mask: 1u128 << m.index(),
        }
    }

    /// A partition of `count` consecutive midplanes starting at index
    /// `start` (in [`MidplaneId`] index order).
    ///
    /// Returns an error if the range exceeds the machine.
    pub fn contiguous(start: u8, count: u32) -> Result<Partition, ModelError> {
        let end = u32::from(start) + count;
        if count == 0 || end > u32::from(NUM_MIDPLANES) {
            return Err(ModelError::OutOfRange {
                what: "midplane range end",
                value: end,
                bound: u32::from(NUM_MIDPLANES) + 1,
            });
        }
        let mask = if count == 128 {
            u128::MAX
        } else {
            ((1u128 << count) - 1) << start
        };
        Ok(Partition { mask })
    }

    /// Build from an iterator of midplanes.
    pub fn from_midplanes<I: IntoIterator<Item = MidplaneId>>(iter: I) -> Partition {
        let mut mask = 0u128;
        for m in iter {
            mask |= 1u128 << m.index();
        }
        Partition { mask }
    }

    /// Number of midplanes in the partition.
    pub fn len(self) -> u32 {
        self.mask.count_ones()
    }

    /// Is the partition empty?
    pub fn is_empty(self) -> bool {
        self.mask == 0
    }

    /// Does the partition include midplane `m`?
    pub fn contains(self, m: MidplaneId) -> bool {
        self.mask & (1u128 << m.index()) != 0
    }

    /// Do two partitions share any midplane?
    pub fn overlaps(self, other: Partition) -> bool {
        self.mask & other.mask != 0
    }

    /// Does a RAS location fall on hardware belonging to this partition?
    ///
    /// Midplane-scoped locations match if their midplane is in the partition;
    /// rack-scoped locations (rack, bulk power, clock card) match if *either*
    /// midplane of the rack is in the partition.
    pub fn covers_location(self, loc: Location) -> bool {
        loc.touched_midplanes().iter().any(|&m| self.contains(m))
    }

    /// Set union.
    pub fn union(self, other: Partition) -> Partition {
        Partition {
            mask: self.mask | other.mask,
        }
    }

    /// Set intersection.
    pub fn intersection(self, other: Partition) -> Partition {
        Partition {
            mask: self.mask & other.mask,
        }
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: Partition) -> Partition {
        Partition {
            mask: self.mask & !other.mask,
        }
    }

    /// Iterate over the midplanes of the partition in index order.
    pub fn midplanes(self) -> impl Iterator<Item = MidplaneId> {
        let mask = self.mask;
        (0..NUM_MIDPLANES)
            .filter(move |i| mask & (1u128 << i) != 0)
            .filter_map(|i| MidplaneId::from_index(i).ok())
    }

    /// The lowest-index midplane, if any. This is the partition's "anchor"
    /// used for display and placement bookkeeping.
    pub fn first(self) -> Option<MidplaneId> {
        if self.mask == 0 {
            None
        } else {
            MidplaneId::from_index(self.mask.trailing_zeros() as u8).ok()
        }
    }

    /// Is the partition a contiguous run of midplane indices?
    pub fn is_contiguous(self) -> bool {
        if self.mask == 0 {
            return false;
        }
        let shifted = self.mask >> self.mask.trailing_zeros();
        (shifted + 1).is_power_of_two()
    }

    /// The raw bitmask (bit *i* = midplane index *i*).
    pub fn mask(self) -> u128 {
        self.mask
    }

    /// Rebuild from a raw mask, rejecting bits beyond the machine.
    pub fn from_mask(mask: u128) -> Result<Partition, ModelError> {
        if mask & !Self::FULL_MASK != 0 {
            return Err(ModelError::OutOfRange {
                what: "partition mask bit",
                value: 128 - mask.leading_zeros() - 1,
                bound: u32::from(NUM_MIDPLANES),
            });
        }
        Ok(Partition { mask })
    }
}

impl fmt::Display for Partition {
    /// Cobalt-style location strings:
    ///
    /// * a single midplane prints as `R23-M1`;
    /// * a contiguous whole-rack range prints as `R10-R13` (the job-log form
    ///   the paper's Table III shows: `R10-R11`);
    /// * anything else prints as a comma-separated midplane list.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "<empty>");
        }
        let n = self.len();
        if n == 1 {
            if let Some(only) = self.first() {
                return write!(f, "{only}");
            }
        }
        if self.is_contiguous() && n.is_multiple_of(2) {
            let lo = self.mask.trailing_zeros() as u8;
            let hi = (127 - self.mask.leading_zeros()) as u8;
            if lo.is_multiple_of(2) {
                if let (Ok(first), Ok(last)) =
                    (MidplaneId::from_index(lo), MidplaneId::from_index(hi))
                {
                    return write!(f, "{}-{}", first.rack(), last.rack());
                }
            }
        }
        let mut sep = "";
        for m in self.midplanes() {
            write!(f, "{sep}{m}")?;
            sep = ",";
        }
        Ok(())
    }
}

impl FromStr for Partition {
    type Err = ModelError;

    /// Parse the three display forms: `R23-M1`, `R10-R13`, and
    /// comma-separated midplane lists.
    fn from_str(s: &str) -> Result<Partition, ModelError> {
        let err = |reason: &'static str| ModelError::InvalidLocation {
            input: s.to_owned(),
            reason,
        };
        if s == "<empty>" {
            return Ok(Partition::empty());
        }
        if s.contains(',') {
            let mut p = Partition::empty();
            for part in s.split(',') {
                let m: MidplaneId = part.trim().parse()?;
                p = p.union(Partition::single(m));
            }
            return Ok(p);
        }
        // Try a rack range `Rxy-Rzw`.
        if let Some((a, b)) = s.split_once('-') {
            if b.starts_with('R') {
                let lo: crate::location::RackId = a.parse()?;
                let hi: crate::location::RackId = b.parse()?;
                if hi.index() < lo.index() {
                    return Err(err("rack range is reversed"));
                }
                let start = (lo.index() * 2) as u8;
                let count = ((hi.index() - lo.index() + 1) * 2) as u32;
                return Partition::contiguous(start, count);
            }
        }
        // Otherwise a single midplane.
        let m: MidplaneId = s.parse()?;
        Ok(Partition::single(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mp(s: &str) -> MidplaneId {
        s.parse().unwrap()
    }

    #[test]
    fn legal_sizes() {
        for n in LEGAL_SIZES {
            assert!(PartitionSize::new(n).is_ok());
        }
        for n in [0, 3, 5, 17, 40, 81, 128] {
            assert!(PartitionSize::new(n).is_err());
        }
        assert_eq!(PartitionSize::new(1).unwrap().nodes(), 512);
        assert_eq!(PartitionSize::new(80).unwrap().nodes(), 40_960);
        assert!(PartitionSize::new(32).unwrap().is_wide());
        assert!(!PartitionSize::new(16).unwrap().is_wide());
        assert_eq!(PartitionSize::all().count(), 9);
    }

    #[test]
    fn set_algebra() {
        let a = Partition::contiguous(0, 4).unwrap();
        let b = Partition::contiguous(2, 4).unwrap();
        assert!(a.overlaps(b));
        assert_eq!(a.intersection(b).len(), 2);
        assert_eq!(a.union(b).len(), 6);
        assert_eq!(a.difference(b).len(), 2);
        assert!(!a.difference(b).overlaps(b));
        let c = Partition::contiguous(10, 2).unwrap();
        assert!(!a.overlaps(c));
        assert!(a.union(c).contains(mp("R05-M0"))); // index 10
    }

    #[test]
    fn contiguity() {
        assert!(Partition::contiguous(4, 8).unwrap().is_contiguous());
        assert!(!Partition::empty().is_contiguous());
        let gap = Partition::single(mp("R00-M0")).union(Partition::single(mp("R01-M0")));
        assert!(!gap.is_contiguous());
    }

    #[test]
    fn covers_location() {
        let p = Partition::contiguous(2, 2).unwrap(); // R01-M0, R01-M1
        let node: Location = "R01-M0-N04-J12".parse().unwrap();
        let io: Location = "R01-M1-I3".parse().unwrap();
        let bulk: Location = "R01-B".parse().unwrap();
        let other: Location = "R02-M0".parse().unwrap();
        let other_bulk: Location = "R02-B".parse().unwrap();
        assert!(p.covers_location(node));
        assert!(p.covers_location(io));
        assert!(p.covers_location(bulk)); // rack-scoped touches both midplanes
        assert!(!p.covers_location(other));
        assert!(!p.covers_location(other_bulk));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Partition::single(mp("R23-M1")).to_string(), "R23-M1");
        // Whole racks R10..R11 = midplane indices 16..20.
        let p = Partition::contiguous(16, 4).unwrap();
        assert_eq!(p.to_string(), "R10-R11");
        // A non-rack-aligned contiguous pair prints as a list.
        let p = Partition::contiguous(1, 2).unwrap();
        assert_eq!(p.to_string(), "R00-M1,R01-M0");
        assert_eq!(Partition::empty().to_string(), "<empty>");
    }

    #[test]
    fn parse_forms() {
        let p: Partition = "R10-R11".parse().unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_string(), "R10-R11");
        let p: Partition = "R23-M1".parse().unwrap();
        assert_eq!(p, Partition::single(mp("R23-M1")));
        let p: Partition = "R00-M1,R01-M0".parse().unwrap();
        assert_eq!(p.len(), 2);
        let p: Partition = "<empty>".parse().unwrap();
        assert!(p.is_empty());
        assert!("R11-R10".parse::<Partition>().is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Partition::contiguous(79, 2).is_err());
        assert!(Partition::contiguous(0, 0).is_err());
        assert!(Partition::contiguous(0, 80).is_ok());
        assert!(Partition::from_mask(1u128 << 80).is_err());
        assert!(Partition::from_mask((1u128 << 80) - 1).is_ok());
    }

    #[test]
    fn first_and_iteration() {
        let p = Partition::contiguous(6, 4).unwrap();
        assert_eq!(p.first().unwrap().index(), 6);
        let idxs: Vec<usize> = p.midplanes().map(|m| m.index()).collect();
        assert_eq!(idxs, vec![6, 7, 8, 9]);
        assert_eq!(Partition::empty().first(), None);
    }

    fn arb_partition() -> impl Strategy<Value = Partition> {
        proptest::collection::vec(0u8..NUM_MIDPLANES, 1..16).prop_map(|idxs| {
            Partition::from_midplanes(idxs.into_iter().map(|i| MidplaneId::from_index(i).unwrap()))
        })
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(p in arb_partition()) {
            let s = p.to_string();
            let back: Partition = s.parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn union_intersection_laws(a in arb_partition(), b in arb_partition()) {
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert_eq!(a.intersection(b), b.intersection(a));
            prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
            prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
            prop_assert_eq!(a.overlaps(b), !a.intersection(b).is_empty());
        }

        #[test]
        fn covers_iff_contains_touched(p in arb_partition(), idx in 0u8..NUM_MIDPLANES) {
            let m = MidplaneId::from_index(idx).unwrap();
            prop_assert_eq!(p.covers_location(Location::Midplane(m)), p.contains(m));
        }
    }
}
