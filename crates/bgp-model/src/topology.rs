//! Machine geometry constants and the [`Machine`] description.
//!
//! The constants describe the Intrepid installation at Argonne (the system
//! the paper studies): 40 racks laid out in 5 rows (R0x–R4x) of 8 racks,
//! 2 midplanes per rack, 512 quad-core compute nodes per midplane, with one
//! I/O node per 64 compute nodes.

use crate::location::{MidplaneId, RackId};

/// Number of rack rows on Intrepid (R0x … R4x).
pub const NUM_ROWS: u8 = 5;
/// Racks per row (Rx0 … Rx7).
pub const RACKS_PER_ROW: u8 = 8;
/// Total racks.
pub const NUM_RACKS: u8 = NUM_ROWS * RACKS_PER_ROW;
/// Midplanes per rack.
pub const MIDPLANES_PER_RACK: u8 = 2;
/// Total midplanes (the paper's "80 midplanes").
pub const NUM_MIDPLANES: u8 = NUM_RACKS * MIDPLANES_PER_RACK;
/// Node cards per midplane.
pub const NODE_CARDS_PER_MIDPLANE: u8 = 16;
/// Compute nodes per node card.
pub const NODES_PER_NODE_CARD: u8 = 32;
/// Compute nodes per midplane.
pub const NODES_PER_MIDPLANE: u16 = NODE_CARDS_PER_MIDPLANE as u16 * NODES_PER_NODE_CARD as u16;
/// PowerPC 450 cores per compute node.
pub const CORES_PER_NODE: u8 = 4;
/// Compute nodes served by a single I/O node on Intrepid (64:1 ratio).
pub const NODES_PER_IO_NODE: u16 = 64;
/// I/O nodes per midplane.
pub const IO_NODES_PER_MIDPLANE: u8 = (NODES_PER_MIDPLANE / NODES_PER_IO_NODE) as u8;
/// Link cards per midplane.
pub const LINK_CARDS_PER_MIDPLANE: u8 = 4;

/// A description of a Blue Gene/P installation.
///
/// The analysis and the simulator are written against [`Machine`] rather than
/// the raw constants so that scaled-down systems (a single rack, one row) can
/// be simulated quickly in tests. The *location grammar* always validates
/// against the full Intrepid geometry — a smaller machine is a machine where
/// only a prefix of the midplanes is populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    /// Number of populated midplanes, `1..=NUM_MIDPLANES`. Populated
    /// midplanes are the first `midplanes` in [`MidplaneId`] index order.
    midplanes: u8,
}

impl Machine {
    /// The full Intrepid system: 40 racks / 80 midplanes / 40,960 nodes.
    pub fn intrepid() -> Machine {
        Machine {
            midplanes: NUM_MIDPLANES,
        }
    }

    /// A single rack (2 midplanes) — handy for fast unit tests.
    pub fn single_rack() -> Machine {
        Machine { midplanes: 2 }
    }

    /// One row of 8 racks (16 midplanes).
    pub fn one_row() -> Machine {
        Machine { midplanes: 16 }
    }

    /// A machine with the first `midplanes` midplanes populated.
    ///
    /// # Panics
    /// Panics if `midplanes` is 0 or exceeds [`NUM_MIDPLANES`].
    pub fn with_midplanes(midplanes: u8) -> Machine {
        assert!(
            (1..=NUM_MIDPLANES).contains(&midplanes),
            "midplane count {midplanes} out of range 1..={NUM_MIDPLANES}"
        );
        Machine { midplanes }
    }

    /// Number of populated midplanes.
    pub fn num_midplanes(self) -> u8 {
        self.midplanes
    }

    /// Number of (fully or partially) populated racks.
    pub fn num_racks(self) -> u8 {
        self.midplanes.div_ceil(MIDPLANES_PER_RACK)
    }

    /// Total compute nodes.
    pub fn num_nodes(self) -> u32 {
        u32::from(self.midplanes) * u32::from(NODES_PER_MIDPLANE)
    }

    /// Total cores.
    pub fn num_cores(self) -> u32 {
        self.num_nodes() * u32::from(CORES_PER_NODE)
    }

    /// Is this midplane part of the populated machine?
    pub fn contains(self, m: MidplaneId) -> bool {
        m.index() < usize::from(self.midplanes)
    }

    /// Iterate over the populated midplanes in index order.
    pub fn midplanes(self) -> impl Iterator<Item = MidplaneId> {
        (0..self.midplanes).filter_map(|i| MidplaneId::from_index(i).ok())
    }

    /// Iterate over the populated racks in index order.
    pub fn racks(self) -> impl Iterator<Item = RackId> {
        (0..self.num_racks()).filter_map(|i| RackId::from_index(i).ok())
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::intrepid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrepid_headline_numbers() {
        let m = Machine::intrepid();
        assert_eq!(m.num_midplanes(), 80);
        assert_eq!(m.num_racks(), 40);
        assert_eq!(m.num_nodes(), 40_960);
        assert_eq!(m.num_cores(), 163_840);
    }

    #[test]
    fn io_node_ratio() {
        assert_eq!(IO_NODES_PER_MIDPLANE, 8);
        assert_eq!(NODES_PER_MIDPLANE, 512);
    }

    #[test]
    fn scaled_machines() {
        let m = Machine::single_rack();
        assert_eq!(m.num_midplanes(), 2);
        assert_eq!(m.num_racks(), 1);
        assert_eq!(m.num_nodes(), 1024);
        assert_eq!(m.midplanes().count(), 2);

        let m = Machine::one_row();
        assert_eq!(m.num_racks(), 8);
        assert_eq!(m.racks().count(), 8);

        let m = Machine::with_midplanes(3);
        assert_eq!(m.num_racks(), 2); // one full rack + one half-populated
    }

    #[test]
    fn contains_respects_population() {
        let m = Machine::with_midplanes(4);
        let inside: MidplaneId = "R01-M1".parse().unwrap(); // index 3
        let outside: MidplaneId = "R02-M0".parse().unwrap(); // index 4
        assert!(m.contains(inside));
        assert!(!m.contains(outside));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_midplanes_rejected() {
        Machine::with_midplanes(0);
    }
}
