//! Error types for the machine model.

use std::fmt;

/// Errors produced while parsing or validating machine-model entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A location string did not match the BG/P location grammar.
    InvalidLocation {
        /// The offending input string.
        input: String,
        /// Human-readable description of what went wrong.
        reason: &'static str,
    },
    /// A numeric component (rack row/column, midplane, card, slot) was out of
    /// range for the machine.
    OutOfRange {
        /// Which entity was out of range (e.g. `"rack column"`).
        what: &'static str,
        /// The value encountered.
        value: u32,
        /// The exclusive upper bound that was violated.
        bound: u32,
    },
    /// A partition size that is not one of the legal BG/P job sizes.
    IllegalPartitionSize(
        /// The requested number of midplanes.
        u32,
    ),
    /// A timestamp string did not match `YYYY-MM-DD-HH.MM.SS[.ffffff]`.
    InvalidTimestamp(
        /// The offending input string.
        String,
    ),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidLocation { input, reason } => {
                write!(f, "invalid location {input:?}: {reason}")
            }
            ModelError::OutOfRange { what, value, bound } => {
                write!(f, "{what} {value} out of range (must be < {bound})")
            }
            ModelError::IllegalPartitionSize(n) => {
                write!(
                    f,
                    "illegal partition size {n} midplanes \
                     (legal sizes: 1, 2, 4, 8, 16, 32, 48, 64, 80)"
                )
            }
            ModelError::InvalidTimestamp(s) => {
                write!(f, "invalid timestamp {s:?} (expected YYYY-MM-DD-HH.MM.SS)")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::InvalidLocation {
            input: "Q99".into(),
            reason: "does not start with 'R'",
        };
        assert!(e.to_string().contains("Q99"));

        let e = ModelError::OutOfRange {
            what: "rack column",
            value: 9,
            bound: 8,
        };
        assert!(e.to_string().contains("rack column"));
        assert!(e.to_string().contains('9'));

        let e = ModelError::IllegalPartitionSize(3);
        assert!(e.to_string().contains('3'));

        let e = ModelError::InvalidTimestamp("yesterday".into());
        assert!(e.to_string().contains("yesterday"));
    }
}
