//! Read-only memory-mapped file input.
//!
//! [`MappedFile`] hands the loaders a `&[u8]` view of a log file without
//! copying it through a heap buffer: on unix it maps the file `PROT_READ` /
//! `MAP_PRIVATE` so parsing runs straight over the page cache; everywhere
//! else (and whenever mapping fails) it falls back to an ordinary read.
//!
//! This is the one module in the workspace allowed to use `unsafe`: the
//! crate root denies `unsafe_code` and every other module inherits that.
//! The safety argument is confined here and is short:
//!
//! * The mapping is private and read-only; nothing through this API can
//!   write to the file or observe another process's `MAP_PRIVATE` writes.
//! * The returned slice borrows the [`MappedFile`], whose `Drop` unmaps,
//!   so the view cannot outlive the mapping.
//! * The caveat that cannot be engineered away: if another process
//!   *truncates* the file while it is mapped, touching the vanished pages
//!   raises `SIGBUS`. Log files here are append-only by convention; callers
//!   that cannot guarantee that should pass `mmap: false` and take the
//!   buffered-read path. See DESIGN.md §5h for the operational notes.

#![allow(unsafe_code)] // sanctioned: the workspace's single mmap wrapper

use std::fs::File;
use std::io;
use std::path::Path;

/// A log file's bytes, either memory-mapped (unix) or read into a buffer.
#[derive(Debug)]
pub struct MappedFile {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped(unix_impl::Mapping),
    Owned(Vec<u8>),
}

impl MappedFile {
    /// Map `path` read-only, falling back to a buffered read when mapping
    /// is unavailable (non-unix targets, zero-length files, exotic
    /// filesystems that refuse `mmap`).
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        #[cfg(unix)]
        {
            let file = File::open(path)?;
            // Empty file or the kernel refusing the mapping falls through to
            // the read path rather than failing the load.
            if let Ok(Some(m)) = unix_impl::Mapping::map(&file) {
                return Ok(MappedFile {
                    inner: Inner::Mapped(m),
                });
            }
        }
        Self::read(path)
    }

    /// Read `path` into an owned buffer (the non-mmap mode).
    pub fn read(path: &Path) -> io::Result<MappedFile> {
        Ok(MappedFile {
            inner: Inner::Owned(std::fs::read(path)?),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Owned(v) => v,
        }
    }

    /// True when the bytes are served by a memory mapping (diagnostics).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

#[cfg(unix)]
mod unix_impl {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Raw libc bindings: std already links libc on unix, so declaring the
    // two symbols here avoids a dependency on the `libc` crate.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An active `mmap` region; unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the region is read-only and owned exclusively by this value;
    // sharing immutable views across threads is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map the whole of `file` read-only. `Ok(None)` means "no mapping
        /// to make" (zero-length file — `mmap` would return `EINVAL`).
        pub(super) fn map(file: &File) -> io::Result<Option<Mapping>> {
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(None);
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds usize"))?;
            // SAFETY: fd is a valid open file for the duration of the call;
            // a PROT_READ/MAP_PRIVATE mapping of it aliases no Rust object.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Some(Mapping { ptr, len }))
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (established in `map`, released only in `drop`), and the
            // returned borrow ties the slice's lifetime to `self`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`;
            // after this the struct is gone, so no slice can dangle (the
            // borrow in `as_slice` pins `self` alive).
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_and_read_agree() {
        let dir = std::env::temp_dir().join(format!("bgp-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.log");
        let payload = b"line one\nline two with |delims|\n";
        std::fs::write(&path, payload).unwrap();

        let mapped = MappedFile::open(&path).unwrap();
        let read = MappedFile::read(&path).unwrap();
        assert_eq!(mapped.bytes(), payload.as_slice());
        assert_eq!(read.bytes(), payload.as_slice());
        assert!(!read.is_mapped());
        #[cfg(unix)]
        assert!(mapped.is_mapped());

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join(format!("bgp-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.log");
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        assert!(mapped.bytes().is_empty());
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let path = Path::new("/nonexistent/definitely/not/here.log");
        assert!(MappedFile::open(path).is_err());
        assert!(MappedFile::read(path).is_err());
    }
}
