//! Dictionary interning: dense `u32` ids for sparse value sets.
//!
//! The dimensional-analysis kernel (`coanalysis::analysis::fda`) works over
//! columns of *ids*, not values: every distinct value of a dimension
//! (midplane, user, project, executable, …) is mapped to its rank in the
//! sorted distinct-value set. Interning through a **sorted** dictionary —
//! rather than a hash map — is what keeps downstream reductions
//! deterministic: id order *is* value order, so "iterate the dictionary"
//! and "iterate values ascending" are the same loop, and no hash-iteration
//! order can leak into results.

/// A sorted dictionary of distinct values with dense-id lookup.
///
/// Ids are `u32` ranks into the sorted distinct-value list: `id(v)` is the
/// binary-search position of `v`, `value(id)` the inverse. Construction
/// sorts and dedups once; lookups never hash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner<T> {
    values: Vec<T>,
}

impl<T: Ord + Copy> Interner<T> {
    /// Build a dictionary over every value yielded by `iter` (duplicates
    /// welcome; they dedup away).
    pub fn from_values<I: IntoIterator<Item = T>>(iter: I) -> Interner<T> {
        let mut values: Vec<T> = iter.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        Interner { values }
    }

    /// The dense id of `v`, if `v` is in the dictionary.
    pub fn id(&self, v: T) -> Option<u32> {
        self.values.binary_search(&v).ok().map(|i| i as u32)
    }

    /// The value behind `id`, if `id` is in range.
    pub fn value(&self, id: u32) -> Option<T> {
        self.values.get(id as usize).copied()
    }

    /// The sorted distinct values (id order).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of distinct values (= one past the largest id).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sorted_ranks() {
        let i = Interner::from_values([30u64, 10, 20, 10, 30]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.values(), &[10, 20, 30]);
        assert_eq!(i.id(10), Some(0));
        assert_eq!(i.id(20), Some(1));
        assert_eq!(i.id(30), Some(2));
        assert_eq!(i.id(25), None);
    }

    #[test]
    fn value_inverts_id() {
        let i = Interner::from_values([5u32, 1, 9]);
        for v in [1u32, 5, 9] {
            assert_eq!(i.value(i.id(v).unwrap()), Some(v));
        }
        assert_eq!(i.value(3), None);
    }

    #[test]
    fn empty_dictionary() {
        let i: Interner<u64> = Interner::from_values([]);
        assert!(i.is_empty());
        assert_eq!(i.id(0), None);
        assert_eq!(i.value(0), None);
    }
}
