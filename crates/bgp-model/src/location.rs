//! BG/P location codes: identifiers and the location grammar.
//!
//! The CMCS names every field-replaceable unit with a *location code*. This
//! module provides a regularized grammar that covers every location kind seen
//! in RAS analysis:
//!
//! | Kind | Syntax | Example |
//! |---|---|---|
//! | Rack | `R<row><col>` | `R23` |
//! | Midplane | `R<row><col>-M<m>` | `R23-M1` |
//! | Node card | `R..-M.-N<cc>` | `R23-M1-N04` |
//! | Compute node | `R..-M.-N..-J<jj>` | `R23-M1-N04-J12` |
//! | I/O node | `R..-M.-I<i>` | `R23-M1-I3` |
//! | Link card | `R..-M.-L<l>` | `R23-M1-L2` |
//! | Service card | `R..-M.-S` | `R23-M1-S` |
//! | Bulk power | `R..-B` | `R23-B` |
//! | Clock card | `R..-K` | `R23-K` |
//!
//! Real CMCS output has small historical irregularities (the paper's Table II
//! shows `R-04-M0-S`); the parser also accepts that dashed rack form.
//!
//! Identifiers are dense small integers so they can be used directly as array
//! indices in per-midplane or per-node aggregations (see
//! [`MidplaneId::index`]).

use crate::error::ModelError;
use crate::topology;
use std::fmt;
use std::str::FromStr;

/// A rack, identified by row (0–4 on Intrepid) and column (0–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId {
    row: u8,
    col: u8,
}

impl RackId {
    /// Create a rack id from row and column, validating against the Intrepid
    /// geometry (5 rows × 8 columns).
    pub fn new(row: u8, col: u8) -> Result<RackId, ModelError> {
        if row >= topology::NUM_ROWS {
            return Err(ModelError::OutOfRange {
                what: "rack row",
                value: u32::from(row),
                bound: u32::from(topology::NUM_ROWS),
            });
        }
        if col >= topology::RACKS_PER_ROW {
            return Err(ModelError::OutOfRange {
                what: "rack column",
                value: u32::from(col),
                bound: u32::from(topology::RACKS_PER_ROW),
            });
        }
        Ok(RackId { row, col })
    }

    /// Create from a dense index in `0..NUM_RACKS` (row-major).
    pub fn from_index(idx: u8) -> Result<RackId, ModelError> {
        if idx >= topology::NUM_RACKS {
            return Err(ModelError::OutOfRange {
                what: "rack index",
                value: u32::from(idx),
                bound: u32::from(topology::NUM_RACKS),
            });
        }
        Ok(RackId {
            row: idx / topology::RACKS_PER_ROW,
            col: idx % topology::RACKS_PER_ROW,
        })
    }

    /// Total variant of [`RackId::from_index`]: reduces `idx` modulo
    /// `NUM_RACKS` first. For callers whose index is already bounded by
    /// construction (dense loops, bounded RNG draws), where the fallible
    /// constructor would only add an unreachable error path.
    pub fn from_index_wrapping(idx: u8) -> RackId {
        let idx = idx % topology::NUM_RACKS;
        RackId {
            row: idx / topology::RACKS_PER_ROW,
            col: idx % topology::RACKS_PER_ROW,
        }
    }

    /// Dense index in `0..NUM_RACKS` (row-major: `R00`=0, `R01`=1, … `R47`=39).
    pub fn index(self) -> usize {
        usize::from(self.row) * usize::from(topology::RACKS_PER_ROW) + usize::from(self.col)
    }

    /// The rack row (the digit after `R`).
    pub fn row(self) -> u8 {
        self.row
    }

    /// The rack column (the second digit).
    pub fn col(self) -> u8 {
        self.col
    }

    /// The two midplanes housed in this rack.
    pub fn midplanes(self) -> [MidplaneId; 2] {
        [
            MidplaneId { rack: self, m: 0 },
            MidplaneId { rack: self, m: 1 },
        ]
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}{}", self.row, self.col)
    }
}

macro_rules! impl_fromstr_via_location {
    ($ty:ty, $variant:ident, $expected:literal) => {
        impl FromStr for $ty {
            type Err = ModelError;
            fn from_str(s: &str) -> Result<Self, ModelError> {
                match s.parse::<Location>()? {
                    Location::$variant(x) => Ok(x),
                    _ => Err(ModelError::InvalidLocation {
                        input: s.to_owned(),
                        reason: concat!("not a ", $expected, " location"),
                    }),
                }
            }
        }
    };
}

/// A midplane: half a rack, 512 compute nodes. The unit of job scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MidplaneId {
    rack: RackId,
    m: u8,
}

impl MidplaneId {
    /// Create from a rack and midplane number (0 = bottom, 1 = top).
    pub fn new(rack: RackId, m: u8) -> Result<MidplaneId, ModelError> {
        if m >= topology::MIDPLANES_PER_RACK {
            return Err(ModelError::OutOfRange {
                what: "midplane",
                value: u32::from(m),
                bound: u32::from(topology::MIDPLANES_PER_RACK),
            });
        }
        Ok(MidplaneId { rack, m })
    }

    /// Create from a dense index in `0..NUM_MIDPLANES`.
    ///
    /// Index order is rack-major: `R00-M0`=0, `R00-M1`=1, `R01-M0`=2, …
    pub fn from_index(idx: u8) -> Result<MidplaneId, ModelError> {
        if idx >= topology::NUM_MIDPLANES {
            return Err(ModelError::OutOfRange {
                what: "midplane index",
                value: u32::from(idx),
                bound: u32::from(topology::NUM_MIDPLANES),
            });
        }
        Ok(MidplaneId {
            rack: RackId::from_index(idx / topology::MIDPLANES_PER_RACK)?,
            m: idx % topology::MIDPLANES_PER_RACK,
        })
    }

    /// Total variant of [`MidplaneId::from_index`]: reduces `idx` modulo
    /// `NUM_MIDPLANES` first. For callers whose index is already bounded by
    /// construction (dense loops, bounded RNG draws), where the fallible
    /// constructor would only add an unreachable error path.
    pub fn from_index_wrapping(idx: u8) -> MidplaneId {
        let idx = idx % topology::NUM_MIDPLANES;
        MidplaneId {
            rack: RackId::from_index_wrapping(idx / topology::MIDPLANES_PER_RACK),
            m: idx % topology::MIDPLANES_PER_RACK,
        }
    }

    /// Dense index in `0..NUM_MIDPLANES` (see [`MidplaneId::from_index`]).
    pub fn index(self) -> usize {
        self.rack.index() * usize::from(topology::MIDPLANES_PER_RACK) + usize::from(self.m)
    }

    /// The rack housing this midplane.
    pub fn rack(self) -> RackId {
        self.rack
    }

    /// Midplane number within the rack (0 or 1).
    pub fn m(self) -> u8 {
        self.m
    }

    /// Iterate over all midplanes of the machine in index order.
    pub fn all() -> impl Iterator<Item = MidplaneId> {
        (0..topology::NUM_MIDPLANES).filter_map(|i| MidplaneId::from_index(i).ok())
    }
}

impl fmt::Display for MidplaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-M{}", self.rack, self.m)
    }
}

/// A node card: 32 compute nodes; 16 per midplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeCardId {
    midplane: MidplaneId,
    card: u8,
}

impl NodeCardId {
    /// Create from a midplane and card number (0–15).
    pub fn new(midplane: MidplaneId, card: u8) -> Result<NodeCardId, ModelError> {
        if card >= topology::NODE_CARDS_PER_MIDPLANE {
            return Err(ModelError::OutOfRange {
                what: "node card",
                value: u32::from(card),
                bound: u32::from(topology::NODE_CARDS_PER_MIDPLANE),
            });
        }
        Ok(NodeCardId { midplane, card })
    }

    /// Total variant of [`NodeCardId::new`]: reduces `card` modulo the
    /// cards-per-midplane count first. For callers whose card number is
    /// already bounded by construction.
    pub fn new_wrapping(midplane: MidplaneId, card: u8) -> NodeCardId {
        NodeCardId {
            midplane,
            card: card % topology::NODE_CARDS_PER_MIDPLANE,
        }
    }

    /// The midplane housing this node card.
    pub fn midplane(self) -> MidplaneId {
        self.midplane
    }

    /// Card number within the midplane (0–15).
    pub fn card(self) -> u8 {
        self.card
    }
}

impl fmt::Display for NodeCardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-N{:02}", self.midplane, self.card)
    }
}

/// A single compute node (one quad-core PowerPC 450).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComputeNodeId {
    node_card: NodeCardId,
    j: u8,
}

impl ComputeNodeId {
    /// Create from a node card and node slot (J00–J31).
    pub fn new(node_card: NodeCardId, j: u8) -> Result<ComputeNodeId, ModelError> {
        if j >= topology::NODES_PER_NODE_CARD {
            return Err(ModelError::OutOfRange {
                what: "node slot",
                value: u32::from(j),
                bound: u32::from(topology::NODES_PER_NODE_CARD),
            });
        }
        Ok(ComputeNodeId { node_card, j })
    }

    /// Total variant of [`ComputeNodeId::new`]: reduces `j` modulo the
    /// slots-per-card count first. For callers whose slot number is already
    /// bounded by construction.
    pub fn new_wrapping(node_card: NodeCardId, j: u8) -> ComputeNodeId {
        ComputeNodeId {
            node_card,
            j: j % topology::NODES_PER_NODE_CARD,
        }
    }

    /// The node card housing this node.
    pub fn node_card(self) -> NodeCardId {
        self.node_card
    }

    /// Slot number on the node card (0–31).
    pub fn j(self) -> u8 {
        self.j
    }
}

impl fmt::Display for ComputeNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-J{:02}", self.node_card, self.j)
    }
}

/// Any location a RAS record can refer to.
///
/// Ordered so that coarser locations sort before finer ones within the same
/// hardware (the derived order is sufficient for deterministic sorting; it is
/// not a containment order — use [`Location::contains`] for that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A whole rack.
    Rack(RackId),
    /// A midplane.
    Midplane(MidplaneId),
    /// A node card within a midplane.
    NodeCard(NodeCardId),
    /// A single compute node.
    ComputeNode(ComputeNodeId),
    /// An I/O node. Intrepid runs 64 compute nodes per I/O node, i.e. 8 I/O
    /// nodes per midplane.
    IoNode {
        /// Midplane housing the I/O node.
        midplane: MidplaneId,
        /// I/O node index within the midplane (0–7).
        index: u8,
    },
    /// A link card (inter-midplane torus cabling); 4 per midplane.
    LinkCard {
        /// Midplane housing the link card.
        midplane: MidplaneId,
        /// Link card index (0–3).
        index: u8,
    },
    /// The midplane's service card.
    ServiceCard(
        /// Midplane housing the service card.
        MidplaneId,
    ),
    /// The rack's bulk power assembly.
    BulkPower(
        /// The rack.
        RackId,
    ),
    /// The rack's clock card.
    ClockCard(
        /// The rack.
        RackId,
    ),
}

impl Location {
    /// The rack this location lives in.
    pub fn rack(self) -> RackId {
        match self {
            Location::Rack(r) | Location::BulkPower(r) | Location::ClockCard(r) => r,
            Location::Midplane(m) | Location::ServiceCard(m) => m.rack(),
            Location::IoNode { midplane, .. } | Location::LinkCard { midplane, .. } => {
                midplane.rack()
            }
            Location::NodeCard(nc) => nc.midplane().rack(),
            Location::ComputeNode(cn) => cn.node_card().midplane().rack(),
        }
    }

    /// The midplane this location lives in, if it is midplane-scoped.
    ///
    /// Rack-scoped locations (rack, bulk power, clock card) return `None`.
    pub fn midplane(self) -> Option<MidplaneId> {
        match self {
            Location::Rack(_) | Location::BulkPower(_) | Location::ClockCard(_) => None,
            Location::Midplane(m) | Location::ServiceCard(m) => Some(m),
            Location::IoNode { midplane, .. } | Location::LinkCard { midplane, .. } => {
                Some(midplane)
            }
            Location::NodeCard(nc) => Some(nc.midplane()),
            Location::ComputeNode(cn) => Some(cn.node_card().midplane()),
        }
    }

    /// All midplanes this location *touches*: a midplane-scoped location
    /// touches its midplane; a rack-scoped location touches both midplanes of
    /// the rack (a failed bulk power module or clock card affects the whole
    /// rack).
    pub fn touched_midplanes(self) -> Vec<MidplaneId> {
        match self.midplane() {
            Some(m) => vec![m],
            None => self.rack().midplanes().to_vec(),
        }
    }

    /// Does this location (as a region of hardware) contain `other`?
    ///
    /// Reflexive: every location contains itself. A rack contains everything
    /// in it; a midplane contains its node cards, nodes, I/O nodes, link and
    /// service cards; a node card contains its nodes. Peer cards (service,
    /// link, bulk power, clock) contain only themselves.
    pub fn contains(self, other: Location) -> bool {
        if self == other {
            return true;
        }
        match self {
            Location::Rack(r) => other.rack() == r,
            Location::Midplane(m) => other.midplane() == Some(m),
            Location::NodeCard(nc) => match other {
                Location::ComputeNode(cn) => cn.node_card() == nc,
                _ => false,
            },
            _ => false,
        }
    }

    /// Granularity rank, coarse → fine (rack = 0, midplane = 1, card = 2,
    /// node = 3). Useful for sorting diagnostics.
    pub fn granularity(self) -> u8 {
        match self {
            Location::Rack(_) | Location::BulkPower(_) | Location::ClockCard(_) => 0,
            Location::Midplane(m) => {
                let _ = m;
                1
            }
            Location::ServiceCard(_)
            | Location::LinkCard { .. }
            | Location::IoNode { .. }
            | Location::NodeCard(_) => 2,
            Location::ComputeNode(_) => 3,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Location::Rack(r) => write!(f, "{r}"),
            Location::Midplane(m) => write!(f, "{m}"),
            Location::NodeCard(nc) => write!(f, "{nc}"),
            Location::ComputeNode(cn) => write!(f, "{cn}"),
            Location::IoNode { midplane, index } => write!(f, "{midplane}-I{index}"),
            Location::LinkCard { midplane, index } => write!(f, "{midplane}-L{index}"),
            Location::ServiceCard(m) => write!(f, "{m}-S"),
            Location::BulkPower(r) => write!(f, "{r}-B"),
            Location::ClockCard(r) => write!(f, "{r}-K"),
        }
    }
}

impl FromStr for Location {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Location, ModelError> {
        let err = |reason: &'static str| ModelError::InvalidLocation {
            input: s.to_owned(),
            reason,
        };
        let mut parts = s.split('-');
        let rack_part = parts.next().ok_or_else(|| err("empty string"))?;

        // Accept both `R23` and the historical dashed form `R-23`.
        let digits: &str = if rack_part == "R" {
            parts.next().ok_or_else(|| err("missing rack digits"))?
        } else {
            rack_part
                .strip_prefix('R')
                .ok_or_else(|| err("does not start with 'R'"))?
        };
        if digits.len() != 2 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err("rack must be two digits"));
        }
        let row = digits.as_bytes()[0] - b'0';
        let col = digits.as_bytes()[1] - b'0';
        let rack = RackId::new(row, col)?;

        let Some(second) = parts.next() else {
            return Ok(Location::Rack(rack));
        };

        // Rack-scoped cards.
        match second {
            "B" => {
                return if parts.next().is_none() {
                    Ok(Location::BulkPower(rack))
                } else {
                    Err(err("trailing components after bulk power"))
                }
            }
            "K" => {
                return if parts.next().is_none() {
                    Ok(Location::ClockCard(rack))
                } else {
                    Err(err("trailing components after clock card"))
                }
            }
            _ => {}
        }

        let m = second
            .strip_prefix('M')
            .ok_or_else(|| err("expected M, B, or K after rack"))?;
        let m: u8 = m.parse().map_err(|_| err("midplane must be a number"))?;
        let midplane = MidplaneId::new(rack, m)?;

        let Some(third) = parts.next() else {
            return Ok(Location::Midplane(midplane));
        };

        let loc = match third.as_bytes().first() {
            Some(b'S') if third == "S" => Location::ServiceCard(midplane),
            Some(b'N') => {
                let card: u8 = third[1..]
                    .parse()
                    .map_err(|_| err("node card must be a number"))?;
                let nc = NodeCardId::new(midplane, card)?;
                match parts.next() {
                    None => Location::NodeCard(nc),
                    Some(jpart) => {
                        let j: u8 = jpart
                            .strip_prefix('J')
                            .ok_or_else(|| err("expected J after node card"))?
                            .parse()
                            .map_err(|_| err("node slot must be a number"))?;
                        if parts.next().is_some() {
                            return Err(err("trailing components after node slot"));
                        }
                        return Ok(Location::ComputeNode(ComputeNodeId::new(nc, j)?));
                    }
                }
            }
            Some(b'I') => {
                let index: u8 = third[1..]
                    .parse()
                    .map_err(|_| err("I/O node must be a number"))?;
                if index >= topology::IO_NODES_PER_MIDPLANE {
                    return Err(ModelError::OutOfRange {
                        what: "I/O node",
                        value: u32::from(index),
                        bound: u32::from(topology::IO_NODES_PER_MIDPLANE),
                    });
                }
                Location::IoNode { midplane, index }
            }
            Some(b'L') => {
                let index: u8 = third[1..]
                    .parse()
                    .map_err(|_| err("link card must be a number"))?;
                if index >= topology::LINK_CARDS_PER_MIDPLANE {
                    return Err(ModelError::OutOfRange {
                        what: "link card",
                        value: u32::from(index),
                        bound: u32::from(topology::LINK_CARDS_PER_MIDPLANE),
                    });
                }
                Location::LinkCard { midplane, index }
            }
            _ => return Err(err("unrecognized component after midplane")),
        };
        if parts.next().is_some() {
            return Err(err("trailing components"));
        }
        Ok(loc)
    }
}

impl_fromstr_via_location!(RackId, Rack, "rack");
impl_fromstr_via_location!(MidplaneId, Midplane, "midplane");
impl_fromstr_via_location!(NodeCardId, NodeCard, "node card");
impl_fromstr_via_location!(ComputeNodeId, ComputeNode, "compute node");

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mp(s: &str) -> MidplaneId {
        s.parse().unwrap()
    }

    #[test]
    fn rack_index_round_trip() {
        for i in 0..topology::NUM_RACKS {
            let r = RackId::from_index(i).unwrap();
            assert_eq!(r.index(), usize::from(i));
        }
        assert!(RackId::from_index(topology::NUM_RACKS).is_err());
        assert!(RackId::new(5, 0).is_err());
        assert!(RackId::new(0, 8).is_err());
    }

    #[test]
    fn midplane_index_round_trip() {
        for i in 0..topology::NUM_MIDPLANES {
            let m = MidplaneId::from_index(i).unwrap();
            assert_eq!(m.index(), usize::from(i));
        }
        assert!(MidplaneId::from_index(topology::NUM_MIDPLANES).is_err());
        assert_eq!(
            MidplaneId::all().count(),
            usize::from(topology::NUM_MIDPLANES)
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(mp("R23-M1").to_string(), "R23-M1");
        let loc: Location = "R23-M1-N04-J12".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-M1-N04-J12");
        let loc: Location = "R23-M1-I3".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-M1-I3");
        let loc: Location = "R23-M1-L2".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-M1-L2");
        let loc: Location = "R23-M1-S".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-M1-S");
        let loc: Location = "R23-B".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-B");
        let loc: Location = "R23-K".parse().unwrap();
        assert_eq!(loc.to_string(), "R23-K");
    }

    #[test]
    fn historical_dashed_rack_form() {
        // The paper's Table II shows "R-04-M0-S".
        let loc: Location = "R-04-M0-S".parse().unwrap();
        assert_eq!(loc, Location::ServiceCard(mp("R04-M0")));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "R",
            "R2",
            "R234",
            "Q23",
            "R23-X1",
            "R23-M2",         // midplane out of range
            "R53-M0",         // row out of range
            "R23-M1-N16",     // node card out of range
            "R23-M1-N04-J32", // slot out of range
            "R23-M1-I8",      // I/O node out of range
            "R23-M1-L4",      // link card out of range
            "R23-M1-N04-J12-X",
            "R23-B-M0",
            "R23-M1-S-X",
            "R23-M1-Nxx",
        ] {
            assert!(bad.parse::<Location>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn containment() {
        let rack: Location = "R23".parse().unwrap();
        let mid: Location = "R23-M1".parse().unwrap();
        let card: Location = "R23-M1-N04".parse().unwrap();
        let node: Location = "R23-M1-N04-J12".parse().unwrap();
        let io: Location = "R23-M1-I3".parse().unwrap();
        let other_mid: Location = "R23-M0".parse().unwrap();
        let other_rack: Location = "R24".parse().unwrap();

        assert!(rack.contains(mid));
        assert!(rack.contains(node));
        assert!(rack.contains(io));
        assert!(mid.contains(card));
        assert!(mid.contains(node));
        assert!(mid.contains(io));
        assert!(card.contains(node));
        assert!(!card.contains(io));
        assert!(!mid.contains(rack));
        assert!(!other_mid.contains(node));
        assert!(!other_rack.contains(node));
        // Reflexivity.
        for l in [rack, mid, card, node, io] {
            assert!(l.contains(l));
        }
    }

    #[test]
    fn midplane_projection() {
        let node: Location = "R23-M1-N04-J12".parse().unwrap();
        assert_eq!(node.midplane(), Some(mp("R23-M1")));
        let bulk: Location = "R23-B".parse().unwrap();
        assert_eq!(bulk.midplane(), None);
        assert_eq!(bulk.touched_midplanes(), vec![mp("R23-M0"), mp("R23-M1")]);
        assert_eq!(node.touched_midplanes(), vec![mp("R23-M1")]);
    }

    #[test]
    fn granularity_ordering() {
        let rack: Location = "R23".parse().unwrap();
        let mid: Location = "R23-M1".parse().unwrap();
        let card: Location = "R23-M1-N04".parse().unwrap();
        let node: Location = "R23-M1-N04-J12".parse().unwrap();
        assert!(rack.granularity() < mid.granularity());
        assert!(mid.granularity() < card.granularity());
        assert!(card.granularity() < node.granularity());
    }

    #[test]
    fn typed_fromstr() {
        let r: RackId = "R23".parse().unwrap();
        assert_eq!(r.to_string(), "R23");
        assert!("R23-M1".parse::<RackId>().is_err());
        let m: MidplaneId = "R23-M1".parse().unwrap();
        assert_eq!(m.to_string(), "R23-M1");
        let n: ComputeNodeId = "R23-M1-N04-J12".parse().unwrap();
        assert_eq!(n.to_string(), "R23-M1-N04-J12");
    }

    /// Strategy generating arbitrary valid locations.
    fn arb_location() -> impl Strategy<Value = Location> {
        let rack = (0u8..topology::NUM_ROWS, 0u8..topology::RACKS_PER_ROW)
            .prop_map(|(r, c)| RackId::new(r, c).unwrap());
        let midplane = (rack.clone(), 0u8..topology::MIDPLANES_PER_RACK)
            .prop_map(|(r, m)| MidplaneId::new(r, m).unwrap());
        prop_oneof![
            rack.clone().prop_map(Location::Rack),
            rack.clone().prop_map(Location::BulkPower),
            rack.prop_map(Location::ClockCard),
            midplane.clone().prop_map(Location::Midplane),
            midplane.clone().prop_map(Location::ServiceCard),
            (midplane.clone(), 0u8..topology::IO_NODES_PER_MIDPLANE)
                .prop_map(|(midplane, index)| Location::IoNode { midplane, index }),
            (midplane.clone(), 0u8..topology::LINK_CARDS_PER_MIDPLANE)
                .prop_map(|(midplane, index)| Location::LinkCard { midplane, index }),
            (midplane.clone(), 0u8..topology::NODE_CARDS_PER_MIDPLANE)
                .prop_map(|(m, c)| Location::NodeCard(NodeCardId::new(m, c).unwrap())),
            (
                midplane,
                0u8..topology::NODE_CARDS_PER_MIDPLANE,
                0u8..topology::NODES_PER_NODE_CARD
            )
                .prop_map(|(m, c, j)| {
                    Location::ComputeNode(
                        ComputeNodeId::new(NodeCardId::new(m, c).unwrap(), j).unwrap(),
                    )
                }),
        ]
    }

    proptest! {
        #[test]
        fn location_display_parse_round_trip(loc in arb_location()) {
            let s = loc.to_string();
            let back: Location = s.parse().unwrap();
            prop_assert_eq!(loc, back);
        }

        #[test]
        fn containment_is_consistent_with_midplane(loc in arb_location(), other in arb_location()) {
            if loc.contains(other) {
                // Containment implies same rack.
                prop_assert_eq!(loc.rack(), other.rack());
                // And if the container is midplane-scoped, same midplane.
                if let Some(m) = loc.midplane() {
                    prop_assert_eq!(other.midplane(), Some(m));
                }
            }
        }
    }
}
