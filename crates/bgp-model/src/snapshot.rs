//! The shared `.bgpsnap` snapshot container: header, cursor, typed errors.
//!
//! A snapshot is a parsed log cached on disk so re-runs skip parsing
//! entirely. The container layout is common to both logs; the per-record
//! column encodings live with the record types (`raslog::snapshot`,
//! `joblog::snapshot`).
//!
//! ## Header layout (32 bytes, little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"BGPSNAP\0"` |
//! | 8  | 1 | log kind (1 = RAS, 2 = job) |
//! | 9  | 3 | reserved, zero |
//! | 12 | 4 | format version (`u32`) |
//! | 16 | 8 | record count (`u64`) |
//! | 24 | 8 | content hash of the *source text* ([`crate::bytes::content_hash_64`]) |
//!
//! The columnar record payload follows immediately; a snapshot never contains
//! trailing bytes beyond its declared columns. Any mismatch — magic, kind,
//! version, hash, truncation, trailing garbage, or an undecodable record —
//! yields a typed [`SnapshotError`], and callers fall back to re-parsing the
//! source (then rewrite the snapshot).

use std::fmt;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"BGPSNAP\0";

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 32;

/// Which log a snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A parsed RAS log.
    Ras,
    /// A parsed job accounting log.
    Job,
}

impl SnapshotKind {
    fn tag(self) -> u8 {
        match self {
            SnapshotKind::Ras => 1,
            SnapshotKind::Job => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<SnapshotKind> {
        match tag {
            1 => Some(SnapshotKind::Ras),
            2 => Some(SnapshotKind::Job),
            _ => None,
        }
    }
}

impl fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotKind::Ras => write!(f, "RAS"),
            SnapshotKind::Job => write!(f, "job"),
        }
    }
}

/// Why a snapshot could not be used.
///
/// Every variant is a *recoverable* condition: the caller re-parses the
/// source text and rewrites the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than its header + declared columns.
    Truncated {
        /// Bytes required by the header/columns being read.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file holds the other log kind (or an unknown kind tag).
    WrongKind {
        /// Kind tag found in the header.
        found: u8,
        /// Kind the caller expected.
        expected: SnapshotKind,
    },
    /// The on-disk format version differs from this build's.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The source text changed since the snapshot was written.
    HashMismatch {
        /// Hash found in the header.
        found: u64,
        /// Hash of the current source text.
        expected: u64,
    },
    /// A record failed to decode (corrupt payload).
    BadRecord {
        /// Zero-based record index.
        index: u64,
        /// What was wrong with it.
        what: String,
    },
    /// Extra bytes follow the declared columns.
    TrailingBytes(
        /// Number of unexpected bytes.
        usize,
    ),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a .bgpsnap file (bad magic)"),
            SnapshotError::WrongKind { found, expected } => {
                write!(f, "wrong log kind tag {found} (expected {expected})")
            }
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            SnapshotError::HashMismatch { found, expected } => write!(
                f,
                "source hash {found:#018x} does not match current source {expected:#018x}"
            ),
            SnapshotError::BadRecord { index, what } => {
                write!(f, "record {index} corrupt: {what}")
            }
            SnapshotError::TrailingBytes(n) => write!(f, "{n} trailing bytes after records"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The parsed fixed header of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Which log the snapshot holds.
    pub kind: SnapshotKind,
    /// Format version of the record payload.
    pub version: u32,
    /// Number of records in the payload.
    pub count: u64,
    /// Content hash of the source text the snapshot was parsed from.
    pub source_hash: u64,
}

impl SnapshotHeader {
    /// Append the 32-byte encoded header to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(self.kind.tag());
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.source_hash.to_le_bytes());
    }

    /// Parse the header at the front of `bytes`, validating the magic and the
    /// kind tag (but not version or hash — see [`SnapshotHeader::expect`]).
    pub fn parse(
        bytes: &[u8],
        expected_kind: SnapshotKind,
    ) -> Result<SnapshotHeader, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut cur = Cursor::new(&bytes[8..HEADER_LEN]);
        let tag = cur.u8()?;
        let kind = match SnapshotKind::from_tag(tag) {
            Some(k) if k == expected_kind => k,
            _ => {
                return Err(SnapshotError::WrongKind {
                    found: tag,
                    expected: expected_kind,
                })
            }
        };
        let _pad = cur.take(3)?;
        let version = cur.u32()?;
        let count = cur.u64()?;
        let source_hash = cur.u64()?;
        Ok(SnapshotHeader {
            kind,
            version,
            count,
            source_hash,
        })
    }

    /// Validate version and (optionally) source hash against this build.
    pub fn validate(&self, version: u32, source_hash: Option<u64>) -> Result<(), SnapshotError> {
        if self.version != version {
            return Err(SnapshotError::VersionMismatch {
                found: self.version,
                expected: version,
            });
        }
        if let Some(expected) = source_hash {
            if self.source_hash != expected {
                return Err(SnapshotError::HashMismatch {
                    found: self.source_hash,
                    expected,
                });
            }
        }
        Ok(())
    }
}

/// A bounds-checked little-endian reader over a byte slice.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading at the front of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Take the next `n` bytes, or report how far short the buffer falls.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated {
            needed: usize::MAX,
            have: self.data.len(),
        })?;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated {
                needed: end,
                have: self.data.len(),
            })?;
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
    }

    /// Assert the buffer is fully consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        let left = self.data.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(left))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SnapshotHeader {
        SnapshotHeader {
            kind: SnapshotKind::Ras,
            version: 3,
            count: 42,
            source_hash: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn header_round_trip() {
        let mut buf = Vec::new();
        header().write_to(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let back = SnapshotHeader::parse(&buf, SnapshotKind::Ras).unwrap();
        assert_eq!(back, header());
        back.validate(3, Some(0xdead_beef_cafe_f00d)).unwrap();
        back.validate(3, None).unwrap();
    }

    #[test]
    fn header_rejections_are_typed() {
        let mut buf = Vec::new();
        header().write_to(&mut buf);
        assert!(matches!(
            SnapshotHeader::parse(&buf[..10], SnapshotKind::Ras),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            SnapshotHeader::parse(&buf, SnapshotKind::Job),
            Err(SnapshotError::WrongKind { found: 1, .. })
        ));
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            SnapshotHeader::parse(&bad, SnapshotKind::Ras),
            Err(SnapshotError::BadMagic)
        ));
        let h = SnapshotHeader::parse(&buf, SnapshotKind::Ras).unwrap();
        assert!(matches!(
            h.validate(4, None),
            Err(SnapshotError::VersionMismatch {
                found: 3,
                expected: 4
            })
        ));
        assert!(matches!(
            h.validate(3, Some(1)),
            Err(SnapshotError::HashMismatch { .. })
        ));
        // Errors render.
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::TrailingBytes(7),
            SnapshotError::BadRecord {
                index: 9,
                what: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn cursor_bounds() {
        let mut cur = Cursor::new(&[1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(cur.u32().unwrap(), 1);
        assert_eq!(cur.u64().unwrap(), 2);
        cur.finish().unwrap();
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert!(matches!(
            cur.u32(),
            Err(SnapshotError::Truncated { needed: 4, have: 3 })
        ));
        let cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.finish(), Err(SnapshotError::TrailingBytes(3)));
    }
}
