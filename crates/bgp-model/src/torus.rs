//! 3-D torus geometry.
//!
//! BG/P compute nodes are connected in a 3-D torus. A midplane is an
//! 8 × 8 × 8 node sub-torus; midplanes themselves sit in a machine-level grid
//! (on Intrepid: 8 columns × 5 rows × 2 midplanes-per-rack) and joining
//! adjacent midplanes multiplies the torus dimensions.
//!
//! The simulator uses midplane adjacency to model failure locality (a link
//! card fault disturbs torus neighbours) and the scheduler uses
//! [`partition_torus_dims`] when reporting the shape of an allocation.

use crate::location::MidplaneId;
use crate::topology::{MIDPLANES_PER_RACK, NUM_ROWS, RACKS_PER_ROW};

/// Nodes along each axis of a single midplane's torus.
pub const MIDPLANE_TORUS: (u32, u32, u32) = (8, 8, 8);

/// The machine-level midplane grid coordinates of a midplane:
/// `(x, y, z) = (rack column, rack row, midplane-in-rack)`.
pub fn midplane_coords(m: MidplaneId) -> (u8, u8, u8) {
    (m.rack().col(), m.rack().row(), m.m())
}

/// Inverse of [`midplane_coords`].
///
/// Returns `None` if the coordinates fall outside the machine grid.
pub fn midplane_at(x: u8, y: u8, z: u8) -> Option<MidplaneId> {
    if x >= RACKS_PER_ROW || y >= NUM_ROWS || z >= MIDPLANES_PER_RACK {
        return None;
    }
    let idx = (u32::from(y) * u32::from(RACKS_PER_ROW) + u32::from(x))
        * u32::from(MIDPLANES_PER_RACK)
        + u32::from(z);
    MidplaneId::from_index(idx as u8).ok()
}

/// The six torus neighbours of a midplane in the machine-level midplane grid,
/// with wraparound on every axis.
///
/// Axes shorter than three positions produce duplicate neighbours (e.g. the
/// z axis has length 2, so +z and −z wrap to the same midplane); duplicates
/// are removed, so the result has between 3 and 6 entries.
pub fn midplane_neighbors(m: MidplaneId) -> Vec<MidplaneId> {
    let (x, y, z) = midplane_coords(m);
    let dims = [RACKS_PER_ROW, NUM_ROWS, MIDPLANES_PER_RACK];
    let coords = [x, y, z];
    let mut out = Vec::with_capacity(6);
    for axis in 0..3 {
        for dir in [1i16, -1i16] {
            let mut c = coords;
            let d = i16::from(dims[axis]);
            c[axis] = ((i16::from(c[axis]) + dir + d) % d) as u8;
            if let Some(n) = midplane_at(c[0], c[1], c[2]) {
                if n != m && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
    }
    out
}

/// Torus dimensions, in nodes, of a legal partition of `midplanes` midplanes.
///
/// Follows the BG/P doubling scheme: each doubling of the midplane count
/// doubles one axis, cycling z → y → x from the 8×8×8 midplane base. The
/// 48-midplane and 80-midplane configurations are the machine-specific
/// Intrepid shapes.
///
/// Returns `None` for sizes that are not legal partition sizes.
pub fn partition_torus_dims(midplanes: u32) -> Option<(u32, u32, u32)> {
    let (bx, by, bz) = MIDPLANE_TORUS;
    Some(match midplanes {
        1 => (bx, by, bz),
        2 => (bx, by, bz * 2),
        4 => (bx, by * 2, bz * 2),
        8 => (bx * 2, by * 2, bz * 2),
        16 => (bx * 2, by * 2, bz * 4),
        32 => (bx * 2, by * 4, bz * 4),
        48 => (bx * 3, by * 4, bz * 4),
        64 => (bx * 4, by * 4, bz * 4),
        80 => (bx * 5, by * 4, bz * 4),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::LEGAL_SIZES;
    use crate::topology::{NODES_PER_MIDPLANE, NUM_MIDPLANES};

    #[test]
    fn coords_round_trip() {
        for i in 0..NUM_MIDPLANES {
            let m = MidplaneId::from_index(i).unwrap();
            let (x, y, z) = midplane_coords(m);
            assert_eq!(midplane_at(x, y, z), Some(m));
        }
        assert_eq!(midplane_at(8, 0, 0), None);
        assert_eq!(midplane_at(0, 5, 0), None);
        assert_eq!(midplane_at(0, 0, 2), None);
    }

    #[test]
    fn neighbor_counts_and_symmetry() {
        for m in MidplaneId::all() {
            let ns = midplane_neighbors(m);
            // x axis (8 long) gives 2, y axis (5 long) gives 2, z axis
            // (2 long) wraps to a single distinct neighbour: 5 total.
            assert_eq!(ns.len(), 5, "midplane {m}");
            assert!(!ns.contains(&m));
            for n in &ns {
                assert!(
                    midplane_neighbors(*n).contains(&m),
                    "neighbor relation must be symmetric: {m} vs {n}"
                );
            }
        }
    }

    #[test]
    fn torus_dims_node_counts() {
        for size in LEGAL_SIZES {
            let (x, y, z) = partition_torus_dims(size).unwrap();
            assert_eq!(
                x * y * z,
                size * u32::from(NODES_PER_MIDPLANE),
                "size {size}"
            );
        }
        assert_eq!(partition_torus_dims(3), None);
        assert_eq!(partition_torus_dims(0), None);
    }

    #[test]
    fn single_midplane_is_8_cubed() {
        assert_eq!(partition_torus_dims(1), Some((8, 8, 8)));
        assert_eq!(partition_torus_dims(80), Some((40, 32, 32)));
    }
}
