//! The time axis shared by the RAS log and the job log.
//!
//! Both logs on Intrepid timestamp their records; co-analysis correlates them
//! by time and location. We model time as whole seconds since the Unix epoch
//! ([`Timestamp`]) — the paper's matching windows are tens of seconds to
//! minutes, so sub-second resolution adds nothing to the analysis.
//!
//! Display/parse uses the CMCS event-time format `YYYY-MM-DD-HH.MM.SS`
//! (Table II of the paper shows `2008-04-14-15.08.12.285324`; a trailing
//! fractional-second field is accepted on input and ignored).

use crate::error::ModelError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds since the Unix epoch (UTC).
///
/// Ordered, copy, 8 bytes. All simulator and analysis code uses this type —
/// never raw integers — so that the unit (seconds) is carried by the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A span of time in whole seconds. May be negative (the difference of two
/// [`Timestamp`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// A duration of `n` seconds.
    pub const fn seconds(n: i64) -> Duration {
        Duration(n)
    }

    /// A duration of `n` minutes.
    pub const fn minutes(n: i64) -> Duration {
        Duration(n * 60)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: i64) -> Duration {
        Duration(n * 3600)
    }

    /// A duration of `n` days.
    pub const fn days(n: i64) -> Duration {
        Duration(n * 86_400)
    }

    /// The number of whole seconds in this duration.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// This duration in (possibly fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Absolute value.
    pub const fn abs(self) -> Duration {
        Duration(self.0.abs())
    }
}

impl Timestamp {
    /// The epoch itself (1970-01-01 00:00:00 UTC).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Construct from seconds since the epoch.
    pub const fn from_unix(secs: i64) -> Timestamp {
        Timestamp(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_unix(self) -> i64 {
        self.0
    }

    /// Construct from a civil UTC date and time-of-day.
    ///
    /// Months are 1-based (1 = January), days 1-based. No validation of
    /// day-of-month beyond the civil-calendar conversion is performed for
    /// out-of-range time fields; use [`Timestamp::parse`] for validated input.
    pub fn from_civil(year: i32, month: u32, day: u32, hh: u32, mm: u32, ss: u32) -> Timestamp {
        let days = days_from_civil(year, month, day);
        Timestamp(days * 86_400 + i64::from(hh) * 3600 + i64::from(mm) * 60 + i64::from(ss))
    }

    /// Decompose into `(year, month, day, hh, mm, ss)` in UTC.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (secs / 3600) as u32,
            ((secs % 3600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// Parse the CMCS format `YYYY-MM-DD-HH.MM.SS` with an optional
    /// `.ffffff` fractional-second suffix (ignored).
    pub fn parse(s: &str) -> Result<Timestamp, ModelError> {
        let err = || ModelError::InvalidTimestamp(s.to_owned());
        let b = s.as_bytes();
        if b.len() < 19 {
            return Err(err());
        }
        let sep_ok = b[4] == b'-'
            && b[7] == b'-'
            && b[10] == b'-'
            && b[13] == b'.'
            && b[16] == b'.'
            && (b.len() == 19 || b[19] == b'.');
        if !sep_ok {
            return Err(err());
        }
        let num = |range: std::ops::Range<usize>| -> Result<u32, ModelError> {
            s[range].parse::<u32>().map_err(|_| err())
        };
        let year = s[0..4].parse::<i32>().map_err(|_| err())?;
        let month = num(5..7)?;
        let day = num(8..10)?;
        let hh = num(11..13)?;
        let mm = num(14..16)?;
        let ss = num(17..19)?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) || hh > 23 || mm > 59 || ss > 60 {
            return Err(err());
        }
        Ok(Timestamp::from_civil(year, month, day, hh, mm, ss))
    }

    /// Number of whole days between `self` and `origin` (can be negative).
    pub fn days_since(self, origin: Timestamp) -> i64 {
        (self.0 - origin.0).div_euclid(86_400)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, hh, mm, ss) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02}-{hh:02}.{mm:02}.{ss:02}")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let d = total / 86_400;
        let h = (total % 86_400) / 3600;
        let m = (total % 3600) / 60;
        let s = total % 60;
        if d > 0 {
            write!(f, "{sign}{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{sign}{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{sign}{m}m{s:02}s")
        } else {
            write!(f, "{sign}{s}s")
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
///
/// Howard Hinnant's `days_from_civil` algorithm; exact over the full i32
/// year range used here.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp::EPOCH.to_civil(), (1970, 1, 1, 0, 0, 0));
        assert_eq!(Timestamp::from_civil(1970, 1, 1, 0, 0, 0), Timestamp(0));
    }

    #[test]
    fn known_dates_round_trip() {
        // Start of the paper's log window.
        let t = Timestamp::from_civil(2009, 1, 5, 0, 0, 0);
        assert_eq!(t.to_civil(), (2009, 1, 5, 0, 0, 0));
        // End of the window: 2009-08-31 is 238 days later.
        let end = Timestamp::from_civil(2009, 8, 31, 0, 0, 0);
        assert_eq!(end.days_since(t), 238);
    }

    #[test]
    fn leap_years_handled() {
        // 2008 is a leap year: Feb 29 exists.
        let t = Timestamp::from_civil(2008, 2, 29, 12, 0, 0);
        assert_eq!(t.to_civil(), (2008, 2, 29, 12, 0, 0));
        // 1900 is not a leap year (century rule); Mar 1 follows Feb 28.
        let feb28 = Timestamp::from_civil(1900, 2, 28, 0, 0, 0);
        let mar1 = Timestamp::from_civil(1900, 3, 1, 0, 0, 0);
        assert_eq!((mar1 - feb28).as_secs(), 86_400);
        // 2000 is a leap year (400 rule).
        let feb28 = Timestamp::from_civil(2000, 2, 28, 0, 0, 0);
        let mar1 = Timestamp::from_civil(2000, 3, 1, 0, 0, 0);
        assert_eq!((mar1 - feb28).as_secs(), 2 * 86_400);
    }

    #[test]
    fn display_matches_cmcs_format() {
        let t = Timestamp::from_civil(2008, 4, 14, 15, 8, 12);
        assert_eq!(t.to_string(), "2008-04-14-15.08.12");
    }

    #[test]
    fn parse_accepts_fractional_suffix() {
        let t = Timestamp::parse("2008-04-14-15.08.12.285324").unwrap();
        assert_eq!(t, Timestamp::from_civil(2008, 4, 14, 15, 8, 12));
        let t2 = Timestamp::parse("2008-04-14-15.08.12").unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "2008",
            "2008-04-14 15:08:12",
            "2008-13-14-15.08.12",
            "2008-04-32-15.08.12",
            "2008-04-14-25.08.12",
            "2008-04-14-15.61.12",
            "xxxx-04-14-15.08.12",
            "2008-04-14-15.08.12x123",
        ] {
            assert!(Timestamp::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_unix(1000);
        assert_eq!(t + Duration::minutes(1), Timestamp::from_unix(1060));
        assert_eq!(t - Duration::seconds(1), Timestamp::from_unix(999));
        assert_eq!(Timestamp::from_unix(2000) - t, Duration::seconds(1000));
        assert_eq!(Duration::days(1).as_secs(), 86_400);
        assert_eq!(Duration::hours(2) + Duration::minutes(30), Duration(9000));
        assert_eq!(Duration::seconds(-5).abs(), Duration::seconds(5));
        let mut m = t;
        m += Duration::seconds(10);
        m -= Duration::seconds(4);
        assert_eq!(m, Timestamp::from_unix(1006));
    }

    #[test]
    fn duration_display_forms() {
        assert_eq!(Duration::seconds(42).to_string(), "42s");
        assert_eq!(Duration::seconds(62).to_string(), "1m02s");
        assert_eq!(Duration::hours(3).to_string(), "3h00m00s");
        assert_eq!(
            (Duration::days(2) + Duration::seconds(61)).to_string(),
            "2d00h01m01s"
        );
        assert_eq!(Duration::seconds(-62).to_string(), "-1m02s");
    }

    #[test]
    fn civil_round_trip_sweep() {
        // Round-trip every 1000th day across ~80 years.
        for days in (-10_000..20_000).step_by(1000) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }
}
