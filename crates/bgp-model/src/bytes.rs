//! Byte-level helpers shared by the log ingestion layer.
//!
//! Both log crates parse the same way: a whole file is read into memory once,
//! split into newline-aligned chunks, and the chunks are parsed concurrently
//! on scoped threads. The helpers here are the deterministic substrate for
//! that: chunking that never splits a line, a fork-join map over chunks, and
//! a content hash used by the `.bgpsnap` snapshot cache to detect stale
//! snapshots.

/// All lanes of a `u64` filled with one byte.
const fn broadcast(b: u8) -> u64 {
    (b as u64) * 0x0101_0101_0101_0101
}

/// Low bit of every byte lane.
const SWAR_LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every byte lane.
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Position of the first occurrence of `needle` in `hay`.
///
/// SWAR scan: the needle is broadcast into all eight lanes of a `u64`,
/// XORed against each little-endian word of the haystack, and the classic
/// zero-byte trick (`(x - 0x01…01) & !x & 0x80…80`) flags any lane that
/// went to zero — eight bytes per step, no platform intrinsics, stable
/// Rust. The tail shorter than a word falls back to the serial scan.
/// [`find_byte_scalar`] is the byte-at-a-time twin kept as the equivalence
/// oracle; the two must agree on every input.
pub fn find_byte(needle: u8, hay: &[u8]) -> Option<usize> {
    let spread = broadcast(needle);
    let mut words = hay.chunks_exact(8);
    let mut offset = 0usize;
    for word in &mut words {
        let lanes = u64::from_le_bytes(word.try_into().unwrap_or([0; 8])) ^ spread;
        let hit = lanes.wrapping_sub(SWAR_LO) & !lanes & SWAR_HI;
        if hit != 0 {
            return Some(offset + (hit.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    find_byte_scalar(needle, words.remainder()).map(|i| offset + i)
}

/// Serial-scalar reference for [`find_byte`]: one byte per step.
///
/// Kept (not merely for the tail) as the equivalence oracle the SWAR scan
/// is property-tested against, and as the baseline the `ingest-simd`
/// benchmark kernel times the word-parallel scan over.
pub fn find_byte_scalar(needle: u8, hay: &[u8]) -> Option<usize> {
    hay.iter().position(|&b| b == needle)
}

/// Split `data` into at most `chunks` pieces whose boundaries fall just
/// *after* a `\n`, so no line ever spans two chunks.
///
/// The concatenation of the returned slices is exactly `data`; empty pieces
/// are omitted (so fewer than `chunks` slices may come back, and an empty
/// input yields none at all). `chunks == 0` is treated as 1.
pub fn line_chunks(data: &[u8], chunks: usize) -> Vec<&[u8]> {
    let n = chunks.max(1);
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 1..=n {
        if start >= data.len() {
            break;
        }
        // Ideal boundary for the i-th piece, then advance past the next '\n'.
        let mut end = if i == n {
            data.len()
        } else {
            data.len() * i / n
        };
        if end <= start {
            continue;
        }
        if end < data.len() {
            end = match find_byte(b'\n', &data[end..]) {
                Some(off) => end + off + 1,
                None => data.len(),
            };
        }
        out.push(&data[start..end]);
        start = end;
    }
    out
}

/// Apply `f` to every chunk on its own scoped thread and collect the results
/// in input order.
///
/// Single-chunk inputs run inline on the caller's thread. A panicking worker
/// is re-raised on the caller, mirroring the stage-graph fork-join point.
pub fn map_chunks_parallel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let f = &f;
    let mut results = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| scope.spawn(move || f(item)))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of `data`, byte at a time.
///
/// Deterministic across platforms and runs (unlike `std`'s keyed hasher);
/// used where a stable fingerprint of a short byte string is needed.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Stable 64-bit content hash of a (potentially large) byte buffer.
///
/// FNV-1a-style mixing over little-endian 8-byte words with the length folded
/// into the initial state — roughly 8× faster than [`fnv1a_64`] on big
/// buffers, which matters because the snapshot cache hashes the whole source
/// log on every run to validate its snapshot. Not interchangeable with
/// [`fnv1a_64`]; the snapshot format pins this exact function.
pub fn content_hash_64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET ^ (data.len() as u64).wrapping_mul(FNV_PRIME);
    let mut words = data.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().unwrap_or([0; 8]));
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_basic() {
        assert_eq!(find_byte(b'|', b"ab|cd"), Some(2));
        assert_eq!(find_byte(b'|', b"abcd"), None);
        assert_eq!(find_byte(b'|', b""), None);
    }

    #[test]
    fn find_byte_agrees_with_scalar_at_word_boundaries() {
        // Hits at every offset around the 8-byte SWAR word edges, including
        // the first byte of a word, the last, and deep in the tail.
        for hit in 0..40 {
            let mut hay = vec![b'x'; 41];
            if let Some(slot) = hay.get_mut(hit) {
                *slot = b'\n';
            }
            assert_eq!(find_byte(b'\n', &hay), Some(hit), "hit={hit}");
            assert_eq!(
                find_byte(b'\n', &hay),
                find_byte_scalar(b'\n', &hay),
                "hit={hit}"
            );
        }
        // Needle absent entirely, across lengths covering word + tail splits.
        for len in 0..24 {
            let hay = vec![b'x'; len];
            assert_eq!(find_byte(b'\n', &hay), None, "len={len}");
        }
    }

    #[test]
    fn find_byte_crlf_and_utf8() {
        // CRLF line endings: '\r' and '\n' are adjacent and must resolve to
        // distinct positions.
        let hay = b"field one\r\nfield two\r\n";
        assert_eq!(find_byte(b'\r', hay), Some(9));
        assert_eq!(find_byte(b'\n', hay), Some(10));
        // Multi-byte UTF-8 in the haystack: continuation bytes (0x80..)
        // exercise the high bit the zero-byte trick masks on.
        let hay = "réacteur|κλμ\u{10348}|x".as_bytes();
        assert_eq!(find_byte(b'|', hay), find_byte_scalar(b'|', hay));
        // A needle equal to a UTF-8 continuation byte is found literally.
        let hay = "é".as_bytes(); // [0xc3, 0xa9]
        assert_eq!(find_byte(0xa9, hay), Some(1));
        assert_eq!(find_byte(0xc3, hay), Some(0));
    }

    use proptest::prelude::*;

    /// Byte palette of realistic log text: pipe-delimited ASCII plus CRLF
    /// pieces and the two bytes of a multi-byte UTF-8 scalar ("é").
    fn log_byte(i: usize) -> u8 {
        *[b'a', b'0', b' ', b'|', b'\n', b'\r', 0xc3, 0xa9, b'x']
            .get(i)
            .unwrap_or(&b'a')
    }

    proptest! {
        /// SWAR and scalar scans agree on arbitrary byte soup, at every
        /// alignment (the prefix shifts hits across word boundaries).
        #[test]
        fn prop_swar_matches_scalar(
            hay in collection::vec(0u8..=255, 0..64),
            prefix in 0usize..16,
            needle in 0u8..=255,
        ) {
            let mut shifted = vec![b'#'; prefix];
            shifted.extend_from_slice(&hay);
            prop_assert_eq!(
                find_byte(needle, &shifted),
                find_byte_scalar(needle, &shifted)
            );
        }

        /// Agreement on log-shaped text: pipe delimiters, CRLF endings, and
        /// embedded multi-byte UTF-8, scanned for each delimiter byte.
        #[test]
        fn prop_swar_matches_scalar_on_log_text(
            data in collection::vec((0usize..9).prop_map(log_byte), 0..96),
            needle in (0usize..4).prop_map(|i| *[b'|', b'\n', b'\r', 0xc3u8].get(i).unwrap_or(&b'|')),
        ) {
            prop_assert_eq!(
                find_byte(needle, &data),
                find_byte_scalar(needle, &data)
            );
        }

        /// `line_chunks` (built on the SWAR scan) still concatenates to its
        /// input with boundaries only after newlines.
        #[test]
        fn prop_chunks_concatenate(
            data in collection::vec((0usize..9).prop_map(log_byte), 0..64),
            n in 0usize..6,
        ) {
            let chunks = line_chunks(&data, n);
            let joined: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            prop_assert_eq!(joined, data);
            for c in chunks.iter().take(chunks.len().saturating_sub(1)) {
                prop_assert_eq!(c.last(), Some(&b'\n'));
            }
        }
    }

    #[test]
    fn chunks_concatenate_to_input() {
        let data = b"one\ntwo\nthree\nfour\nfive";
        for n in 0..=8 {
            let chunks = line_chunks(data, n);
            let joined: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(joined, data, "chunks={n}");
            // Every chunk but the last ends right after a newline.
            for c in chunks.iter().take(chunks.len().saturating_sub(1)) {
                assert_eq!(c.last(), Some(&b'\n'), "chunks={n}");
            }
            assert!(chunks.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn chunks_edge_cases() {
        assert!(line_chunks(b"", 4).is_empty());
        // No newline at all: one chunk regardless of the requested count.
        assert_eq!(line_chunks(b"no newline here", 4).len(), 1);
        // All newlines.
        let data = b"\n\n\n\n";
        let chunks = line_chunks(data, 2);
        let joined: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(joined, data);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..13).collect();
        let out = map_chunks_parallel(&items, |&i| i * 2);
        assert_eq!(out, (0..13).map(|i| i * 2).collect::<Vec<_>>());
        // Inline path.
        let out = map_chunks_parallel(&items[..1], |&i| i + 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn hashes_are_stable_and_discriminating() {
        // Pinned values: these must never change across releases, or every
        // snapshot in the field silently invalidates.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let h = content_hash_64(b"hello snapshot world");
        assert_eq!(h, content_hash_64(b"hello snapshot world"));
        assert_ne!(h, content_hash_64(b"hello snapshot worle"));
        // Length is part of the state: a buffer of zeros is distinguished
        // from a shorter one.
        assert_ne!(content_hash_64(&[0u8; 8]), content_hash_64(&[0u8; 16]));
        assert_ne!(content_hash_64(&[0u8; 7]), content_hash_64(&[0u8; 8]));
    }
}
