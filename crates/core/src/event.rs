//! The unit the filters operate on: a (possibly merged) fatal event.

use bgp_model::{Location, MidplaneId, Partition, Timestamp};
use raslog::{ErrCode, RasLog, RasRecord};

/// One fatal event, possibly representing many merged raw records.
///
/// Filtering starts from one event per FATAL record and merges; `merged`
/// tracks how many raw records the event stands for, so compression ratios
/// are exact. `footprint` accumulates every midplane the merged records
/// reported from — a parallel job's interrupt is reported from all of its
/// midplanes, and a shared-file-system failure from every victim's
/// partition, so matching against job locations must consider the whole
/// footprint, not just the representative record's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Time of the earliest merged record.
    pub time: Timestamp,
    /// Location of the earliest merged record.
    pub location: Location,
    /// Union of midplanes touched by all merged records.
    pub footprint: Partition,
    /// The error code.
    pub errcode: ErrCode,
    /// Number of raw records merged into this event (≥ 1).
    pub merged: u32,
    /// RECID of the earliest merged record (for traceability).
    pub first_recid: u64,
}

impl Event {
    /// Build the initial event stream: one event per FATAL record, in time
    /// order.
    pub fn from_fatal_records(log: &RasLog) -> Vec<Event> {
        log.fatal().map(Event::from_record).collect()
    }

    /// Construct an event whose footprint derives from its location — the
    /// state a fresh single-record event has. Useful for tests and builders.
    pub fn synthetic(
        time: Timestamp,
        location: Location,
        errcode: ErrCode,
        merged: u32,
        first_recid: u64,
    ) -> Event {
        Event {
            time,
            location,
            footprint: Partition::from_midplanes(location.touched_midplanes()),
            errcode,
            merged,
            first_recid,
        }
    }

    /// One event from one record.
    pub fn from_record(r: &RasRecord) -> Event {
        Event {
            time: r.event_time,
            location: r.location,
            footprint: Partition::from_midplanes(r.location.touched_midplanes()),
            errcode: r.errcode,
            merged: 1,
            first_recid: r.recid,
        }
    }

    /// The midplane this event touches (rack-scoped events report their
    /// rack's first midplane for aggregation purposes).
    pub fn midplane(&self) -> MidplaneId {
        self.location
            .midplane()
            .unwrap_or_else(|| self.location.rack().midplanes()[0])
    }

    /// Absorb another event into this one.
    pub fn absorb(&mut self, other: &Event) {
        debug_assert!(other.time >= self.time);
        self.merged += other.merged;
        self.footprint = self.footprint.union(other.footprint);
    }
}

/// Interarrival times (seconds) of an event sequence, skipping zero gaps.
pub fn interarrivals(events: &[Event]) -> Vec<f64> {
    events
        .windows(2)
        .map(|w| (w[1].time - w[0].time).as_secs() as f64)
        .filter(|&dt| dt > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::Catalog;

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    #[test]
    fn from_fatal_records_skips_nonfatal() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 200, "R00-M0", "_bgp_warn_ecc_corrected"),
            rec(3, 300, "R00-M1", "_bgp_err_ddr_controller"),
        ]);
        let events = Event::from_fatal_records(&log);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].first_recid, 1);
        assert_eq!(events[1].first_recid, 3);
        assert!(events.iter().all(|e| e.merged == 1));
    }

    #[test]
    fn absorb_accumulates() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 130, "R00-M0", "_bgp_err_kernel_panic"),
        ]);
        let events = Event::from_fatal_records(&log);
        let mut a = events[0];
        a.absorb(&events[1]);
        assert_eq!(a.merged, 2);
        assert_eq!(a.time, Timestamp::from_unix(100));
    }

    #[test]
    fn midplane_projection_for_rack_scoped() {
        let log = RasLog::from_records(vec![rec(1, 10, "R07-B", "BULK_POWER_FATAL")]);
        let events = Event::from_fatal_records(&log);
        assert_eq!(events[0].midplane().to_string(), "R07-M0");
    }

    #[test]
    fn interarrival_computation() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 100, "R00-M1", "_bgp_err_kernel_panic"),
            rec(3, 400, "R00-M0", "_bgp_err_kernel_panic"),
        ]);
        let events = Event::from_fatal_records(&log);
        assert_eq!(interarrivals(&events), vec![300.0]);
    }
}
