//! Burstiness of job interruptions (Section VI-A: Figure 5,
//! Observation 6).

use crate::context::AnalysisContext;
use bgp_model::{Duration, Timestamp};
use joblog::JobRecord;
use std::collections::HashMap;

/// Burst statistics over the interrupted-job population.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstAnalysis {
    /// Interruptions per day over the study window (Figure 5's series),
    /// indexed by day offset from the window start.
    pub per_day: Vec<u32>,
    /// Interrupted jobs as a fraction of all jobs (paper: 0.45 %).
    pub interrupted_job_fraction: f64,
    /// Interrupted distinct executables as a fraction of all distinct
    /// executables (paper: 1.73 %).
    pub interrupted_exec_fraction: f64,
    /// Number of interruptions that hit the same executable within
    /// `quick_window` of its previous interruption (paper: 33 within
    /// 1,000 s).
    pub quick_reinterruptions: usize,
    /// The window used for `quick_reinterruptions`.
    pub quick_window_secs: i64,
    /// The longest run of consecutive interruptions of one executable.
    pub max_consecutive_one_exec: usize,
}

impl BurstAnalysis {
    /// Analyze the interrupted jobs (`victims`, resolved job records)
    /// against the indexed job log and window (the `Burst` stage).
    pub fn new(
        victims: &[&JobRecord],
        ctx: &AnalysisContext<'_>,
        window: (Timestamp, Timestamp),
        quick_window: Duration,
    ) -> BurstAnalysis {
        let days = ((window.1 - window.0).as_secs() / 86_400).max(1) as usize;
        let mut per_day = vec![0u32; days];
        for j in victims {
            let d = j.end_time.days_since(window.0);
            if (0..days as i64).contains(&d) {
                per_day[d as usize] += 1;
            }
        }

        // Group interruptions per executable, in time order.
        let mut per_exec: HashMap<joblog::ExecId, Vec<Timestamp>> = HashMap::new();
        for j in victims {
            per_exec.entry(j.exec).or_default().push(j.end_time);
        }
        let mut quick = 0usize;
        for times in per_exec.values_mut() {
            times.sort();
            quick += times
                .windows(2)
                .filter(|w| w[1] - w[0] <= quick_window)
                .count();
        }

        // Longest consecutive-interruption run per executable: consecutive
        // submissions of the executable that all got interrupted.
        let interrupted_ids: std::collections::HashSet<u64> =
            victims.iter().map(|j| j.job_id).collect();
        let mut max_run = 0usize;
        for (_, group) in ctx.exec_groups() {
            let mut run = 0usize;
            for j in group {
                if interrupted_ids.contains(&j.job_id) {
                    run += 1;
                    max_run = max_run.max(run);
                } else {
                    run = 0;
                }
            }
        }

        let interrupted_execs = per_exec.len();
        BurstAnalysis {
            per_day,
            interrupted_job_fraction: if ctx.job_count() == 0 {
                0.0
            } else {
                victims.len() as f64 / ctx.job_count() as f64
            },
            interrupted_exec_fraction: if ctx.distinct_execs() == 0 {
                0.0
            } else {
                interrupted_execs as f64 / ctx.distinct_execs() as f64
            },
            quick_reinterruptions: quick,
            quick_window_secs: quick_window.as_secs(),
            max_consecutive_one_exec: max_run,
        }
    }

    /// A burstiness index: the fraction of interruption-days among days with
    /// ≥ 1 interruption that have ≥ 3 — rare-but-bursty shows up as a
    /// non-trivial value here while the mean per-day count stays low.
    pub fn burst_day_fraction(&self) -> f64 {
        let active: Vec<u32> = self.per_day.iter().copied().filter(|&c| c > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().filter(|&&c| c >= 3).count() as f64 / active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joblog::{ExecId, ExitStatus, JobLog, ProjectId, UserId};

    fn job(job_id: u64, exec: u32, end: i64) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(end - 100),
            start_time: Timestamp::from_unix(end - 90),
            end_time: Timestamp::from_unix(end),
            partition: "R00-M0".parse().unwrap(),
            exit: ExitStatus::Failed(1),
        }
    }

    #[test]
    fn per_day_and_fractions() {
        let all: Vec<JobRecord> = (0..10)
            .map(|i| job(i, i as u32, 1_000 + i as i64))
            .collect();
        let log = JobLog::from_jobs(all);
        let ctx = AnalysisContext::for_jobs(&log);
        let victims: Vec<&JobRecord> = log.jobs().iter().take(2).collect();
        let b = BurstAnalysis::new(
            &victims,
            &ctx,
            (Timestamp::from_unix(0), Timestamp::from_unix(3 * 86_400)),
            Duration::seconds(1_000),
        );
        assert_eq!(b.per_day.len(), 3);
        assert_eq!(b.per_day[0], 2);
        assert!((b.interrupted_job_fraction - 0.2).abs() < 1e-12);
        assert!((b.interrupted_exec_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quick_reinterruptions_and_runs() {
        // Exec 5 interrupted three times in a row, 400 s apart.
        let mut all = vec![
            job(1, 5, 1_000),
            job(2, 5, 1_400),
            job(3, 5, 1_800),
            job(4, 5, 90_000), // later, clean
            job(5, 6, 50_000),
        ];
        all[3].exit = ExitStatus::Completed;
        let log = JobLog::from_jobs(all);
        let ctx = AnalysisContext::for_jobs(&log);
        let victims: Vec<&JobRecord> = log
            .jobs()
            .iter()
            .filter(|j| matches!(j.exit, ExitStatus::Failed(_)))
            .collect();
        let b = BurstAnalysis::new(
            &victims,
            &ctx,
            (Timestamp::from_unix(0), Timestamp::from_unix(2 * 86_400)),
            Duration::seconds(1_000),
        );
        assert_eq!(b.quick_reinterruptions, 2);
        assert_eq!(b.max_consecutive_one_exec, 3);
    }

    #[test]
    fn burst_day_fraction_detects_bursts() {
        let b = BurstAnalysis {
            per_day: vec![0, 5, 0, 0, 1, 0, 4],
            interrupted_job_fraction: 0.0,
            interrupted_exec_fraction: 0.0,
            quick_reinterruptions: 0,
            quick_window_secs: 1_000,
            max_consecutive_one_exec: 0,
        };
        assert!((b.burst_day_fraction() - 2.0 / 3.0).abs() < 1e-12);
        let empty = BurstAnalysis {
            per_day: vec![0, 0],
            ..b
        };
        assert_eq!(empty.burst_day_fraction(), 0.0);
    }
}
