//! Fast Dimensional Analysis (FDA): sharded frequent-itemset mining over
//! the interned (errcode, midplane, user, project, executable, job-size)
//! lattice — the multidimensional root-cause kernel of ROADMAP item 3,
//! after the Facebook FDA approach (arXiv 1911.01225).
//!
//! The paper's root-cause stage explains fatals along one dimension at a
//! time. This kernel mines *interaction* explanations: itemsets like
//! `{midplane=R17-M0, exec=app01234.exe}` whose share of interrupted jobs
//! is far above their share of all jobs (lift). The pipeline is:
//!
//! 1. **Intern** every dimension value to a dense `u32` id through a
//!    *sorted* dictionary ([`bgp_model::intern::Interner`]), and lay the
//!    job table out column-per-dimension (structure of arrays). Id order
//!    is value order, so every loop over ids is a deterministic loop over
//!    values — no hash-iteration order can leak into results.
//! 2. **Mine** the lattice Apriori-style, level by level. Candidate
//!    itemsets at each level are generated serially (join + downward
//!    closure over the previous frequent level), *counted* in parallel —
//!    candidates are pre-chunked into ≤ `threads` contiguous shards and
//!    dispatched via `map_chunks_parallel`, each shard filling a
//!    fixed-order support vector — then merged by a serial concatenation
//!    in candidate order. Support counts are exact integers, so the
//!    reduction is bit-identical at any thread count.
//! 3. **Prune + rank**: frequent itemsets (fatal support ≥ a relative
//!    minimum) get a total-support count via postings-list intersection,
//!    a lift, and a final serial ranking by (lift desc, fatal support
//!    desc, items lex asc).
//!
//! The same serial-fallback size gate as the other kernels applies: below
//! [`MIN_PARALLEL_WORK`] candidate-row pairs (or at `threads <= 1`) the
//! count runs inline, and the parallel path produces byte-identical
//! output above it.

use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use bgp_model::bytes::map_chunks_parallel;
use bgp_model::intern::Interner;
use joblog::JobRecord;
use raslog::ErrCode;
use std::collections::BTreeMap;
use std::fmt;

/// Number of lattice dimensions (errcode, midplane, user, project,
/// executable, job size).
pub const NUM_DIMS: usize = 6;

/// Number of *job-side* dimensions (everything but errcode, which joins
/// in from the matched event stream).
pub const NUM_JOB_DIMS: usize = NUM_DIMS - 1;

/// Minimum candidate×row work (per counting pass) before the sharded
/// parallel path engages; below this the serial fallback runs inline.
pub const MIN_PARALLEL_WORK: u64 = 1 << 16;

/// How many ranked itemsets the `Display` report section prints.
const REPORT_TOP: usize = 15;

/// One dimension of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum FdaDim {
    /// The error code attributed to the interrupted job (id 0 is the
    /// "no interruption" sentinel and never appears in an itemset).
    ErrCode = 0,
    /// First midplane of the job's partition (its anchor location).
    Midplane = 1,
    /// Submitting user.
    User = 2,
    /// Charged project.
    Project = 3,
    /// Executable.
    Exec = 4,
    /// Requested size in midplanes.
    Size = 5,
}

impl FdaDim {
    /// All dimensions, in lattice order.
    pub const ALL: [FdaDim; NUM_DIMS] = [
        FdaDim::ErrCode,
        FdaDim::Midplane,
        FdaDim::User,
        FdaDim::Project,
        FdaDim::Exec,
        FdaDim::Size,
    ];

    /// Short name used in reports (`dim=value`).
    pub fn name(self) -> &'static str {
        match self {
            FdaDim::ErrCode => "errcode",
            FdaDim::Midplane => "midplane",
            FdaDim::User => "user",
            FdaDim::Project => "project",
            FdaDim::Exec => "exec",
            FdaDim::Size => "size",
        }
    }

    fn from_index(i: u8) -> FdaDim {
        *FdaDim::ALL.get(i as usize).unwrap_or(&FdaDim::Size)
    }
}

/// Tuning knobs for the miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdaParams {
    /// Minimum fatal support as a fraction of interrupted jobs (relative,
    /// so candidate counts stay bounded from paper scale to 100x).
    pub min_support_frac: f64,
    /// Absolute floor on fatal support — itemsets explaining fewer
    /// interruptions than this are noise regardless of scale.
    pub min_support_floor: u32,
    /// Minimum lift for an itemset to be *reported* (frequent itemsets
    /// below this still seed the next level's candidates).
    pub min_lift: f64,
    /// Deepest lattice level to mine (number of items per set).
    pub max_level: usize,
}

impl Default for FdaParams {
    fn default() -> FdaParams {
        FdaParams {
            min_support_frac: 0.01,
            min_support_floor: 5,
            min_lift: 2.0,
            max_level: 3,
        }
    }
}

impl FdaParams {
    /// The resolved absolute minimum fatal support for `n_fatal`
    /// interrupted jobs: `max(floor, ceil(frac × n_fatal), 1)`.
    pub fn min_support(&self, n_fatal: usize) -> u32 {
        let rel = (self.min_support_frac * n_fatal as f64).ceil();
        let rel = if rel.is_finite() && rel >= 0.0 && rel <= f64::from(u32::MAX) {
            rel as u32
        } else {
            u32::MAX
        };
        self.min_support_floor.max(rel).max(1)
    }
}

/// The interned job-side columns: one dense-`u32` column per job
/// dimension, the sorted dictionaries behind the ids, display names per
/// id, and a `job_id → row` index. Built once per [`AnalysisContext`]
/// (lazily, on first use) beside the existing sorted shards.
#[derive(Debug, Clone, Default)]
pub struct JobDims {
    /// Column per job dimension, `cols[d][row]` = interned id. Order:
    /// midplane, user, project, exec, size (lattice dims 1..6).
    cols: [Vec<u32>; NUM_JOB_DIMS],
    /// Sorted dictionaries; `dicts[d].len()` is the id universe of
    /// column `d`.
    dicts: [Interner<u64>; NUM_JOB_DIMS],
    /// Display name per id, `names[d][id]`.
    names: [Vec<String>; NUM_JOB_DIMS],
    /// `(job_id, row)` sorted by job id.
    by_job_id: Vec<(u64, u32)>,
}

impl JobDims {
    /// Intern the job table into columnar form. Rows are table order
    /// (one row per job record).
    pub fn from_jobs(jobs: &[JobRecord]) -> JobDims {
        let n = jobs.len();
        let mut raw: [Vec<u64>; NUM_JOB_DIMS] = std::array::from_fn(|_| Vec::with_capacity(n));
        let mut labels: [BTreeMap<u64, String>; NUM_JOB_DIMS] =
            std::array::from_fn(|_| BTreeMap::new());
        for j in jobs {
            let mp = j.partition.midplanes().next();
            let mp_key = mp.map_or(u64::MAX, |m| m.index() as u64);
            raw[0].push(mp_key);
            raw[1].push(u64::from(j.user.0));
            raw[2].push(u64::from(j.project.0));
            raw[3].push(u64::from(j.exec.0));
            raw[4].push(u64::from(j.size_midplanes()));
            labels[0]
                .entry(mp_key)
                .or_insert_with(|| mp.map_or_else(|| "-".to_string(), |m| m.to_string()));
            labels[1]
                .entry(u64::from(j.user.0))
                .or_insert_with(|| j.user.to_string());
            labels[2]
                .entry(u64::from(j.project.0))
                .or_insert_with(|| j.project.to_string());
            labels[3]
                .entry(u64::from(j.exec.0))
                .or_insert_with(|| j.exec.to_string());
            labels[4]
                .entry(u64::from(j.size_midplanes()))
                .or_insert_with(|| j.size_midplanes().to_string());
        }
        let dicts: [Interner<u64>; NUM_JOB_DIMS] =
            std::array::from_fn(|d| Interner::from_values(raw[d].iter().copied()));
        let cols: [Vec<u32>; NUM_JOB_DIMS] = std::array::from_fn(|d| {
            raw[d]
                .iter()
                .map(|&k| dicts[d].id(k).unwrap_or(0))
                .collect()
        });
        let names: [Vec<String>; NUM_JOB_DIMS] = std::array::from_fn(|d| {
            dicts[d]
                .values()
                .iter()
                .map(|k| labels[d].get(k).cloned().unwrap_or_default())
                .collect()
        });
        let mut by_job_id: Vec<(u64, u32)> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.job_id, i as u32))
            .collect();
        by_job_id.sort_unstable();
        JobDims {
            cols,
            dicts,
            names,
            by_job_id,
        }
    }

    /// Number of rows (jobs).
    pub fn rows(&self) -> usize {
        self.by_job_id.len()
    }

    /// The row of `job_id`, if present.
    pub fn row_of(&self, job_id: u64) -> Option<u32> {
        self.by_job_id
            .binary_search_by_key(&job_id, |&(id, _)| id)
            .ok()
            .and_then(|i| self.by_job_id.get(i).map(|&(_, row)| row))
    }

    /// The interned column of job dimension `d` (0 = midplane, 1 = user,
    /// 2 = project, 3 = exec, 4 = size).
    pub fn job_col(&self, d: usize) -> &[u32] {
        self.cols.get(d).map_or(&[], Vec::as_slice)
    }

    /// Distinct values (= id universe size) of job dimension `d`.
    pub fn job_dict_len(&self, d: usize) -> usize {
        self.dicts.get(d).map_or(0, Interner::len)
    }

    /// Display name of `id` in job dimension `d` ("" when out of range).
    pub fn job_name(&self, d: usize, id: u32) -> &str {
        self.names
            .get(d)
            .and_then(|names| names.get(id as usize))
            .map_or("", String::as_str)
    }
}

/// An item is `(dimension index, interned id)`; itemsets are sorted by
/// dimension (at most one item per dimension), so tuple lex order is a
/// canonical total order.
type Item = (u8, u32);

/// One ranked over-represented combination.
#[derive(Debug, Clone, PartialEq)]
pub struct FdaItemset {
    /// The `dim=value` components, in dimension order.
    pub items: Vec<FdaItemValue>,
    /// Interrupted jobs matching every item.
    pub fatal_support: u32,
    /// All jobs matching every item.
    pub total_support: u32,
    /// `(fatal_support / n_fatal) / (total_support / n_jobs)` — how
    /// over-represented the combination is among interrupted jobs.
    pub lift: f64,
}

/// One `dim=value` component of an itemset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdaItemValue {
    /// Which dimension.
    pub dim: FdaDim,
    /// The display form of the value.
    pub value: String,
}

/// The FDA stage product: ranked over-represented dimension combinations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FdaAnalysis {
    /// Rows in the lattice (jobs in the log).
    pub n_jobs: usize,
    /// Interrupted rows (jobs attributed to a fatal event).
    pub n_fatal: usize,
    /// The resolved absolute minimum fatal support used.
    pub min_support: u32,
    /// Deepest level mined.
    pub max_level: usize,
    /// Itemsets with lift ≥ `min_lift`, ranked by (lift desc, fatal
    /// support desc, items asc).
    pub ranked: Vec<FdaItemset>,
}

/// The assembled 6-column table the miner scans: the five job-side
/// columns plus the errcode column joined in from the matching.
struct Table<'a> {
    /// `cols[d][row]`, `d` in lattice order.
    cols: [&'a [u32]; NUM_DIMS],
    /// Id-universe size per column.
    sizes: [usize; NUM_DIMS],
    /// Rows attributed to a fatal event, ascending.
    fatal_rows: &'a [u32],
}

impl Table<'_> {
    fn matches(&self, row: u32, items: &[Item]) -> bool {
        items
            .iter()
            .all(|&(d, id)| self.cols[d as usize].get(row as usize) == Some(&id))
    }
}

/// Compressed postings: for each id of one column, the ascending list of
/// rows carrying it. Built with counting sort, so list order is row order.
struct Postings {
    starts: Vec<u32>,
    rows: Vec<u32>,
}

impl Postings {
    fn build(col: &[u32], n_ids: usize) -> Postings {
        let mut counts = vec![0u32; n_ids + 1];
        for &id in col {
            if let Some(c) = counts.get_mut(id as usize + 1) {
                *c += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut rows = vec![0u32; col.len()];
        let mut cursor = starts.clone();
        for (row, &id) in col.iter().enumerate() {
            if let Some(pos) = cursor.get_mut(id as usize) {
                if let Some(slot) = rows.get_mut(*pos as usize) {
                    *slot = row as u32;
                }
                *pos += 1;
            }
        }
        Postings { starts, rows }
    }

    fn list(&self, id: u32) -> &[u32] {
        let lo = self.starts.get(id as usize).copied().unwrap_or(0) as usize;
        let hi = self.starts.get(id as usize + 1).copied().unwrap_or(0) as usize;
        self.rows.get(lo..hi).unwrap_or(&[])
    }
}

impl FdaAnalysis {
    /// Mine the lattice. `events` and `matching` supply the errcode
    /// column and the fatal-row set (a job is fatal iff the matching
    /// attributed it to an event); `dims` is the interned job table from
    /// [`AnalysisContext::fda_columns`]. Results are bit-identical for
    /// every `threads >= 1`.
    pub fn compute(
        events: &[Event],
        matching: &Matching,
        dims: &JobDims,
        params: &FdaParams,
        threads: usize,
    ) -> FdaAnalysis {
        let n = dims.rows();
        // Errcode column: id 0 = "no interruption", ids 1.. = rank in the
        // sorted dictionary of attributed codes (+1). Victim lists are
        // event-ordered, so this loop is deterministic.
        let mut attributed: Vec<(u32, u16)> = Vec::new();
        for (i, em) in matching.per_event.iter().enumerate() {
            let code = events.get(i).map_or(0, |e| e.errcode.0);
            for &job_id in &em.victims {
                if let Some(row) = dims.row_of(job_id) {
                    attributed.push((row, code));
                }
            }
        }
        attributed.sort_unstable();
        attributed.dedup_by_key(|p| p.0);
        let errdict = Interner::from_values(attributed.iter().map(|&(_, c)| c));
        let mut errcol = vec![0u32; n];
        for &(row, code) in &attributed {
            if let Some(slot) = errcol.get_mut(row as usize) {
                *slot = errdict.id(code).unwrap_or(0) + 1;
            }
        }
        let fatal_rows: Vec<u32> = attributed.iter().map(|&(r, _)| r).collect();
        let n_fatal = fatal_rows.len();
        let min_support = params.min_support(n_fatal);
        let max_level = params.max_level.min(NUM_DIMS);

        let table = Table {
            cols: [
                &errcol,
                &dims.cols[0],
                &dims.cols[1],
                &dims.cols[2],
                &dims.cols[3],
                &dims.cols[4],
            ],
            sizes: [
                errdict.len() + 1,
                dims.dicts[0].len(),
                dims.dicts[1].len(),
                dims.dicts[2].len(),
                dims.dicts[3].len(),
                dims.dicts[4].len(),
            ],
            fatal_rows: &fatal_rows,
        };

        let mut analysis = FdaAnalysis {
            n_jobs: n,
            n_fatal,
            min_support,
            max_level,
            ranked: Vec::new(),
        };
        if n == 0 || n_fatal == 0 || max_level == 0 {
            return analysis;
        }

        let postings: Vec<Postings> = (0..NUM_DIMS)
            .map(|d| Postings::build(table.cols[d], table.sizes[d]))
            .collect();

        // Level 1: fatal support per item from one deterministic pass
        // over the fatal rows.
        let mut level1: Vec<Vec<u32>> = table.sizes.iter().map(|&s| vec![0u32; s]).collect();
        for &row in table.fatal_rows {
            for d in 0..NUM_DIMS {
                let id = table.cols[d].get(row as usize).copied().unwrap_or(0);
                if let Some(c) = level1
                    .get_mut(d)
                    .and_then(|counts| counts.get_mut(id as usize))
                {
                    *c += 1;
                }
            }
        }
        let mut frequent: Vec<Vec<Item>> = Vec::new();
        let mut supports: Vec<u32> = Vec::new();
        for (d, counts) in level1.iter().enumerate() {
            for (id, &c) in counts.iter().enumerate() {
                // Errcode id 0 is the non-fatal sentinel: it never occurs
                // on a fatal row, so `c >= min_support` excludes it.
                if c >= min_support {
                    frequent.push(vec![(d as u8, id as u32)]);
                    supports.push(c);
                }
            }
        }

        let mut mined: Vec<(Vec<Item>, u32, u32, f64)> = Vec::new();
        let mut level = 1;
        loop {
            // Total support + lift for this level's frequent sets.
            let totals = count_total(&table, &postings, &frequent, threads);
            for ((items, &fatal), total) in frequent.iter().zip(&supports).zip(totals) {
                let lift =
                    (f64::from(fatal) * n as f64) / (f64::from(total.max(1)) * n_fatal as f64);
                if lift >= params.min_lift {
                    mined.push((items.clone(), fatal, total, lift));
                }
            }
            level += 1;
            if level > max_level || frequent.is_empty() {
                break;
            }
            let candidates = gen_candidates(&frequent);
            if candidates.is_empty() {
                break;
            }
            let counts = count_fatal(&table, &candidates, threads);
            let mut next_frequent = Vec::new();
            let mut next_supports = Vec::new();
            for (items, c) in candidates.into_iter().zip(counts) {
                if c >= min_support {
                    next_frequent.push(items);
                    next_supports.push(c);
                }
            }
            frequent = next_frequent;
            supports = next_supports;
        }

        // Serial final ranking: lift desc, fatal support desc, items asc.
        mined.sort_by(|a, b| {
            b.3.total_cmp(&a.3)
                .then_with(|| b.1.cmp(&a.1))
                .then_with(|| a.0.cmp(&b.0))
        });
        analysis.ranked = mined
            .into_iter()
            .map(|(items, fatal, total, lift)| FdaItemset {
                items: items
                    .iter()
                    .map(|&(d, id)| FdaItemValue {
                        dim: FdaDim::from_index(d),
                        value: item_name(dims, &errdict, d, id),
                    })
                    .collect(),
                fatal_support: fatal,
                total_support: total,
                lift,
            })
            .collect();
        analysis
    }

    /// Convenience wrapper used by the stage: resolve the interned
    /// columns from the context and mine.
    pub fn from_context(
        events: &[Event],
        matching: &Matching,
        ctx: &AnalysisContext<'_>,
        params: &FdaParams,
        threads: usize,
    ) -> FdaAnalysis {
        FdaAnalysis::compute(events, matching, ctx.fda_columns(), params, threads)
    }
}

/// Display name for one item.
fn item_name(dims: &JobDims, errdict: &Interner<u16>, d: u8, id: u32) -> String {
    if d == 0 {
        return match id.checked_sub(1).and_then(|i| errdict.value(i)) {
            Some(code) => ErrCode(code).to_string(),
            None => "-".to_string(),
        };
    }
    dims.names
        .get(d as usize - 1)
        .and_then(|names| names.get(id as usize))
        .cloned()
        .unwrap_or_default()
}

/// Apriori join + downward closure: from the lex-sorted frequent
/// `k`-itemsets, every candidate `(k+1)`-itemset whose `k`-subsets are
/// all frequent. Serial; output is lex-sorted by construction.
fn gen_candidates(frequent: &[Vec<Item>]) -> Vec<Vec<Item>> {
    let mut out = Vec::new();
    let k = frequent.first().map_or(0, Vec::len);
    let mut i = 0;
    while i < frequent.len() {
        let prefix = frequent[i].get(..k.saturating_sub(1)).unwrap_or(&[]);
        let mut j = i;
        while j < frequent.len() && frequent[j].get(..k.saturating_sub(1)).unwrap_or(&[]) == prefix
        {
            j += 1;
        }
        for a in i..j {
            for b in (a + 1)..j {
                let (la, lb) = match (frequent[a].last(), frequent[b].last()) {
                    (Some(&la), Some(&lb)) => (la, lb),
                    _ => continue,
                };
                // One item per dimension: the joined last items must be
                // on strictly different dimensions.
                if la.0 >= lb.0 {
                    continue;
                }
                let mut cand = frequent[a].clone();
                cand.push(lb);
                // Downward closure: dropping the last two positions
                // yields `frequent[a]` / `frequent[b]`; check the rest.
                let closed = (0..k.saturating_sub(1)).all(|drop| {
                    let sub: Vec<Item> = cand
                        .iter()
                        .enumerate()
                        .filter_map(|(p, &it)| (p != drop).then_some(it))
                        .collect();
                    frequent.binary_search(&sub).is_ok()
                });
                if closed {
                    out.push(cand);
                }
            }
        }
        i = j;
    }
    out
}

/// Fatal-support counts, one per candidate, in candidate order. The
/// parallel path pre-chunks candidates into ≤ `threads` contiguous
/// shards, counts each shard on its own thread into a fixed-order
/// vector, and concatenates serially — bit-identical to the serial path.
fn count_fatal(table: &Table<'_>, candidates: &[Vec<Item>], threads: usize) -> Vec<u32> {
    shard_map(
        candidates,
        threads,
        table.fatal_rows.len() as u64,
        |items| {
            let mut c = 0u32;
            for &row in table.fatal_rows {
                if table.matches(row, items) {
                    c += 1;
                }
            }
            c
        },
    )
}

/// Total-support counts via postings intersection: walk the shortest
/// posting list among the itemset's items and verify the rest against
/// the columns. Sharded the same way as [`count_fatal`].
fn count_total(
    table: &Table<'_>,
    postings: &[Postings],
    itemsets: &[Vec<Item>],
    threads: usize,
) -> Vec<u32> {
    shard_map(itemsets, threads, 64, |items| {
        let shortest = items
            .iter()
            .min_by_key(|&&(d, id)| postings.get(d as usize).map_or(0, |p| p.list(id).len()));
        let Some(&(d, id)) = shortest else { return 0 };
        let list = postings.get(d as usize).map_or(&[][..], |p| p.list(id));
        let mut c = 0u32;
        for &row in list {
            if table.matches(row, items) {
                c += 1;
            }
        }
        c
    })
}

/// Map `f` over `items` in order, sharding across ≤ `threads` contiguous
/// chunks when the work (`items × work_per_item`) clears the size gate.
/// Output order never depends on the thread count.
fn shard_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    work_per_item: u64,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let work = items.len() as u64 * work_per_item.max(1);
    if threads <= 1 || items.len() < threads || work < MIN_PARALLEL_WORK {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk.max(1)).collect();
    let nested = map_chunks_parallel(&chunks, |c| c.iter().map(&f).collect::<Vec<R>>());
    nested.into_iter().flatten().collect()
}

impl fmt::Display for FdaAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dimensional root cause (FDA)")?;
        writeln!(
            f,
            "  {} jobs, {} interrupted; min support {}, max level {}; {} over-represented combinations",
            self.n_jobs,
            self.n_fatal,
            self.min_support,
            self.max_level,
            self.ranked.len()
        )?;
        for set in self.ranked.iter().take(REPORT_TOP) {
            let items: Vec<String> = set
                .items
                .iter()
                .map(|iv| format!("{}={}", iv.dim.name(), iv.value))
                .collect();
            writeln!(
                f,
                "  {:>7.1}x  {:>6}/{:<8} {}",
                set.lift,
                set.fatal_support,
                set.total_support,
                items.join(", ")
            )?;
        }
        if self.ranked.len() > REPORT_TOP {
            writeln!(f, "  … and {} more", self.ranked.len() - REPORT_TOP)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_support_is_relative_with_floor() {
        let p = FdaParams::default();
        assert_eq!(p.min_support(0), 5);
        assert_eq!(p.min_support(100), 5);
        assert_eq!(p.min_support(1000), 10);
        assert_eq!(p.min_support(12345), 124);
    }

    #[test]
    fn postings_lists_are_row_sorted() {
        let col = vec![1u32, 0, 1, 2, 0, 1];
        let p = Postings::build(&col, 3);
        assert_eq!(p.list(0), &[1, 4]);
        assert_eq!(p.list(1), &[0, 2, 5]);
        assert_eq!(p.list(2), &[3]);
        assert_eq!(p.list(3), &[] as &[u32]);
    }

    #[test]
    fn candidate_generation_joins_and_closes() {
        // Frequent 1-itemsets on dims 0,1,2; pair (1,*)+(2,*) frequent
        // only when both singletons are.
        let f1: Vec<Vec<Item>> = vec![vec![(0, 3)], vec![(1, 7)], vec![(2, 1)]];
        let c2 = gen_candidates(&f1);
        assert_eq!(
            c2,
            vec![
                vec![(0, 3), (1, 7)],
                vec![(0, 3), (2, 1)],
                vec![(1, 7), (2, 1)],
            ]
        );
        // With only two of the three pairs frequent, the triple fails
        // downward closure.
        let f2: Vec<Vec<Item>> = vec![vec![(0, 3), (1, 7)], vec![(0, 3), (2, 1)]];
        assert_eq!(gen_candidates(&f2), Vec::<Vec<Item>>::new());
        let f2b: Vec<Vec<Item>> = vec![
            vec![(0, 3), (1, 7)],
            vec![(0, 3), (2, 1)],
            vec![(1, 7), (2, 1)],
        ];
        assert_eq!(gen_candidates(&f2b), vec![vec![(0, 3), (1, 7), (2, 1)]]);
    }

    #[test]
    fn same_dimension_items_never_join() {
        let f1: Vec<Vec<Item>> = vec![vec![(1, 0)], vec![(1, 1)]];
        assert_eq!(gen_candidates(&f1), Vec::<Vec<Item>>::new());
    }

    #[test]
    fn shard_map_matches_serial_above_gate() {
        let items: Vec<u64> = (0..100_000).collect();
        let serial = shard_map(&items, 1, 1, |&x| x * 3 + 1);
        for t in [2, 7, 16] {
            assert_eq!(shard_map(&items, t, 1, |&x| x * 3 + 1), serial);
        }
    }
}
