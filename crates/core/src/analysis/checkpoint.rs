//! Checkpoint-policy evaluation — the paper's Section VII checkpointing
//! recommendations, made quantitative.
//!
//! Given the job log and the interruption attribution, replay each job
//! under a checkpoint policy and account for:
//!
//! * **lost work**: node-seconds of computation destroyed by an
//!   interruption (work since the last completed checkpoint);
//! * **overhead**: node-seconds spent writing checkpoints (paid by every
//!   job, interrupted or not).
//!
//! Policies:
//!
//! * [`CheckpointPolicy::None`] — run naked; an interruption loses the whole
//!   elapsed run.
//! * [`CheckpointPolicy::Periodic`] — checkpoint every `interval` seconds
//!   from the start.
//! * [`CheckpointPolicy::CoAnalysisInformed`] — the paper's guidance:
//!   skip checkpointing entirely for narrow jobs with no bug history
//!   (size, not length, drives vulnerability — Observation 10 — and their
//!   interruption probability is per-mille); for jobs with an
//!   application-error history, delay the first checkpoint past the first
//!   hour (Observation 11 — early failures are bugs, their state is
//!   worthless); wide jobs checkpoint periodically at the Young interval.

use crate::classify::root_cause::RootCause;
use joblog::{ExecId, JobLog, JobRecord};
use std::collections::{HashMap, HashSet};

/// A checkpointing policy to replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// No checkpoints at all.
    None,
    /// Checkpoint every `interval_secs` seconds.
    Periodic {
        /// Interval between checkpoint completions.
        interval_secs: i64,
    },
    /// The Section VII co-analysis-informed policy.
    CoAnalysisInformed {
        /// Periodic interval used when checkpointing at all.
        interval_secs: i64,
        /// Jobs at or above this many midplanes always checkpoint.
        wide_threshold: u32,
        /// Delay before the first checkpoint for app-error-history jobs.
        first_hour_delay_secs: i64,
    },
}

impl CheckpointPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CheckpointPolicy::None => "no checkpoints",
            CheckpointPolicy::Periodic { .. } => "periodic",
            CheckpointPolicy::CoAnalysisInformed { .. } => "co-analysis informed",
        }
    }
}

/// Node-second accounting for one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointOutcome {
    /// Which policy.
    pub policy: CheckpointPolicy,
    /// Node-seconds destroyed by interruptions (work since last checkpoint).
    pub lost_node_secs: f64,
    /// Node-seconds spent writing checkpoints.
    pub overhead_node_secs: f64,
    /// Jobs that wrote at least one checkpoint.
    pub jobs_checkpointing: usize,
}

impl CheckpointOutcome {
    /// Total cost: lost + overhead.
    pub fn total_cost(&self) -> f64 {
        self.lost_node_secs + self.overhead_node_secs
    }
}

/// Inputs for the replay.
pub struct CheckpointStudy<'a> {
    /// The job log.
    pub jobs: &'a JobLog,
    /// job id → cause for interrupted jobs.
    pub causes: &'a HashMap<u64, RootCause>,
    /// Seconds one checkpoint takes (its cost in wall time × nodes).
    pub checkpoint_cost_secs: f64,
}

impl CheckpointStudy<'_> {
    /// Replay every job under `policy`.
    pub fn evaluate(&self, policy: CheckpointPolicy) -> CheckpointOutcome {
        // Executables with any application-error interruption in the log —
        // the "history" the informed policy reacts to. (Offline stand-in
        // for the online history a scheduler would track.)
        let app_history: HashSet<ExecId> = self
            .causes
            .iter()
            .filter(|&(_, &c)| c == RootCause::ApplicationError)
            .filter_map(|(&id, _)| self.jobs.by_job_id(id).map(|j| j.exec))
            .collect();

        let mut lost = 0.0f64;
        let mut overhead = 0.0f64;
        let mut jobs_checkpointing = 0usize;
        for job in self.jobs.jobs() {
            let elapsed = job.runtime().as_secs() as f64;
            let nodes = f64::from(job.size_midplanes()) * 512.0;
            let interrupted = self.causes.contains_key(&job.job_id);
            let plan = self.plan_for(policy, job, &app_history);
            match plan {
                Plan::Never => {
                    if interrupted {
                        lost += elapsed * nodes;
                    }
                }
                Plan::From { first, every } => {
                    // Checkpoint completion times: first, first+every, ...
                    // capped by the (possibly truncated) runtime.
                    let mut n_ckpts = 0i64;
                    let mut last_ckpt = 0.0f64;
                    let mut t = first as f64;
                    while t + self.checkpoint_cost_secs <= elapsed {
                        n_ckpts += 1;
                        last_ckpt = t + self.checkpoint_cost_secs;
                        t += every as f64;
                    }
                    overhead += n_ckpts as f64 * self.checkpoint_cost_secs * nodes;
                    if n_ckpts > 0 {
                        jobs_checkpointing += 1;
                    }
                    if interrupted {
                        lost += (elapsed - last_ckpt).max(0.0) * nodes;
                    }
                }
            }
        }
        CheckpointOutcome {
            policy,
            lost_node_secs: lost,
            overhead_node_secs: overhead,
            jobs_checkpointing,
        }
    }

    fn plan_for(
        &self,
        policy: CheckpointPolicy,
        job: &JobRecord,
        app_history: &HashSet<ExecId>,
    ) -> Plan {
        match policy {
            CheckpointPolicy::None => Plan::Never,
            CheckpointPolicy::Periodic { interval_secs } => Plan::From {
                first: interval_secs,
                every: interval_secs,
            },
            CheckpointPolicy::CoAnalysisInformed {
                interval_secs,
                wide_threshold,
                first_hour_delay_secs,
            } => {
                // Observation 10: size, not length, drives system-failure
                // vulnerability — narrow jobs with no bug history run at a
                // per-mille interruption risk and are cheaper to rerun than
                // to checkpoint.
                let narrow = job.size_midplanes() < wide_threshold;
                let buggy_history = app_history.contains(&job.exec);
                if narrow && !buggy_history {
                    return Plan::Never;
                }
                // Observation 11: early failures are application bugs whose
                // state is worthless — delay the first checkpoint.
                let first = if buggy_history {
                    first_hour_delay_secs.max(interval_secs)
                } else {
                    interval_secs
                };
                Plan::From {
                    first,
                    every: interval_secs,
                }
            }
        }
    }
}

enum Plan {
    Never,
    From { first: i64, every: i64 },
}

/// Evaluate the three canonical policies with a Young-style interval
/// derived from the measured system MTTI.
pub fn standard_study(
    jobs: &JobLog,
    causes: &HashMap<u64, RootCause>,
    mtti_secs: f64,
    checkpoint_cost_secs: f64,
    wide_threshold: u32,
) -> Vec<CheckpointOutcome> {
    // Young's first-order optimal interval: sqrt(2 · cost · MTTI).
    let young = (2.0 * checkpoint_cost_secs * mtti_secs).sqrt().max(60.0) as i64;
    let study = CheckpointStudy {
        jobs,
        causes,
        checkpoint_cost_secs,
    };
    vec![
        study.evaluate(CheckpointPolicy::None),
        study.evaluate(CheckpointPolicy::Periodic {
            interval_secs: young,
        }),
        study.evaluate(CheckpointPolicy::CoAnalysisInformed {
            interval_secs: young,
            wide_threshold,
            first_hour_delay_secs: 3_600,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use joblog::{ExitStatus, ProjectId, UserId};

    fn job(job_id: u64, exec: u32, runtime: i64, midplanes: u32) -> JobRecord {
        let start = job_id as i64 * 1_000_000;
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(start + runtime),
            partition: bgp_model::Partition::contiguous(0, midplanes).unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn no_checkpoint_loses_whole_runs() {
        let jobs = JobLog::from_jobs(vec![job(1, 1, 10_000, 1), job(2, 2, 10_000, 1)]);
        let mut causes = HashMap::new();
        causes.insert(1u64, RootCause::SystemFailure);
        let study = CheckpointStudy {
            jobs: &jobs,
            causes: &causes,
            checkpoint_cost_secs: 300.0,
        };
        let out = study.evaluate(CheckpointPolicy::None);
        assert_eq!(out.lost_node_secs, 10_000.0 * 512.0);
        assert_eq!(out.overhead_node_secs, 0.0);
        assert_eq!(out.jobs_checkpointing, 0);
    }

    #[test]
    fn periodic_bounds_loss_but_pays_overhead() {
        let jobs = JobLog::from_jobs(vec![job(1, 1, 10_000, 1), job(2, 2, 10_000, 1)]);
        let mut causes = HashMap::new();
        causes.insert(1u64, RootCause::SystemFailure);
        let study = CheckpointStudy {
            jobs: &jobs,
            causes: &causes,
            checkpoint_cost_secs: 300.0,
        };
        let out = study.evaluate(CheckpointPolicy::Periodic {
            interval_secs: 3_000,
        });
        // Checkpoints complete at 3300, 6300, 9300 → 3 per job.
        assert_eq!(out.overhead_node_secs, 2.0 * 3.0 * 300.0 * 512.0);
        // Interrupted job loses 10_000 − 9_300 = 700 s.
        assert_eq!(out.lost_node_secs, 700.0 * 512.0);
        assert_eq!(out.jobs_checkpointing, 2);
        // For this mix the periodic policy beats running naked.
        let naked = study.evaluate(CheckpointPolicy::None);
        assert!(out.total_cost() < naked.total_cost());
    }

    #[test]
    fn informed_policy_skips_narrow_short_jobs() {
        // 1000 narrow 30-minute jobs, none interrupted: informed pays zero,
        // periodic pays overhead on all of them.
        let jobs: Vec<JobRecord> = (0..1000).map(|i| job(i, i as u32, 1_800, 1)).collect();
        let jobs = JobLog::from_jobs(jobs);
        let causes = HashMap::new();
        let study = CheckpointStudy {
            jobs: &jobs,
            causes: &causes,
            checkpoint_cost_secs: 300.0,
        };
        let periodic = study.evaluate(CheckpointPolicy::Periodic { interval_secs: 600 });
        let informed = study.evaluate(CheckpointPolicy::CoAnalysisInformed {
            interval_secs: 600,
            wide_threshold: 32,
            first_hour_delay_secs: 3_600,
        });
        assert!(periodic.overhead_node_secs > 0.0);
        assert_eq!(informed.total_cost(), 0.0);
        assert_eq!(informed.jobs_checkpointing, 0);
    }

    #[test]
    fn informed_policy_delays_first_checkpoint_for_buggy_history() {
        // Exec 7 has an app-error interruption on job 1; job 2 (same exec,
        // long run) gets its first checkpoint only after the first hour.
        let jobs = JobLog::from_jobs(vec![job(1, 7, 600, 1), job(2, 7, 20_000, 1)]);
        let mut causes = HashMap::new();
        causes.insert(1u64, RootCause::ApplicationError);
        let study = CheckpointStudy {
            jobs: &jobs,
            causes: &causes,
            checkpoint_cost_secs: 100.0,
        };
        let informed = study.evaluate(CheckpointPolicy::CoAnalysisInformed {
            interval_secs: 1_000,
            wide_threshold: 32,
            first_hour_delay_secs: 3_600,
        });
        // Job 1 is narrow+short → never. Job 2: first at 3600, then every
        // 1000 until 20_000 → completions at 3700, 4700, ..., 19700 → 17.
        assert_eq!(informed.jobs_checkpointing, 1);
        assert_eq!(informed.overhead_node_secs, 17.0 * 100.0 * 512.0);
    }

    #[test]
    fn standard_study_produces_three_policies() {
        let jobs = JobLog::from_jobs(vec![job(1, 1, 50_000, 64), job(2, 2, 400, 1)]);
        let mut causes = HashMap::new();
        causes.insert(1u64, RootCause::SystemFailure);
        let outcomes = standard_study(&jobs, &causes, 100_000.0, 300.0, 32);
        assert_eq!(outcomes.len(), 3);
        // The interrupted job is wide: both checkpointing policies should
        // beat running naked.
        assert!(outcomes[1].total_cost() < outcomes[0].total_cost());
        assert!(outcomes[2].total_cost() < outcomes[0].total_cost());
    }
}
