//! Failure and job-interruption characterization (Sections V and VI).

pub mod burst;
pub mod checkpoint;
pub mod failure_stats;
pub mod fda;
pub mod interruption;
pub mod midplane;
pub mod propagation;
pub mod repair;
pub mod trend;
pub mod vulnerability;

pub use burst::BurstAnalysis;
pub use failure_stats::FailureStats;
pub use fda::{FdaAnalysis, FdaItemset, FdaParams};
pub use interruption::InterruptionStats;
pub use midplane::MidplaneProfile;
pub use propagation::PropagationAnalysis;
pub use vulnerability::{ResubmissionStats, SizeLengthTable, VulnerabilityAnalysis};
