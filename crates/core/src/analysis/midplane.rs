//! Midplane-level failure characteristics (Section V-B: Figure 4,
//! Observation 5).
//!
//! Three series over the 80 midplanes — fatal-event counts, total workload,
//! and wide-job workload — plus the Pearson correlations that make
//! Observation 5 quantitative: failure counts track *wide-job* workload,
//! not total workload.

use crate::context::AnalysisContext;
use crate::event::Event;
use bgp_model::{topology::NUM_MIDPLANES, MidplaneId};
use bgp_stats::pearson::pearson;

/// Per-midplane profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MidplaneProfile {
    /// Fatal events per midplane (Figure 4a).
    pub fatal_counts: Vec<u32>,
    /// Busy midplane-seconds per midplane (Figure 4b).
    pub workload_secs: Vec<i64>,
    /// Busy midplane-seconds from jobs ≥ `wide_threshold` midplanes
    /// (Figure 4c).
    pub wide_workload_secs: Vec<i64>,
    /// The wide-job threshold used (the paper uses ≥ 32 midplanes).
    pub wide_threshold: u32,
}

impl MidplaneProfile {
    /// Build the three series (the `Midplane` stage; `events` is the fully
    /// filtered stream).
    pub fn new(
        events: &[Event],
        ctx: &AnalysisContext<'_>,
        wide_threshold: u32,
    ) -> MidplaneProfile {
        let n = usize::from(NUM_MIDPLANES);
        let mut fatal_counts = vec![0u32; n];
        for e in events {
            fatal_counts[e.midplane().index()] += 1;
        }
        let mut workload_secs = vec![0i64; n];
        let mut wide_workload_secs = vec![0i64; n];
        for m in MidplaneId::all() {
            workload_secs[m.index()] = ctx.midplane_busy_seconds(m);
            wide_workload_secs[m.index()] = ctx.midplane_busy_seconds_min_size(m, wide_threshold);
        }
        MidplaneProfile {
            fatal_counts,
            workload_secs,
            wide_workload_secs,
            wide_threshold,
        }
    }

    /// Pearson correlation of fatal counts with total workload.
    pub fn corr_with_workload(&self) -> Option<f64> {
        let counts: Vec<f64> = self.fatal_counts.iter().map(|&c| f64::from(c)).collect();
        let load: Vec<f64> = self.workload_secs.iter().map(|&s| s as f64).collect();
        pearson(&counts, &load).ok()
    }

    /// Pearson correlation of fatal counts with wide-job workload.
    pub fn corr_with_wide_workload(&self) -> Option<f64> {
        let counts: Vec<f64> = self.fatal_counts.iter().map(|&c| f64::from(c)).collect();
        let load: Vec<f64> = self.wide_workload_secs.iter().map(|&s| s as f64).collect();
        pearson(&counts, &load).ok()
    }

    /// The `k` midplanes with the most fatal events, most-failing first.
    pub fn top_failing(&self, k: usize) -> Vec<(MidplaneId, u32)> {
        let mut idx: Vec<usize> = (0..self.fatal_counts.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.fatal_counts[i]));
        idx.into_iter()
            .take(k)
            .filter_map(|i| {
                let m = MidplaneId::from_index(i as u8).ok()?;
                Some((m, self.fatal_counts[i]))
            })
            .collect()
    }

    /// Total fatal events in the middle band (indices 32–63) vs. outside —
    /// the visual claim of Figure 4a.
    pub fn middle_band_share(&self) -> f64 {
        let total: u32 = self.fatal_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let middle: u32 = self.fatal_counts[32..64].iter().sum();
        f64::from(middle) / f64::from(total)
    }
}

/// Midplane-level interarrival fits (Section V-B's "Weibull distribution
/// still fits midplane-level failure interarrival distribution well").
///
/// Returns, for every midplane with at least `min_events` events, the
/// Weibull-vs-exponential comparison of its own interarrival stream.
pub fn per_midplane_fits(
    events: &[Event],
    min_events: usize,
) -> Vec<(MidplaneId, bgp_stats::FitComparison)> {
    let mut per: Vec<Vec<i64>> = vec![Vec::new(); usize::from(NUM_MIDPLANES)];
    for e in events {
        per[e.midplane().index()].push(e.time.as_unix());
    }
    let mut out = Vec::new();
    for (i, times) in per.iter_mut().enumerate() {
        if times.len() < min_events {
            continue;
        }
        times.sort_unstable();
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .filter(|&g| g > 0.0)
            .collect();
        if let (Ok(cmp), Ok(m)) = (
            bgp_stats::compare_models(&gaps),
            MidplaneId::from_index(i as u8),
        ) {
            out.push((m, cmp));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(1),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn series_and_correlations() {
        // Events spread over the middle band where the wide job runs, plus a
        // few on one of its midplanes.
        let mut events: Vec<Event> = (0..16u8)
            .map(|i| {
                let m = bgp_model::MidplaneId::from_index(32 + i).unwrap();
                ev(i64::from(i) * 1_000, &m.to_string())
            })
            .collect();
        events.push(ev(90_000, "R20-M0"));
        events.push(ev(91_000, "R20-M0"));
        events.push(ev(92_000, "R20-M0"));
        events.push(ev(93_000, "R20-M0"));
        let jobs = JobLog::from_jobs(vec![
            // Wide job on midplane indices 32..64 (racks R20..R37, 32
            // midplanes).
            job(1, 0, 100_000, "R20-R37"),
            // Narrow job with huge runtime at the head.
            job(2, 0, 500_000, "R00-M0"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let p = MidplaneProfile::new(&events, &ctx, 32);
        assert_eq!(p.fatal_counts.iter().sum::<u32>(), 20);
        assert_eq!(p.fatal_counts[32], 5); // R20-M0 is index 32
        assert_eq!(p.workload_secs[0], 500_000);
        assert_eq!(p.wide_workload_secs[0], 0);
        assert_eq!(p.wide_workload_secs[32], 100_000);
        // Counts follow the wide workload, not the total workload.
        let cw = p.corr_with_wide_workload().unwrap();
        let ct = p.corr_with_workload().unwrap();
        assert!(cw > ct, "wide {cw} vs total {ct}");
        assert!(cw > 0.3, "cw {cw}");
        assert!(p.middle_band_share() > 0.9);
        let top = p.top_failing(1);
        assert_eq!(top[0].0.index(), 32);
        assert_eq!(top[0].1, 5);
    }

    #[test]
    fn empty_inputs() {
        let empty = JobLog::default();
        let ctx = AnalysisContext::for_jobs(&empty);
        let p = MidplaneProfile::new(&[], &ctx, 32);
        assert_eq!(p.middle_band_share(), 0.0);
        // Zero-variance series make correlation undefined.
        assert!(p.corr_with_workload().is_none());
    }
}
