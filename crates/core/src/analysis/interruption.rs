//! Job-interruption rates by cause (Section VI-B: Table V, Figure 6,
//! Observation 7).

use crate::classify::root_cause::{RootCause, RootCauseSummary};
use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use bgp_stats::{compare_models, Ecdf, FitComparison, StatsError};

/// Interarrival fits of job interruptions, split by root cause.
#[derive(Debug, Clone, PartialEq)]
pub struct InterruptionStats {
    /// Interruptions attributed to system failures.
    pub system: CauseStats,
    /// Interruptions attributed to application errors.
    pub application: CauseStats,
}

/// One cause category's interruption statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseStats {
    /// Number of interruptions.
    pub count: usize,
    /// Interruption interarrival sample (seconds).
    pub interarrivals: Vec<f64>,
    /// Model fits (Weibull vs. exponential + LRT), when the sample is big
    /// enough.
    pub fits: Option<FitComparison>,
}

impl CauseStats {
    fn from_times(mut times: Vec<i64>) -> CauseStats {
        times.sort_unstable();
        let interarrivals: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .filter(|&dt| dt > 0.0)
            .collect();
        let fits = compare_models(&interarrivals).ok();
        CauseStats {
            count: times.len(),
            interarrivals,
            fits,
        }
    }

    /// Mean time to interruption from the Weibull fit (Table V "Mean").
    pub fn mtti(&self) -> Option<f64> {
        self.fits.as_ref().map(|f| f.weibull.mean())
    }

    /// Figure 6 series: `(x, empirical, weibull, exponential)`.
    pub fn cdf_series(&self, points: usize) -> Result<Vec<(f64, f64, f64, f64)>, StatsError> {
        let fits = self.fits.as_ref().ok_or(StatsError::NotEnoughData {
            needed: 2,
            got: self.interarrivals.len(),
        })?;
        let ecdf = Ecdf::new(&self.interarrivals)?;
        Ok(ecdf
            .log_spaced(points)?
            .into_iter()
            .map(|(x, emp)| (x, emp, fits.weibull.cdf(x), fits.exponential.cdf(x)))
            .collect())
    }
}

impl InterruptionStats {
    /// Split interruptions by the root cause of their events and fit each
    /// stream (the `Interruption` stage).
    pub fn new(
        events: &[Event],
        matching: &Matching,
        root_cause: &RootCauseSummary,
        ctx: &AnalysisContext<'_>,
    ) -> InterruptionStats {
        let mut sys_times = Vec::new();
        let mut app_times = Vec::new();
        for (&job_id, &event_idx) in &matching.job_to_event {
            let Some(job) = ctx.job(job_id) else {
                continue;
            };
            let code = events[event_idx].errcode;
            match root_cause.cause(code) {
                Some(RootCause::ApplicationError) => app_times.push(job.end_time.as_unix()),
                _ => sys_times.push(job.end_time.as_unix()),
            }
        }
        InterruptionStats {
            system: CauseStats::from_times(sys_times),
            application: CauseStats::from_times(app_times),
        }
    }

    /// Total interruptions.
    pub fn total(&self) -> usize {
        self.system.count + self.application.count
    }

    /// MTTI(system) / MTBF ratio against a supplied failure MTBF
    /// (Observation 7: 4.07 on Intrepid, against the pre-job-filter MTBF).
    pub fn mtti_over_mtbf(&self, mtbf: f64) -> Option<f64> {
        self.system.mtti().map(|mtti| mtti / mtbf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::root_cause::{RootCauseRule, RootCauseSummary};
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            "R00-M0".parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, end: i64) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(end - 100),
            start_time: Timestamp::from_unix(end - 90),
            end_time: Timestamp::from_unix(end),
            partition: "R00-M0".parse().unwrap(),
            exit: ExitStatus::Failed(1),
        }
    }

    #[test]
    fn splits_by_cause() {
        let cat = Catalog::standard();
        let sys_code = cat.lookup("_bgp_err_ddr_controller").unwrap();
        let app_code = cat.lookup("_bgp_err_app_out_of_memory").unwrap();
        let mut events = Vec::new();
        let mut jobs_vec = Vec::new();
        let mut matching = Matching::default();
        // 30 alternating interruptions.
        for i in 0..30i64 {
            let t = 1_000 + i * 7_919 + i * i * 37; // irregular spacing
            let name = if i % 2 == 0 {
                "_bgp_err_ddr_controller"
            } else {
                "_bgp_err_app_out_of_memory"
            };
            events.push(ev(t, name));
            jobs_vec.push(job(i as u64, t));
            matching.job_to_event.insert(i as u64, i as usize);
        }
        let jobs = JobLog::from_jobs(jobs_vec);
        let mut rc = RootCauseSummary::default();
        rc.per_code.insert(
            sys_code,
            (RootCause::SystemFailure, RootCauseRule::StickyLocation),
        );
        rc.per_code.insert(
            app_code,
            (
                RootCause::ApplicationError,
                RootCauseRule::FollowsExecutable,
            ),
        );
        let ctx = AnalysisContext::for_jobs(&jobs);
        let stats = InterruptionStats::new(&events, &matching, &rc, &ctx);
        assert_eq!(stats.system.count, 15);
        assert_eq!(stats.application.count, 15);
        assert_eq!(stats.total(), 30);
        // Interarrivals within each category are ~2×7919.
        assert!(stats.system.fits.is_some());
        let mtti = stats.system.mtti().unwrap();
        assert!(mtti > 10_000.0 && mtti < 30_000.0, "mtti {mtti}");
        let ratio = stats.mtti_over_mtbf(4_000.0).unwrap();
        assert!(ratio > 2.0);
        let series = stats.application.cdf_series(10).unwrap();
        assert_eq!(series.len(), 10);
    }

    #[test]
    fn unclassified_codes_default_to_system() {
        let events = vec![
            ev(100, "_bgp_err_kernel_panic"),
            ev(9_000, "_bgp_err_kernel_panic"),
        ];
        let jobs = JobLog::from_jobs(vec![job(1, 100), job(2, 9_000)]);
        let mut matching = Matching::default();
        matching.job_to_event.insert(1, 0);
        matching.job_to_event.insert(2, 1);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let stats = InterruptionStats::new(&events, &matching, &RootCauseSummary::default(), &ctx);
        assert_eq!(stats.system.count, 2);
        assert_eq!(stats.application.count, 0);
        assert!(stats.application.fits.is_none());
        assert!(stats.application.mtti().is_none());
        assert!(stats.application.cdf_series(5).is_err());
    }
}
