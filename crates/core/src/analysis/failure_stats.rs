//! Systemwide failure-interarrival characterization (Section V-A:
//! Table IV and Figure 3).

use crate::event::{interarrivals, Event};
use bgp_stats::{compare_models, Ecdf, FitComparison, StatsError};

/// Interarrival fits for one event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureStats {
    /// Number of events in the stream.
    pub n_events: usize,
    /// The interarrival sample (seconds).
    pub interarrivals: Vec<f64>,
    /// Weibull vs. exponential fits and the likelihood-ratio test.
    pub fits: FitComparison,
}

impl FailureStats {
    /// Fit interarrival models to an event stream.
    pub fn from_events(events: &[Event]) -> Result<FailureStats, StatsError> {
        let interarrivals = interarrivals(events);
        let fits = compare_models(&interarrivals)?;
        Ok(FailureStats {
            n_events: events.len(),
            interarrivals,
            fits,
        })
    }

    /// Mean time between failures implied by the Weibull fit (the paper's
    /// Table IV "Mean" column).
    pub fn mtbf(&self) -> f64 {
        self.fits.weibull.mean()
    }

    /// Empirical CDF of interarrivals with fitted model values at the same
    /// points — the Figure 3 series: `(x, empirical, weibull, exponential)`.
    pub fn cdf_series(&self, points: usize) -> Result<Vec<(f64, f64, f64, f64)>, StatsError> {
        let ecdf = Ecdf::new(&self.interarrivals)?;
        Ok(ecdf
            .log_spaced(points)?
            .into_iter()
            .map(|(x, emp)| {
                (
                    x,
                    emp,
                    self.fits.weibull.cdf(x),
                    self.fits.exponential.cdf(x),
                )
            })
            .collect())
    }
}

/// Table IV: before vs. after job-related filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIv {
    /// Fatal-event interarrival fits before job-related filtering.
    pub before: FailureStats,
    /// The same after job-related filtering.
    pub after: FailureStats,
}

impl TableIv {
    /// Build from the two event streams.
    pub fn new(before: &[Event], after: &[Event]) -> Result<TableIv, StatsError> {
        Ok(TableIv {
            before: FailureStats::from_events(before)?,
            after: FailureStats::from_events(after)?,
        })
    }

    /// The paper's headline: MTBF grows ~3× after job-related filtering.
    pub fn mtbf_ratio(&self) -> f64 {
        self.after.mtbf() / self.before.mtbf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use bgp_stats::sample::weibull as sample_weibull;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use raslog::Catalog;

    fn synthetic_events(n: usize, shape: f64, scale: f64, seed: u64) -> Vec<Event> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let mut t = 0i64;
        (0..n)
            .map(|i| {
                t += sample_weibull(&mut rng, shape, scale).max(1.0) as i64;
                Event::synthetic(
                    Timestamp::from_unix(t),
                    "R00-M0".parse().unwrap(),
                    code,
                    1,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn recovers_weibull_shape_and_prefers_weibull() {
        let events = synthetic_events(4_000, 0.55, 40_000.0, 1);
        let stats = FailureStats::from_events(&events).unwrap();
        assert!(stats.fits.weibull.shape < 0.7);
        assert!(stats.fits.weibull_preferred(0.01));
        assert!(stats.mtbf() > 0.0);
        assert_eq!(stats.n_events, 4_000);
    }

    #[test]
    fn cdf_series_is_monotone_and_bracketed() {
        let events = synthetic_events(1_000, 0.6, 10_000.0, 2);
        let stats = FailureStats::from_events(&events).unwrap();
        let series = stats.cdf_series(40).unwrap();
        assert_eq!(series.len(), 40);
        let mut prev = 0.0;
        for (x, emp, w, e) in series {
            assert!(x > 0.0);
            assert!(emp >= prev);
            prev = emp;
            for v in [emp, w, e] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn table_iv_ratio() {
        // "After" events are a thinned version of "before": removing chained
        // events increases the mean gap.
        let before = synthetic_events(3_000, 0.5, 20_000.0, 3);
        let after: Vec<Event> = before.iter().step_by(3).copied().collect();
        let t = TableIv::new(&before, &after).unwrap();
        assert!(t.mtbf_ratio() > 1.5, "ratio {}", t.mtbf_ratio());
    }

    #[test]
    fn too_few_events_is_an_error() {
        let events = synthetic_events(1, 0.5, 1_000.0, 4);
        assert!(FailureStats::from_events(&events).is_err());
    }
}
