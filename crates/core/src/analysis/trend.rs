//! Failure-rate trend over the study window.
//!
//! A single Weibull fit (Table IV) assumes the interarrival process is
//! roughly stationary across the 237 days. This module checks that
//! assumption the way a reviewer would: weekly event counts with an OLS
//! trend line. A strong slope would mean the "failure characteristics" are
//! really a mixture of early-life and steady-state regimes (the classic
//! bathtub concern in the Schroeder–Gibson lineage).

use crate::event::Event;
use bgp_model::Timestamp;
use bgp_stats::linreg::{linear_fit, LinearFit};

/// Weekly event counts and their trend.
#[derive(Debug, Clone)]
pub struct FailureTrend {
    /// Events per week, week 0 first.
    pub weekly_counts: Vec<u32>,
    /// OLS fit of count vs. week index (None if < 3 weeks or degenerate).
    pub fit: Option<LinearFit>,
}

impl FailureTrend {
    /// Bin events into calendar weeks from `origin` and fit the trend.
    pub fn new(events: &[Event], origin: Timestamp, end: Timestamp) -> FailureTrend {
        let weeks = (((end - origin).as_secs()) / (7 * 86_400)).max(1) as usize;
        let mut weekly_counts = vec![0u32; weeks];
        for e in events {
            let w = (e.time - origin).as_secs() / (7 * 86_400);
            if (0..weeks as i64).contains(&w) {
                weekly_counts[w as usize] += 1;
            }
        }
        let xs: Vec<f64> = (0..weekly_counts.len()).map(|i| i as f64).collect();
        let ys: Vec<f64> = weekly_counts.iter().map(|&c| f64::from(c)).collect();
        let fit = linear_fit(&xs, &ys).ok();
        FailureTrend { weekly_counts, fit }
    }

    /// Relative drift over the window: predicted last-week rate over
    /// predicted first-week rate (1.0 = flat). None when the fit is missing
    /// or the intercept is non-positive.
    pub fn relative_drift(&self) -> Option<f64> {
        let f = self.fit?;
        let first = f.predict(0.0);
        let last = f.predict(self.weekly_counts.len().saturating_sub(1) as f64);
        (first > 0.0).then(|| last / first)
    }

    /// Is the process stationary enough for a single fit?
    /// (|r| below `r_threshold`, or drift within `drift_band` of 1.)
    pub fn is_stationary(&self, r_threshold: f64, drift_band: f64) -> bool {
        let Some(f) = self.fit else { return true };
        if f.r.abs() < r_threshold {
            return true;
        }
        self.relative_drift()
            .map(|d| (d - 1.0).abs() < drift_band)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::Catalog;

    fn ev(t: i64) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            "R00-M0".parse().unwrap(),
            Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap(),
            1,
            t as u64,
        )
    }

    #[test]
    fn flat_process_is_stationary() {
        // 3 events per week for 10 weeks.
        let week = 7 * 86_400;
        let events: Vec<Event> = (0..10)
            .flat_map(|w| (0..3).map(move |k| ev(w * week + k * 10_000)))
            .collect();
        let t = FailureTrend::new(
            &events,
            Timestamp::from_unix(0),
            Timestamp::from_unix(10 * week),
        );
        assert_eq!(t.weekly_counts, vec![3; 10]);
        assert!(t.is_stationary(0.5, 0.5));
        assert_eq!(t.relative_drift(), Some(1.0));
    }

    #[test]
    fn strong_growth_is_flagged() {
        // Week w has w+1 events: strong positive trend.
        let week = 7 * 86_400;
        let events: Vec<Event> = (0..10i64)
            .flat_map(|w| (0..=w).map(move |k| ev(w * week + k * 1_000)))
            .collect();
        let t = FailureTrend::new(
            &events,
            Timestamp::from_unix(0),
            Timestamp::from_unix(10 * week),
        );
        let f = t.fit.unwrap();
        assert!(f.slope > 0.9);
        assert!(f.r > 0.95);
        assert!(!t.is_stationary(0.5, 0.5));
        assert!(t.relative_drift().unwrap() > 3.0);
    }

    #[test]
    fn short_windows_degrade_gracefully() {
        let t = FailureTrend::new(
            &[ev(100)],
            Timestamp::from_unix(0),
            Timestamp::from_unix(86_400),
        );
        assert_eq!(t.weekly_counts.len(), 1);
        assert!(t.fit.is_none());
        assert!(t.is_stationary(0.5, 0.5));
        assert!(t.relative_drift().is_none());
    }

    #[test]
    fn simulated_window_is_roughly_stationary() {
        // The calibrated fault process has no built-in drift; the analysis
        // should agree.
        use bgp_sim::{SimConfig, Simulation};
        let mut cfg = SimConfig::small_test(88);
        cfg.days = 35; // 5 weeks
        cfg.num_execs = 1_400;
        let out = Simulation::new(cfg).expect("valid config").run();
        let r = crate::pipeline::CoAnalysis::default().run(&out.ras, &out.jobs);
        let span = out.ras.time_span().unwrap();
        let t = FailureTrend::new(&r.events, span.0, span.1);
        assert!(t.weekly_counts.len() >= 4);
        assert!(
            t.is_stationary(0.8, 0.8),
            "unexpected drift: {:?} counts {:?}",
            t.fit,
            t.weekly_counts
        );
    }
}
