//! Failure propagation (Section VI-C: Observation 8).
//!
//! *Temporal* propagation is the chain phenomenon job-related filtering
//! removes (scheduler reallocating broken nodes, users resubmitting buggy
//! code). *Spatial* propagation is a single event interrupting multiple
//! jobs running at different locations at the same time — on Intrepid only
//! the shared-file-system codes do this (7.22 % of fatal events).

use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use raslog::ErrCode;
use std::collections::HashMap;

/// Spatial/temporal propagation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationAnalysis {
    /// Events that interrupted ≥ 2 jobs on non-overlapping partitions.
    pub spatial_events: usize,
    /// Total interrupting (case-1) events.
    pub interrupting_events: usize,
    /// The codes responsible for spatial propagation, with event counts.
    pub spatial_codes: HashMap<ErrCode, usize>,
    /// Events flagged as temporal (job-related) chains by the filter.
    pub temporal_chain_events: usize,
}

impl PropagationAnalysis {
    /// Analyze an event stream with its matching (the `Propagation` stage);
    /// `chain_flags` is the job-related filter's redundancy marking
    /// (temporal propagation).
    pub fn new(
        events: &[Event],
        matching: &Matching,
        ctx: &AnalysisContext<'_>,
        chain_flags: &[bool],
    ) -> PropagationAnalysis {
        assert_eq!(events.len(), matching.per_event.len());
        let mut spatial_events = 0usize;
        let mut interrupting_events = 0usize;
        let mut spatial_codes: HashMap<ErrCode, usize> = HashMap::new();
        for (e, m) in events.iter().zip(&matching.per_event) {
            if m.victims.is_empty() {
                continue;
            }
            interrupting_events += 1;
            if m.victims.len() >= 2 {
                // Spatial propagation requires distinct jobs on
                // non-overlapping hardware (a parallel job's own fan-out has
                // already been merged by the earlier filters).
                let partitions: Vec<_> = m
                    .victims
                    .iter()
                    .filter_map(|&id| ctx.job(id))
                    .map(|j| j.partition)
                    .collect();
                let mut disjoint = false;
                for i in 0..partitions.len() {
                    for j in i + 1..partitions.len() {
                        if !partitions[i].overlaps(partitions[j]) {
                            disjoint = true;
                        }
                    }
                }
                if disjoint {
                    spatial_events += 1;
                    *spatial_codes.entry(e.errcode).or_insert(0) += 1;
                }
            }
        }
        PropagationAnalysis {
            spatial_events,
            interrupting_events,
            spatial_codes,
            temporal_chain_events: chain_flags.iter().filter(|&&f| f).count(),
        }
    }

    /// Fraction of interrupting events that propagate spatially (paper:
    /// 7.22 % of fatal events; denominator = interrupting events).
    pub fn spatial_fraction(&self) -> f64 {
        if self.interrupting_events == 0 {
            return 0.0;
        }
        self.spatial_events as f64 / self.interrupting_events as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{EventCase, EventMatch};
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            "R00-M0-I0".parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(0),
            start_time: Timestamp::from_unix(10),
            end_time: Timestamp::from_unix(1_000),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Failed(1),
        }
    }

    #[test]
    fn detects_spatial_propagation() {
        let jobs = JobLog::from_jobs(vec![job(1, "R00-M0"), job(2, "R05-M1"), job(3, "R00-M0")]);
        let events = vec![
            ev(1_000, "CiodHungProxy"),
            ev(50_000, "_bgp_err_kernel_panic"),
        ];
        let matching = Matching {
            per_event: vec![
                EventMatch {
                    victims: vec![1, 2],
                    running: 2,
                    case: EventCase::Interrupted,
                },
                EventMatch {
                    victims: vec![3],
                    running: 1,
                    case: EventCase::Interrupted,
                },
            ],
            job_to_event: [(1, 0), (2, 0), (3, 1)].into_iter().collect(),
        };
        let ctx = AnalysisContext::for_jobs(&jobs);
        let p = PropagationAnalysis::new(&events, &matching, &ctx, &[false, false]);
        assert_eq!(p.spatial_events, 1);
        assert_eq!(p.interrupting_events, 2);
        assert!((p.spatial_fraction() - 0.5).abs() < 1e-12);
        let ciod = Catalog::standard().lookup("CiodHungProxy").unwrap();
        assert_eq!(p.spatial_codes[&ciod], 1);
    }

    #[test]
    fn same_partition_multi_victims_not_spatial() {
        // Two victims on the SAME midplane (a chain mis-attributed within
        // the window) — overlapping partitions, so not spatial propagation.
        let jobs = JobLog::from_jobs(vec![job(1, "R00-M0"), job(2, "R00-M0")]);
        let events = vec![ev(1_000, "_bgp_err_ddr_controller")];
        let matching = Matching {
            per_event: vec![EventMatch {
                victims: vec![1, 2],
                running: 1,
                case: EventCase::Interrupted,
            }],
            job_to_event: [(1, 0), (2, 0)].into_iter().collect(),
        };
        let ctx = AnalysisContext::for_jobs(&jobs);
        let p = PropagationAnalysis::new(&events, &matching, &ctx, &[true]);
        assert_eq!(p.spatial_events, 0);
        assert_eq!(p.temporal_chain_events, 1);
    }

    #[test]
    fn empty() {
        let empty = JobLog::default();
        let ctx = AnalysisContext::for_jobs(&empty);
        let p = PropagationAnalysis::new(&[], &Matching::default(), &ctx, &[]);
        assert_eq!(p.spatial_fraction(), 0.0);
    }
}
