//! Outage-episode reconstruction: how long did broken hardware stay in
//! service, and what did that cost?
//!
//! The Schroeder–Gibson lineage the paper builds on measures time-to-repair
//! from administrator databases; pure log co-analysis has to *infer* it. An
//! **outage episode** at a midplane is reconstructed as:
//!
//! * it opens with an interrupting event of a code at a midplane;
//! * it is extended by further interruptions of the same code there with no
//!   clean run in between (the job-related-redundancy chain);
//! * it closes when a job runs to completion on that midplane (evidence of
//!   repair), or at the log's end (right-censored).
//!
//! The estimated outage duration is *last chain event − first event*, a
//! lower bound on the true broken interval; the jobs killed during the
//! episode are its cost. The simulator's ground truth lets tests check the
//! estimates actually track real repair times.

use crate::event::Event;
use crate::matching::Matching;
use bgp_model::{MidplaneId, Timestamp};
use joblog::JobLog;
use raslog::ErrCode;
use std::collections::HashMap;

/// One reconstructed outage episode.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageEpisode {
    /// The error code reported throughout the episode.
    pub errcode: ErrCode,
    /// The afflicted midplane.
    pub midplane: MidplaneId,
    /// Time of the first interrupting event.
    pub start: Timestamp,
    /// Time of the last chained interrupting event.
    pub last_event: Timestamp,
    /// When a clean run first completed there afterwards (None if the log
    /// ends first — right-censored).
    pub cleared_by: Option<Timestamp>,
    /// Jobs interrupted during the episode.
    pub victims: usize,
}

impl OutageEpisode {
    /// Lower-bound outage duration in seconds (last event − first event).
    pub fn min_duration_secs(&self) -> i64 {
        (self.last_event - self.start).as_secs()
    }

    /// Upper-bound outage duration: until the clearing job's completion
    /// (None when censored).
    pub fn max_duration_secs(&self) -> Option<i64> {
        self.cleared_by.map(|t| (t - self.start).as_secs())
    }
}

/// Reconstruct outage episodes from the filtered events and their matching.
///
/// Only *chains* qualify (≥ 2 interruptions of the same code at the same
/// midplane with no clean run between): a single interruption gives no
/// evidence that the hardware stayed broken.
pub fn reconstruct_outages(
    events: &[Event],
    matching: &Matching,
    jobs: &JobLog,
) -> Vec<OutageEpisode> {
    assert_eq!(events.len(), matching.per_event.len());
    // Gather interrupting events per (code, midplane) in time order (events
    // are already time-sorted).
    let mut streams: HashMap<(ErrCode, u8), Vec<(Timestamp, usize)>> = HashMap::new();
    for (e, m) in events.iter().zip(&matching.per_event) {
        if m.victims.is_empty() {
            continue;
        }
        streams
            .entry((e.errcode, e.midplane().index() as u8))
            .or_default()
            .push((e.time, m.victims.len()));
    }

    let mut episodes = Vec::new();
    for ((code, mp_idx), hits) in streams {
        let Ok(mp) = MidplaneId::from_index(mp_idx) else {
            continue;
        };
        let clean_between = |a: Timestamp, b: Timestamp| {
            jobs.overlapping(mp, a, b).iter().any(|j| {
                j.start_time > a && j.end_time < b && !matching.job_to_event.contains_key(&j.job_id)
            })
        };
        let mut i = 0usize;
        while i < hits.len() {
            let (start, mut victims) = hits[i];
            let mut last_event = start;
            let mut j = i + 1;
            while j < hits.len() && !clean_between(last_event, hits[j].0) {
                last_event = hits[j].0;
                victims += hits[j].1;
                j += 1;
            }
            if j > i + 1 {
                // A chain: find the clearing completion after the last event.
                let horizon = last_event + bgp_model::Duration::days(30);
                let cleared_by = jobs
                    .overlapping(mp, last_event, horizon)
                    .iter()
                    .filter(|jb| {
                        jb.start_time > last_event
                            && !matching.job_to_event.contains_key(&jb.job_id)
                    })
                    .map(|jb| jb.end_time)
                    .min();
                episodes.push(OutageEpisode {
                    errcode: code,
                    midplane: mp,
                    start,
                    last_event,
                    cleared_by,
                    victims,
                });
            }
            i = j;
        }
    }
    episodes.sort_by_key(|e| (e.start, e.midplane.index()));
    episodes
}

/// Summary statistics over reconstructed episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSummary {
    /// Number of episodes (chains of ≥ 2 interruptions).
    pub episodes: usize,
    /// Median lower-bound duration, seconds.
    pub median_min_duration_secs: Option<i64>,
    /// Total jobs killed inside episodes.
    pub total_victims: usize,
    /// Episodes never observed to clear (right-censored).
    pub censored: usize,
}

/// Summarize a set of episodes.
pub fn summarize(episodes: &[OutageEpisode]) -> OutageSummary {
    let mut durations: Vec<i64> = episodes.iter().map(|e| e.min_duration_secs()).collect();
    durations.sort_unstable();
    OutageSummary {
        episodes: episodes.len(),
        median_min_duration_secs: (!durations.is_empty()).then(|| durations[durations.len() / 2]),
        total_victims: episodes.iter().map(|e| e.victims).sum(),
        censored: episodes.iter().filter(|e| e.cleared_by.is_none()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::Matcher;
    use joblog::{ExecId, ExitStatus, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, start: i64, end: i64, part: &str, failed: bool) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(job_id as u32),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: if failed {
                ExitStatus::Failed(143)
            } else {
                ExitStatus::Completed
            },
        }
    }

    #[test]
    fn chain_becomes_episode_with_clearing_time() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 1_000, "R00-M0", true),
            job(2, 1_200, 2_200, "R00-M0", true),
            job(3, 2_400, 3_400, "R00-M0", true),
            job(4, 4_000, 6_000, "R00-M0", false), // repair evidence
        ]);
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(2_200, "R00-M0", "_bgp_err_ddr_controller"),
            ev(3_400, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        let episodes = reconstruct_outages(&events, &matching, &jobs);
        assert_eq!(episodes.len(), 1);
        let e = &episodes[0];
        assert_eq!(e.victims, 3);
        assert_eq!(e.min_duration_secs(), 2_400);
        assert_eq!(e.cleared_by, Some(Timestamp::from_unix(6_000)));
        assert_eq!(e.max_duration_secs(), Some(5_000));
        let s = summarize(&episodes);
        assert_eq!(s.episodes, 1);
        assert_eq!(s.total_victims, 3);
        assert_eq!(s.censored, 0);
        assert_eq!(s.median_min_duration_secs, Some(2_400));
    }

    #[test]
    fn single_interruption_is_not_an_episode() {
        let jobs = JobLog::from_jobs(vec![job(1, 0, 1_000, "R00-M0", true)]);
        let events = vec![ev(1_000, "R00-M0", "_bgp_err_ddr_controller")];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        assert!(reconstruct_outages(&events, &matching, &jobs).is_empty());
        let s = summarize(&[]);
        assert_eq!(s.episodes, 0);
        assert_eq!(s.median_min_duration_secs, None);
    }

    #[test]
    fn clean_run_splits_episodes() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 1_000, "R00-M0", true),
            job(2, 1_200, 2_200, "R00-M0", true),
            job(3, 3_000, 4_000, "R00-M0", false), // clears first episode
            job(4, 5_000, 6_000, "R00-M0", true),  // a fresh fault, alone
        ]);
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(2_200, "R00-M0", "_bgp_err_ddr_controller"),
            ev(6_000, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        let episodes = reconstruct_outages(&events, &matching, &jobs);
        // One two-event episode; the trailing singleton does not qualify.
        assert_eq!(episodes.len(), 1);
        assert_eq!(episodes[0].victims, 2);
    }

    #[test]
    fn censored_when_no_clean_run_follows() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 0, 1_000, "R00-M0", true),
            job(2, 1_200, 2_200, "R00-M0", true),
        ]);
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(2_200, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let ctx = crate::context::AnalysisContext::for_jobs(&jobs);
        let matching = Matcher::default().run(&events, &ctx);
        let episodes = reconstruct_outages(&events, &matching, &jobs);
        assert_eq!(episodes.len(), 1);
        assert_eq!(episodes[0].cleared_by, None);
        assert_eq!(summarize(&episodes).censored, 1);
    }

    #[test]
    fn estimates_track_ground_truth_repairs() {
        // On a real simulated run, reconstructed lower-bound durations must
        // sit below the true broken intervals, and most episodes should
        // correspond to persistent faults.
        use bgp_sim::{SimConfig, Simulation};
        let mut cfg = SimConfig::small_test(61);
        cfg.days = 30;
        cfg.num_execs = 1_200;
        let out = Simulation::new(cfg).expect("valid config").run();
        let r = crate::pipeline::CoAnalysis::default().run(&out.ras, &out.jobs);
        let episodes = reconstruct_outages(&r.events, &r.matching, &out.jobs);
        if episodes.is_empty() {
            // Tiny windows can lack chains; that is itself informative but
            // makes the rest unverifiable.
            return;
        }
        for e in &episodes {
            assert!(e.min_duration_secs() >= 0);
            if let Some(max) = e.max_duration_secs() {
                assert!(max >= e.min_duration_secs());
            }
            assert!(e.victims >= 2);
        }
        // Each episode should coincide with at least one true persistent
        // fault at that midplane.
        let matched = episodes
            .iter()
            .filter(|e| {
                out.truth.faults.iter().any(|f| {
                    f.persistent
                        && f.location.midplane().map(|m| m.index()) == Some(e.midplane.index())
                })
            })
            .count();
        assert!(
            matched * 2 >= episodes.len(),
            "only {matched} of {} episodes align with persistent faults",
            episodes.len()
        );
    }
}
