//! The shared, immutable index layer every pipeline stage reads.
//!
//! Before the stage graph existed, each analysis constructor took `&JobLog`
//! and rebuilt its own lookups from scratch — `by_exec()` hash groupings,
//! linear `by_job_id` scans, ad-hoc per-code event shards. An
//! [`AnalysisContext`] precomputes all of them once per run:
//!
//! * the **raw fatal event stream**, in time order (the filters' input);
//! * **per-code event shards** — one code-sorted event buffer with
//!   `(ErrCode, Range)` slices into it, sorted by [`ErrCode`] so parallel
//!   filtering has a deterministic shard → thread assignment without
//!   duplicating every event;
//! * a **job-id index** making job lookup O(1) instead of a linear scan;
//! * **executable groups** (the paper's "distinct job" notion), sorted by
//!   [`ExecId`] with each group in submission order;
//! * a **per-midplane job-termination index** (end-time-sorted ranks) that
//!   the matching sweep walks with monotone cursors instead of re-scanning
//!   a machine-wide termination window per event;
//! * the RAS log's **time span**, for burst-rate denominators.
//!
//! Occupancy and termination queries (`running_at`, `overlapping`,
//! `ended_in_window`, busy-seconds series) delegate to the [`JobLog`]'s own
//! interval indexes, which are already built once at log construction; the
//! context re-exposes them so stages depend on one type only.

use crate::event::Event;
use bgp_model::{Duration, MidplaneId, Timestamp};
use joblog::{ExecId, JobLog, JobRecord};
use raslog::{ErrCode, RasLog};
use std::collections::HashMap;
use std::ops::Range;

/// Immutable per-run indexes shared by every stage of the pipeline.
///
/// Borrowing (rather than owning) the [`JobLog`] keeps construction cheap
/// and lets callers reuse one log across many contexts (e.g. benchmark
/// ablations re-running the pipeline with different stage sets).
#[derive(Debug, Clone)]
pub struct AnalysisContext<'a> {
    jobs: &'a JobLog,
    raw_events: Vec<Event>,
    /// All raw events, stably sorted by error code (time order within a
    /// code is preserved). `code_slices` carves this single buffer into
    /// per-code shards, so no event is ever stored twice.
    code_events: Vec<Event>,
    code_slices: Vec<(ErrCode, Range<usize>)>,
    job_index: HashMap<u64, u32>,
    exec_groups: Vec<(ExecId, Vec<&'a JobRecord>)>,
    /// Job indices sorted by `(end_time, job_id)` — the machine-wide
    /// termination order. A position in this permutation is a *rank*;
    /// because rank order is end-time order, a time-sorted event sweep can
    /// walk it with monotone cursors.
    end_order: Vec<u32>,
    span: Option<(Timestamp, Timestamp)>,
}

impl<'a> AnalysisContext<'a> {
    /// Build the full context for one co-analysis run: extract the fatal
    /// event stream from `ras` and index `jobs`.
    pub fn new(ras: &RasLog, jobs: &'a JobLog) -> AnalysisContext<'a> {
        AnalysisContext::from_events(Event::from_fatal_records(ras), ras.time_span(), jobs)
    }

    /// Build a context from an already-extracted event stream. `span` is the
    /// observation window of the underlying log (not just the fatal subset).
    pub fn from_events(
        raw_events: Vec<Event>,
        span: Option<(Timestamp, Timestamp)>,
        jobs: &'a JobLog,
    ) -> AnalysisContext<'a> {
        // One code-sorted copy of the stream; the stable sort keeps each
        // code's events in time order, matching what per-code accumulation
        // used to produce. Slices (not per-code Vecs) mean the events are
        // stored once, and sorting by code keeps the shard → thread
        // assignment deterministic.
        let mut code_events = raw_events.clone();
        code_events.sort_by_key(|e| e.errcode);
        let mut code_slices: Vec<(ErrCode, Range<usize>)> = Vec::new();
        let mut start = 0usize;
        for (i, e) in code_events.iter().enumerate() {
            if e.errcode != code_events[start].errcode {
                code_slices.push((code_events[start].errcode, start..i));
                start = i;
            }
            if i + 1 == code_events.len() {
                code_slices.push((e.errcode, start..i + 1));
            }
        }

        let mut job_index = HashMap::with_capacity(jobs.len());
        for (i, j) in jobs.jobs().iter().enumerate() {
            job_index.insert(j.job_id, i as u32);
        }

        // Termination index: rank = position in the machine-wide
        // (end_time, job_id) order (identical to JobLog::ended_in_window's
        // iteration order).
        let mut end_order: Vec<u32> = (0..jobs.len() as u32).collect();
        end_order.sort_by_key(|&i| {
            let j = &jobs.jobs()[i as usize];
            (j.end_time, j.job_id)
        });

        let mut groups: HashMap<ExecId, Vec<&'a JobRecord>> = HashMap::new();
        for j in jobs.jobs() {
            groups.entry(j.exec).or_default().push(j);
        }
        let mut exec_groups: Vec<(ExecId, Vec<&'a JobRecord>)> = groups.into_iter().collect();
        exec_groups.sort_by_key(|(exec, _)| *exec);
        for (_, group) in &mut exec_groups {
            group.sort_by_key(|j| (j.queue_time, j.job_id));
        }

        AnalysisContext {
            jobs,
            raw_events,
            code_events,
            code_slices,
            job_index,
            exec_groups,
            end_order,
            span,
        }
    }

    /// A context with no RAS events — job-side indexes only. Convenient for
    /// unit tests exercising a single stage against a hand-built job log.
    pub fn for_jobs(jobs: &'a JobLog) -> AnalysisContext<'a> {
        AnalysisContext::from_events(Vec::new(), None, jobs)
    }

    /// The raw fatal event stream, in time order.
    pub fn raw_events(&self) -> &[Event] {
        &self.raw_events
    }

    /// Raw fatal events grouped by error code, shards sorted by code.
    /// Each shard borrows a slice of the single code-sorted buffer.
    pub fn code_shards(&self) -> Vec<(ErrCode, &[Event])> {
        self.code_slices
            .iter()
            .filter_map(|(code, r)| self.code_events.get(r.clone()).map(|s| (*code, s)))
            .collect()
    }

    /// The job at machine-wide termination rank `rank` (a position in the
    /// `(end_time, job_id)` permutation of the job table).
    pub(crate) fn job_by_end_rank(&self, rank: u32) -> Option<&'a JobRecord> {
        self.end_order
            .get(rank as usize)
            .and_then(|&i| self.jobs.jobs().get(i as usize))
    }

    /// The observation window of the underlying RAS log, if known.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        self.span
    }

    /// All jobs, sorted by start time.
    pub fn job_records(&self) -> &'a [JobRecord] {
        self.jobs.jobs()
    }

    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Look up a job by id — O(1), unlike [`JobLog::by_job_id`]'s scan.
    pub fn job(&self, job_id: u64) -> Option<&'a JobRecord> {
        self.job_index
            .get(&job_id)
            .and_then(|&i| self.jobs.jobs().get(i as usize))
    }

    /// Index (into [`AnalysisContext::job_records`]) of a record borrowed
    /// *from that slice* — e.g. via [`AnalysisContext::exec_groups`] — by
    /// pointer offset: O(1) with no hashing. Returns `None` for a record
    /// that does not live in the slice.
    pub(crate) fn record_index(&self, j: &JobRecord) -> Option<usize> {
        let base = self.jobs.jobs().as_ptr() as usize;
        let off = (std::ptr::from_ref(j) as usize).checked_sub(base)?;
        let size = std::mem::size_of::<JobRecord>();
        (off % size == 0 && off / size < self.jobs.len()).then(|| off / size)
    }

    /// Duration of the longest job in the log — the lookback bound for
    /// overlap scans on the start-sorted job table.
    pub(crate) fn max_job_duration(&self) -> Duration {
        self.jobs.max_duration()
    }

    /// Jobs grouped by executable, groups sorted by [`ExecId`] and each
    /// group in submission (queue-time) order.
    pub fn exec_groups(&self) -> &[(ExecId, Vec<&'a JobRecord>)] {
        &self.exec_groups
    }

    /// Number of distinct executables.
    pub fn distinct_execs(&self) -> usize {
        self.exec_groups.len()
    }

    /// Jobs running at instant `t` on midplane `m`.
    pub fn running_at(&self, m: MidplaneId, t: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.running_at(m, t)
    }

    /// Jobs on midplane `m` whose execution interval overlaps `[t0, t1)`.
    pub fn overlapping(&self, m: MidplaneId, t0: Timestamp, t1: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.overlapping(m, t0, t1)
    }

    /// Visit jobs on midplane `m` overlapping `[t0, t1)` without allocating
    /// (descending start-time order).
    pub(crate) fn for_each_overlapping<F: FnMut(&'a JobRecord)>(
        &self,
        m: MidplaneId,
        t0: Timestamp,
        t1: Timestamp,
        f: F,
    ) {
        self.jobs.for_each_overlapping(m, t0, t1, f);
    }

    /// Jobs anywhere on the machine with `t0 <= end_time < t1`.
    pub fn ended_in_window(&self, t0: Timestamp, t1: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.ended_in_window(t0, t1)
    }

    /// Busy seconds on midplane `m` (the Figure 4b workload series).
    pub fn midplane_busy_seconds(&self, m: MidplaneId) -> i64 {
        self.jobs.midplane_busy_seconds(m)
    }

    /// Busy seconds on midplane `m` counting only jobs of at least
    /// `min_midplanes` midplanes (the Figure 4c wide-job series).
    pub fn midplane_busy_seconds_min_size(&self, m: MidplaneId, min_midplanes: u32) -> i64 {
        self.jobs.midplane_busy_seconds_min_size(m, min_midplanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joblog::{ExitStatus, ProjectId, UserId};
    use raslog::{Catalog, RasRecord};

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(1),
            project: ProjectId(1),
            queue_time: Timestamp::from_unix(start - 50),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    #[test]
    fn shards_are_sorted_by_code_and_cover_all_events() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 200, "R00-M1", "_bgp_err_ddr_controller"),
            rec(3, 300, "R00-M0", "_bgp_err_kernel_panic"),
            rec(4, 400, "R01-M0", "_bgp_warn_ecc_corrected"),
        ]);
        let jobs = JobLog::default();
        let ctx = AnalysisContext::new(&log, &jobs);
        assert_eq!(ctx.raw_events().len(), 3);
        let shards = ctx.code_shards();
        assert!(shards.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = shards.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, ctx.raw_events().len());
        assert_eq!(ctx.span(), log.time_span());
    }

    #[test]
    fn job_lookup_matches_linear_scan() {
        let jobs = JobLog::from_jobs(vec![
            job(7, 1, 100, 500, "R00-M0"),
            job(3, 1, 600, 700, "R00-M1"),
            job(9, 2, 50, 5000, "R01-M0"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        for id in [3u64, 7, 9] {
            assert_eq!(
                ctx.job(id).map(|j| j.job_id),
                jobs.by_job_id(id).map(|j| j.job_id)
            );
        }
        assert!(ctx.job(42).is_none());
        assert_eq!(ctx.job_count(), 3);
        assert_eq!(ctx.job_records().len(), 3);
    }

    #[test]
    fn exec_groups_sorted_and_in_submission_order() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 10, 100, 500, "R00-M0"),
            job(2, 10, 600, 700, "R00-M0"),
            job(3, 5, 200, 900, "R00-M1"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let groups = ctx.exec_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, ExecId(5));
        assert_eq!(groups[1].0, ExecId(10));
        assert_eq!(
            groups[1].1.iter().map(|j| j.job_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(ctx.distinct_execs(), 2);
    }

    #[test]
    fn record_index_round_trips_for_borrowed_records() {
        let jobs = JobLog::from_jobs(vec![
            job(7, 1, 100, 500, "R00-M0"),
            job(3, 1, 600, 700, "R00-M1"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        for (i, j) in ctx.job_records().iter().enumerate() {
            assert_eq!(ctx.record_index(j), Some(i));
        }
        for (_, group) in ctx.exec_groups() {
            for j in group {
                let i = ctx
                    .record_index(j)
                    .expect("exec_groups borrows from job_records");
                assert_eq!(ctx.job_records()[i].job_id, j.job_id);
            }
        }
        let outside = job(9, 2, 0, 1, "R01-M0");
        assert_eq!(ctx.record_index(&outside), None);
    }

    #[test]
    fn occupancy_queries_delegate_to_the_job_log() {
        let jobs = JobLog::from_jobs(vec![job(1, 1, 100, 500, "R00-M0")]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        assert_eq!(ctx.running_at(m0, Timestamp::from_unix(300)).len(), 1);
        assert_eq!(
            ctx.overlapping(m0, Timestamp::from_unix(0), Timestamp::from_unix(1000))
                .len(),
            1
        );
        assert_eq!(
            ctx.ended_in_window(Timestamp::from_unix(0), Timestamp::from_unix(1000))
                .len(),
            1
        );
        assert_eq!(ctx.midplane_busy_seconds(m0), 400);
        assert_eq!(ctx.midplane_busy_seconds_min_size(m0, 4), 0);
    }
}
