//! The shared, immutable index layer every pipeline stage reads.
//!
//! Before the stage graph existed, each analysis constructor took `&JobLog`
//! and rebuilt its own lookups from scratch — `by_exec()` hash groupings,
//! linear `by_job_id` scans, ad-hoc per-code event shards. An
//! [`AnalysisContext`] precomputes all of them once per run:
//!
//! * the **raw fatal event stream**, in time order (the filters' input);
//! * **per-code event shards** — one code-sorted event buffer with
//!   `(ErrCode, Range)` slices into it, sorted by [`ErrCode`] so parallel
//!   filtering has a deterministic shard → thread assignment without
//!   duplicating every event;
//! * a **job-id index** making job lookup O(1) instead of a linear scan;
//! * **executable groups** (the paper's "distinct job" notion), sorted by
//!   [`ExecId`] with each group in submission order;
//! * a **per-midplane job-termination index** (end-time-sorted ranks) that
//!   the matching sweep walks with monotone cursors instead of re-scanning
//!   a machine-wide termination window per event;
//! * the RAS log's **time span**, for burst-rate denominators.
//!
//! Occupancy and termination queries (`running_at`, `overlapping`,
//! `ended_in_window`, busy-seconds series) delegate to the [`JobLog`]'s own
//! interval indexes, which are already built once at log construction; the
//! context re-exposes them so stages depend on one type only.

use crate::analysis::fda::JobDims;
use crate::event::Event;
use bgp_model::{Duration, MidplaneId, Timestamp};
use joblog::{ExecId, JobLog, JobRecord};
use raslog::{ErrCode, RasLog, RasRecord};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::OnceLock;

/// One day's (or one poll's) worth of new log lines, ready to fold into a
/// resident analysis via `DeltaSession::append`.
///
/// Both sides may be empty; records may arrive in any order and may repeat
/// timestamps already seen — the merge below is defined so the result is
/// identical to rebuilding from the concatenated input.
#[derive(Debug, Clone, Default)]
pub struct AppendBatch {
    /// New RAS records (any order).
    pub ras: Vec<RasRecord>,
    /// New job rows (any order).
    pub jobs: Vec<JobRecord>,
}

impl AppendBatch {
    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.ras.is_empty() && self.jobs.is_empty()
    }
}

/// What an [`AppendBatch`] actually touched — the dirty set the delta
/// executor (`stage::execute_delta`) intersects with each stage's declared
/// [`StageId::ctx_reads`](crate::stage::StageId::ctx_reads) to decide which
/// stages can reuse their cached output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContextDelta {
    /// Error codes whose per-code shard gained events (sorted, deduped).
    pub dirty_codes: Vec<ErrCode>,
    /// RAS records appended (fatal or not).
    pub ras_appended: usize,
    /// Fatal events appended (the subset of `ras_appended` the pipeline
    /// sees).
    pub events_appended: usize,
    /// Job rows appended.
    pub jobs_appended: usize,
    /// Did the observation window (time span) move?
    pub span_changed: bool,
}

/// The owned, lifetime-free event-side half of an [`AnalysisContext`]: the
/// raw fatal stream, the per-code shard index, and the observation span.
///
/// A resident analysis keeps an `EventStore` alive across appends and
/// rebuilds only the (cheap) job-side indexes per run: `from_store` /
/// `into_store` move the event buffers in and out of a context without
/// copying them. [`EventStore::append_ras`] merges a batch into the sorted
/// indexes shard by shard — untouched shards are copied wholesale, never
/// re-sorted — and reports which shards went dirty.
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    raw_events: Vec<Event>,
    code_events: Vec<Event>,
    code_slices: Vec<(ErrCode, Range<usize>)>,
    span: Option<(Timestamp, Timestamp)>,
}

impl EventStore {
    /// Extract and index the fatal event stream of `ras`.
    pub fn from_ras(ras: &RasLog) -> EventStore {
        EventStore::from_events(Event::from_fatal_records(ras), ras.time_span())
    }

    /// Index an already-extracted event stream. `span` is the observation
    /// window of the underlying log (not just the fatal subset).
    pub fn from_events(raw_events: Vec<Event>, span: Option<(Timestamp, Timestamp)>) -> EventStore {
        // One code-sorted copy of the stream; the stable sort keeps each
        // code's events in time order, matching what per-code accumulation
        // used to produce. Slices (not per-code Vecs) mean the events are
        // stored once, and sorting by code keeps the shard → thread
        // assignment deterministic.
        let (code_events, code_slices) = index_by_code(&raw_events);
        EventStore {
            raw_events,
            code_events,
            code_slices,
            span,
        }
    }

    /// The raw fatal event stream, in `(time, first_recid)` order.
    pub fn raw_events(&self) -> &[Event] {
        &self.raw_events
    }

    /// The observation window, if any records have been seen.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        self.span
    }

    /// Merge a batch of RAS records into the sorted indexes.
    ///
    /// Contract: after this returns, the store is *identical* (every byte of
    /// every buffer) to one built by `from_ras` over the concatenation of
    /// all records ever passed in — the bit-identity gate `run_delta` rests
    /// on. This holds because a stable merge with base-before-batch tie
    /// order is exactly what a stable sort of the concatenated input
    /// produces, applied once to the raw stream and once per dirty shard.
    pub fn append_ras(&mut self, records: Vec<RasRecord>) -> ContextDelta {
        let ras_appended = records.len();
        if records.is_empty() {
            return ContextDelta::default();
        }
        let batch = RasLog::from_records(records);
        let new_span = match (self.span, batch.time_span()) {
            (Some((a0, a1)), Some((b0, b1))) => Some((a0.min(b0), a1.max(b1))),
            (one, other) => one.or(other),
        };
        let span_changed = new_span != self.span;
        self.span = new_span;

        let batch_events = Event::from_fatal_records(&batch);
        if batch_events.is_empty() {
            return ContextDelta {
                ras_appended,
                span_changed,
                ..ContextDelta::default()
            };
        }

        merge_sorted_events(&mut self.raw_events, &batch_events);

        // Per-code rebuild: walk the (sorted) old and batch shard lists in
        // lockstep. Clean shards are copied wholesale; shards present on
        // both sides are merged; brand-new codes are spliced in.
        let (batch_code_events, batch_slices) = index_by_code(&batch_events);
        let mut events = Vec::with_capacity(self.code_events.len() + batch_code_events.len());
        let mut slices: Vec<(ErrCode, Range<usize>)> =
            Vec::with_capacity(self.code_slices.len() + batch_slices.len());
        let mut dirty_codes = Vec::with_capacity(batch_slices.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.code_slices.len() || j < batch_slices.len() {
            let ord = match (self.code_slices.get(i), batch_slices.get(j)) {
                (Some((a, _)), Some((b, _))) => a.cmp(b),
                (Some(_), None) => std::cmp::Ordering::Less,
                _ => std::cmp::Ordering::Greater,
            };
            let start = events.len();
            let code = match ord {
                std::cmp::Ordering::Less => {
                    let Some((code, r)) = self.code_slices.get(i) else {
                        break;
                    };
                    events.extend_from_slice(self.code_events.get(r.clone()).unwrap_or(&[]));
                    i += 1;
                    *code
                }
                std::cmp::Ordering::Greater => {
                    let Some((code, r)) = batch_slices.get(j) else {
                        break;
                    };
                    events.extend_from_slice(batch_code_events.get(r.clone()).unwrap_or(&[]));
                    dirty_codes.push(*code);
                    j += 1;
                    *code
                }
                std::cmp::Ordering::Equal => {
                    let (Some((code, r_old)), Some((_, r_new))) =
                        (self.code_slices.get(i), batch_slices.get(j))
                    else {
                        break;
                    };
                    let mut shard = Vec::from(self.code_events.get(r_old.clone()).unwrap_or(&[]));
                    merge_sorted_events(
                        &mut shard,
                        batch_code_events.get(r_new.clone()).unwrap_or(&[]),
                    );
                    events.extend_from_slice(&shard);
                    dirty_codes.push(*code);
                    i += 1;
                    j += 1;
                    *code
                }
            };
            slices.push((code, start..events.len()));
        }
        self.code_events = events;
        self.code_slices = slices;

        ContextDelta {
            dirty_codes,
            ras_appended,
            events_appended: batch_events.len(),
            jobs_appended: 0,
            span_changed,
        }
    }
}

/// Stably sort `events` by code and carve the buffer into per-code slices.
fn index_by_code(events: &[Event]) -> (Vec<Event>, Vec<(ErrCode, Range<usize>)>) {
    let mut code_events = events.to_vec();
    code_events.sort_by_key(|e| e.errcode);
    let mut code_slices: Vec<(ErrCode, Range<usize>)> = Vec::new();
    let mut start = 0usize;
    for (i, e) in code_events.iter().enumerate() {
        if e.errcode != code_events[start].errcode {
            code_slices.push((code_events[start].errcode, start..i));
            start = i;
        }
        if i + 1 == code_events.len() {
            code_slices.push((e.errcode, start..i + 1));
        }
    }
    (code_events, code_slices)
}

/// Merge `batch` (sorted by `(time, first_recid)`) into the sorted `base`,
/// base-first on ties — byte-for-byte what a stable sort of the
/// concatenation produces. Appends without shifting when the batch lands
/// entirely at or past the tail (the common day-over-day case).
fn merge_sorted_events(base: &mut Vec<Event>, batch: &[Event]) {
    let Some(first) = batch.first() else {
        return;
    };
    let tail = base
        .last()
        .is_none_or(|last| (first.time, first.first_recid) >= (last.time, last.first_recid));
    if tail {
        base.extend_from_slice(batch);
        return;
    }
    let old = std::mem::take(base);
    base.reserve(old.len() + batch.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < batch.len() {
        let (Some(a), Some(b)) = (old.get(i), batch.get(j)) else {
            break;
        };
        if (b.time, b.first_recid) < (a.time, a.first_recid) {
            base.push(*b);
            j += 1;
        } else {
            base.push(*a);
            i += 1;
        }
    }
    base.extend_from_slice(old.get(i..).unwrap_or(&[]));
    base.extend_from_slice(batch.get(j..).unwrap_or(&[]));
}

/// Immutable per-run indexes shared by every stage of the pipeline.
///
/// Borrowing (rather than owning) the [`JobLog`] keeps construction cheap
/// and lets callers reuse one log across many contexts (e.g. benchmark
/// ablations re-running the pipeline with different stage sets).
#[derive(Debug, Clone)]
pub struct AnalysisContext<'a> {
    jobs: &'a JobLog,
    raw_events: Vec<Event>,
    /// All raw events, stably sorted by error code (time order within a
    /// code is preserved). `code_slices` carves this single buffer into
    /// per-code shards, so no event is ever stored twice.
    code_events: Vec<Event>,
    code_slices: Vec<(ErrCode, Range<usize>)>,
    job_index: HashMap<u64, u32>,
    exec_groups: Vec<(ExecId, Vec<&'a JobRecord>)>,
    /// Job indices sorted by `(end_time, job_id)` — the machine-wide
    /// termination order. A position in this permutation is a *rank*;
    /// because rank order is end-time order, a time-sorted event sweep can
    /// walk it with monotone cursors.
    end_order: Vec<u32>,
    span: Option<(Timestamp, Timestamp)>,
    /// Interned job-dimension columns for the FDA lattice, built lazily on
    /// first use (only the `Fda` stage pays for them).
    fda_dims: OnceLock<JobDims>,
}

impl<'a> AnalysisContext<'a> {
    /// Build the full context for one co-analysis run: extract the fatal
    /// event stream from `ras` and index `jobs`.
    pub fn new(ras: &RasLog, jobs: &'a JobLog) -> AnalysisContext<'a> {
        AnalysisContext::from_events(Event::from_fatal_records(ras), ras.time_span(), jobs)
    }

    /// Build a context from an already-extracted event stream. `span` is the
    /// observation window of the underlying log (not just the fatal subset).
    pub fn from_events(
        raw_events: Vec<Event>,
        span: Option<(Timestamp, Timestamp)>,
        jobs: &'a JobLog,
    ) -> AnalysisContext<'a> {
        AnalysisContext::from_store(EventStore::from_events(raw_events, span), jobs)
    }

    /// Build a context around a resident [`EventStore`], rebuilding only the
    /// job-side indexes (job-id map, termination ranks, exec groups). The
    /// event buffers move in without copying; [`AnalysisContext::into_store`]
    /// moves them back out after a run.
    pub fn from_store(store: EventStore, jobs: &'a JobLog) -> AnalysisContext<'a> {
        let EventStore {
            raw_events,
            code_events,
            code_slices,
            span,
        } = store;

        let mut job_index = HashMap::with_capacity(jobs.len());
        for (i, j) in jobs.jobs().iter().enumerate() {
            job_index.insert(j.job_id, i as u32);
        }

        // Termination index: rank = position in the machine-wide
        // (end_time, job_id) order (identical to JobLog::ended_in_window's
        // iteration order).
        let mut end_order: Vec<u32> = (0..jobs.len() as u32).collect();
        end_order.sort_by_key(|&i| {
            let j = &jobs.jobs()[i as usize];
            (j.end_time, j.job_id)
        });

        let mut groups: HashMap<ExecId, Vec<&'a JobRecord>> = HashMap::new();
        for j in jobs.jobs() {
            groups.entry(j.exec).or_default().push(j);
        }
        let mut exec_groups: Vec<(ExecId, Vec<&'a JobRecord>)> = groups.into_iter().collect();
        exec_groups.sort_by_key(|(exec, _)| *exec);
        for (_, group) in &mut exec_groups {
            group.sort_by_key(|j| (j.queue_time, j.job_id));
        }

        AnalysisContext {
            jobs,
            raw_events,
            code_events,
            code_slices,
            job_index,
            exec_groups,
            end_order,
            span,
            fda_dims: OnceLock::new(),
        }
    }

    /// A context with no RAS events — job-side indexes only. Convenient for
    /// unit tests exercising a single stage against a hand-built job log.
    pub fn for_jobs(jobs: &'a JobLog) -> AnalysisContext<'a> {
        AnalysisContext::from_events(Vec::new(), None, jobs)
    }

    /// Recover the owned event-side indexes, dropping the (cheaply rebuilt)
    /// job-side ones. Inverse of [`AnalysisContext::from_store`].
    pub fn into_store(self) -> EventStore {
        EventStore {
            raw_events: self.raw_events,
            code_events: self.code_events,
            code_slices: self.code_slices,
            span: self.span,
        }
    }

    /// The raw fatal event stream, in time order.
    pub fn raw_events(&self) -> &[Event] {
        &self.raw_events
    }

    /// Raw fatal events grouped by error code, shards sorted by code.
    /// Each shard borrows a slice of the single code-sorted buffer.
    pub fn code_shards(&self) -> Vec<(ErrCode, &[Event])> {
        self.code_slices
            .iter()
            .filter_map(|(code, r)| self.code_events.get(r.clone()).map(|s| (*code, s)))
            .collect()
    }

    /// The interned job-dimension columns of the FDA lattice (midplane,
    /// user, project, executable, size — one dense-`u32` column each, plus
    /// the sorted dictionaries behind the ids). Built lazily on first call
    /// and memoized for the context's lifetime, so only the `Fda` stage
    /// pays the columnarization cost.
    pub fn fda_columns(&self) -> &JobDims {
        self.fda_dims
            .get_or_init(|| JobDims::from_jobs(self.jobs.jobs()))
    }

    /// The job at machine-wide termination rank `rank` (a position in the
    /// `(end_time, job_id)` permutation of the job table).
    pub(crate) fn job_by_end_rank(&self, rank: u32) -> Option<&'a JobRecord> {
        self.end_order
            .get(rank as usize)
            .and_then(|&i| self.jobs.jobs().get(i as usize))
    }

    /// The observation window of the underlying RAS log, if known.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        self.span
    }

    /// All jobs, sorted by start time.
    pub fn job_records(&self) -> &'a [JobRecord] {
        self.jobs.jobs()
    }

    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Look up a job by id — O(1), unlike [`JobLog::by_job_id`]'s scan.
    pub fn job(&self, job_id: u64) -> Option<&'a JobRecord> {
        self.job_index
            .get(&job_id)
            .and_then(|&i| self.jobs.jobs().get(i as usize))
    }

    /// Index (into [`AnalysisContext::job_records`]) of a record borrowed
    /// *from that slice* — e.g. via [`AnalysisContext::exec_groups`] — by
    /// pointer offset: O(1) with no hashing. Returns `None` for a record
    /// that does not live in the slice.
    pub(crate) fn record_index(&self, j: &JobRecord) -> Option<usize> {
        let base = self.jobs.jobs().as_ptr() as usize;
        let off = (std::ptr::from_ref(j) as usize).checked_sub(base)?;
        let size = std::mem::size_of::<JobRecord>();
        (off % size == 0 && off / size < self.jobs.len()).then(|| off / size)
    }

    /// Duration of the longest job in the log — the lookback bound for
    /// overlap scans on the start-sorted job table.
    pub(crate) fn max_job_duration(&self) -> Duration {
        self.jobs.max_duration()
    }

    /// Jobs grouped by executable, groups sorted by [`ExecId`] and each
    /// group in submission (queue-time) order.
    pub fn exec_groups(&self) -> &[(ExecId, Vec<&'a JobRecord>)] {
        &self.exec_groups
    }

    /// Number of distinct executables.
    pub fn distinct_execs(&self) -> usize {
        self.exec_groups.len()
    }

    /// Jobs running at instant `t` on midplane `m`.
    pub fn running_at(&self, m: MidplaneId, t: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.running_at(m, t)
    }

    /// Jobs on midplane `m` whose execution interval overlaps `[t0, t1)`.
    pub fn overlapping(&self, m: MidplaneId, t0: Timestamp, t1: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.overlapping(m, t0, t1)
    }

    /// Visit jobs on midplane `m` overlapping `[t0, t1)` without allocating
    /// (descending start-time order).
    pub(crate) fn for_each_overlapping<F: FnMut(&'a JobRecord)>(
        &self,
        m: MidplaneId,
        t0: Timestamp,
        t1: Timestamp,
        f: F,
    ) {
        self.jobs.for_each_overlapping(m, t0, t1, f);
    }

    /// Jobs anywhere on the machine with `t0 <= end_time < t1`.
    pub fn ended_in_window(&self, t0: Timestamp, t1: Timestamp) -> Vec<&'a JobRecord> {
        self.jobs.ended_in_window(t0, t1)
    }

    /// Busy seconds on midplane `m` (the Figure 4b workload series).
    pub fn midplane_busy_seconds(&self, m: MidplaneId) -> i64 {
        self.jobs.midplane_busy_seconds(m)
    }

    /// Busy seconds on midplane `m` counting only jobs of at least
    /// `min_midplanes` midplanes (the Figure 4c wide-job series).
    pub fn midplane_busy_seconds_min_size(&self, m: MidplaneId, min_midplanes: u32) -> i64 {
        self.jobs.midplane_busy_seconds_min_size(m, min_midplanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joblog::{ExitStatus, ProjectId, UserId};
    use raslog::{Catalog, RasRecord};

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(1),
            project: ProjectId(1),
            queue_time: Timestamp::from_unix(start - 50),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Completed,
        }
    }

    fn rec(recid: u64, t: i64, loc: &str, name: &str) -> RasRecord {
        RasRecord::new(
            recid,
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
        )
    }

    #[test]
    fn shards_are_sorted_by_code_and_cover_all_events() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 200, "R00-M1", "_bgp_err_ddr_controller"),
            rec(3, 300, "R00-M0", "_bgp_err_kernel_panic"),
            rec(4, 400, "R01-M0", "_bgp_warn_ecc_corrected"),
        ]);
        let jobs = JobLog::default();
        let ctx = AnalysisContext::new(&log, &jobs);
        assert_eq!(ctx.raw_events().len(), 3);
        let shards = ctx.code_shards();
        assert!(shards.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = shards.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, ctx.raw_events().len());
        assert_eq!(ctx.span(), log.time_span());
    }

    #[test]
    fn job_lookup_matches_linear_scan() {
        let jobs = JobLog::from_jobs(vec![
            job(7, 1, 100, 500, "R00-M0"),
            job(3, 1, 600, 700, "R00-M1"),
            job(9, 2, 50, 5000, "R01-M0"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        for id in [3u64, 7, 9] {
            assert_eq!(
                ctx.job(id).map(|j| j.job_id),
                jobs.by_job_id(id).map(|j| j.job_id)
            );
        }
        assert!(ctx.job(42).is_none());
        assert_eq!(ctx.job_count(), 3);
        assert_eq!(ctx.job_records().len(), 3);
    }

    #[test]
    fn exec_groups_sorted_and_in_submission_order() {
        let jobs = JobLog::from_jobs(vec![
            job(1, 10, 100, 500, "R00-M0"),
            job(2, 10, 600, 700, "R00-M0"),
            job(3, 5, 200, 900, "R00-M1"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let groups = ctx.exec_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, ExecId(5));
        assert_eq!(groups[1].0, ExecId(10));
        assert_eq!(
            groups[1].1.iter().map(|j| j.job_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(ctx.distinct_execs(), 2);
    }

    #[test]
    fn record_index_round_trips_for_borrowed_records() {
        let jobs = JobLog::from_jobs(vec![
            job(7, 1, 100, 500, "R00-M0"),
            job(3, 1, 600, 700, "R00-M1"),
        ]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        for (i, j) in ctx.job_records().iter().enumerate() {
            assert_eq!(ctx.record_index(j), Some(i));
        }
        for (_, group) in ctx.exec_groups() {
            for j in group {
                let i = ctx
                    .record_index(j)
                    .expect("exec_groups borrows from job_records");
                assert_eq!(ctx.job_records()[i].job_id, j.job_id);
            }
        }
        let outside = job(9, 2, 0, 1, "R01-M0");
        assert_eq!(ctx.record_index(&outside), None);
    }

    /// Build a store by appending `tail` onto `head` and assert every
    /// buffer is identical to indexing the concatenation in one shot.
    fn assert_append_equals_rebuild(head: Vec<RasRecord>, tail: Vec<RasRecord>) -> ContextDelta {
        let mut all = head.clone();
        all.extend(tail.iter().cloned());
        let oneshot = EventStore::from_ras(&RasLog::from_records(all));
        let mut delta_store = EventStore::from_ras(&RasLog::from_records(head));
        let delta = delta_store.append_ras(tail);
        assert_eq!(delta_store.raw_events, oneshot.raw_events);
        assert_eq!(delta_store.code_events, oneshot.code_events);
        assert_eq!(delta_store.code_slices, oneshot.code_slices);
        assert_eq!(delta_store.span, oneshot.span);
        delta
    }

    #[test]
    fn append_tail_batch_matches_rebuild() {
        let head = vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 200, "R00-M1", "_bgp_err_ddr_controller"),
        ];
        let tail = vec![
            rec(3, 300, "R00-M0", "_bgp_err_kernel_panic"),
            rec(4, 400, "R01-M0", "_bgp_err_torus_sender_fifo"),
        ];
        let delta = assert_append_equals_rebuild(head, tail);
        assert_eq!(delta.ras_appended, 2);
        assert_eq!(delta.events_appended, 2);
        assert_eq!(delta.dirty_codes.len(), 2);
        assert!(delta.span_changed);
    }

    #[test]
    fn append_out_of_order_batch_matches_rebuild() {
        // Batch records land *before* and *between* base records, and repeat
        // a base timestamp — the merge must still equal the one-shot build.
        let head = vec![
            rec(10, 500, "R00-M0", "_bgp_err_kernel_panic"),
            rec(11, 900, "R00-M1", "_bgp_err_kernel_panic"),
        ];
        let tail = vec![
            rec(12, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(13, 500, "R01-M0", "_bgp_err_ddr_controller"),
            rec(14, 700, "R00-M0", "_bgp_err_kernel_panic"),
        ];
        let delta = assert_append_equals_rebuild(head, tail);
        assert!(delta.span_changed);
    }

    #[test]
    fn append_empty_and_nonfatal_batches_are_clean() {
        let head = vec![rec(1, 100, "R00-M0", "_bgp_err_kernel_panic")];
        let mut store = EventStore::from_ras(&RasLog::from_records(head.clone()));
        let delta = store.append_ras(Vec::new());
        assert_eq!(delta, ContextDelta::default());
        // A batch with no FATAL records dirties no shard (but may move the
        // span).
        let delta = assert_append_equals_rebuild(
            head,
            vec![rec(2, 900, "R00-M0", "_bgp_warn_ecc_corrected")],
        );
        assert!(delta.dirty_codes.is_empty());
        assert_eq!(delta.events_appended, 0);
        assert_eq!(delta.ras_appended, 1);
        assert!(delta.span_changed);
    }

    #[test]
    fn from_store_round_trips_through_a_context() {
        let log = RasLog::from_records(vec![
            rec(1, 100, "R00-M0", "_bgp_err_kernel_panic"),
            rec(2, 200, "R00-M1", "_bgp_err_ddr_controller"),
        ]);
        let jobs = JobLog::from_jobs(vec![job(7, 1, 50, 500, "R00-M0")]);
        let store = EventStore::from_ras(&log);
        let ctx = AnalysisContext::from_store(store.clone(), &jobs);
        let direct = AnalysisContext::new(&log, &jobs);
        assert_eq!(ctx.raw_events(), direct.raw_events());
        assert_eq!(ctx.code_shards(), direct.code_shards());
        assert_eq!(ctx.span(), direct.span());
        assert_eq!(ctx.job(7).map(|j| j.job_id), Some(7));
        let back = ctx.into_store();
        assert_eq!(back.raw_events, store.raw_events);
        assert_eq!(back.code_slices, store.code_slices);
    }

    #[test]
    fn occupancy_queries_delegate_to_the_job_log() {
        let jobs = JobLog::from_jobs(vec![job(1, 1, 100, 500, "R00-M0")]);
        let ctx = AnalysisContext::for_jobs(&jobs);
        let m0: MidplaneId = "R00-M0".parse().unwrap();
        assert_eq!(ctx.running_at(m0, Timestamp::from_unix(300)).len(), 1);
        assert_eq!(
            ctx.overlapping(m0, Timestamp::from_unix(0), Timestamp::from_unix(1000))
                .len(),
            1
        );
        assert_eq!(
            ctx.ended_in_window(Timestamp::from_unix(0), Timestamp::from_unix(1000))
                .len(),
            1
        );
        assert_eq!(ctx.midplane_busy_seconds(m0), 400);
        assert_eq!(ctx.midplane_busy_seconds_min_size(m0, 4), 0);
    }
}
