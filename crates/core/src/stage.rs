//! Stage graph: named pipeline passes over a shared [`AnalysisContext`].
//!
//! Every pass of the paper's Figure-1 dataflow is a [`Stage`] with an
//! explicit identity ([`StageId`]) and declared dependencies
//! ([`StageId::deps`]). The executor ([`execute`]) walks the graph in
//! dependency waves and runs independent stages of a wave concurrently —
//! the per-code sharding of the temporal/spatial filters and the fan-out
//! of the characterization passes go through the same fork-join point
//! ([`fork_join`]). Callers choose which passes to run with an
//! [`AnalysisSet`]; dependencies are closed over automatically, so asking
//! for `Midplane` alone pulls in filtering, matching, and job-related
//! filtering but skips the other characterization passes.

use crate::analysis::failure_stats::TableIv;
use crate::analysis::{
    BurstAnalysis, FdaAnalysis, InterruptionStats, MidplaneProfile, PropagationAnalysis,
    VulnerabilityAnalysis,
};
use crate::classify::{
    classify_impact, classify_root_cause_with_threads, ImpactSummary, RootCauseSummary,
};
use crate::context::{AnalysisContext, ContextDelta};
use crate::event::Event;
use crate::filter::job_related::JobRelatedOutcome;
use crate::filter::{CausalRule, FilterStats, JobRelatedFilter};
use crate::matching::Matching;
use crate::pipeline::{CoAnalysisConfig, CoAnalysisResult};
use joblog::JobRecord;
use raslog::ErrCode;
use std::sync::atomic::{AtomicU16, Ordering};

/// Identity of one pipeline pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum StageId {
    /// Temporal + spatial dedup, sharded per error code.
    TemporalSpatial = 0,
    /// Causal (cross-code) filtering.
    Causal = 1,
    /// Event ↔ job matching.
    Matching = 2,
    /// Job-related redundancy filtering.
    JobRelated = 3,
    /// Impact classification (Section IV-A).
    Impact = 4,
    /// Root-cause classification (Section IV-B).
    RootCause = 5,
    /// Table IV interarrival fits.
    TableIv = 6,
    /// Figure 4 midplane profile.
    Midplane = 7,
    /// Figure 5 / Observation 6 burst analysis.
    Burst = 8,
    /// Table V / Figure 6 interruption statistics.
    Interruption = 9,
    /// Observation 8 propagation analysis.
    Propagation = 10,
    /// Section VI-D vulnerability analysis.
    Vulnerability = 11,
    /// Fast Dimensional Analysis: frequent-itemset root-cause mining.
    Fda = 12,
}

impl StageId {
    /// Every stage, in declaration (= topological) order.
    pub const ALL: [StageId; 13] = [
        StageId::TemporalSpatial,
        StageId::Causal,
        StageId::Matching,
        StageId::JobRelated,
        StageId::Impact,
        StageId::RootCause,
        StageId::TableIv,
        StageId::Midplane,
        StageId::Burst,
        StageId::Interruption,
        StageId::Propagation,
        StageId::Vulnerability,
        StageId::Fda,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            StageId::TemporalSpatial => "temporal-spatial",
            StageId::Causal => "causal",
            StageId::Matching => "matching",
            StageId::JobRelated => "job-related",
            StageId::Impact => "impact",
            StageId::RootCause => "root-cause",
            StageId::TableIv => "table-iv",
            StageId::Midplane => "midplane",
            StageId::Burst => "burst",
            StageId::Interruption => "interruption",
            StageId::Propagation => "propagation",
            StageId::Vulnerability => "vulnerability",
            StageId::Fda => "fda",
        }
    }

    /// Direct dependencies: stages whose products this stage reads.
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::TemporalSpatial => &[],
            StageId::Causal => &[StageId::TemporalSpatial],
            StageId::Matching => &[StageId::Causal],
            StageId::JobRelated | StageId::Impact | StageId::RootCause | StageId::Burst => {
                &[StageId::Matching]
            }
            StageId::TableIv | StageId::Midplane | StageId::Propagation => &[StageId::JobRelated],
            StageId::Interruption => &[StageId::RootCause],
            StageId::Vulnerability => &[StageId::RootCause, StageId::Midplane],
            StageId::Fda => &[StageId::Matching],
        }
    }

    /// The [`AnalysisContext`] accessors this stage's `run` touches — the
    /// runtime mirror of the `/// Reads: …; ctx{…}` contract line on each
    /// stage impl (the `stage-deps` lint cross-checks both against the
    /// code). [`execute_delta`] intersects these with the accessors an
    /// [`ContextDelta`] dirtied to decide whether a cached output is still
    /// valid, so an entry missing here would silently serve stale results —
    /// which is exactly why the lint machine-checks the lists.
    pub fn ctx_reads(self) -> &'static [&'static str] {
        match self {
            StageId::TemporalSpatial => &["code_shards"],
            StageId::Causal => &[],
            StageId::Matching => &[
                "job",
                "job_by_end_rank",
                "job_count",
                "job_records",
                "max_job_duration",
            ],
            StageId::JobRelated => &["job", "overlapping"],
            StageId::Impact => &[],
            StageId::RootCause => &["for_each_overlapping", "job"],
            StageId::TableIv => &[],
            StageId::Midplane => &["midplane_busy_seconds", "midplane_busy_seconds_min_size"],
            StageId::Burst => &["distinct_execs", "exec_groups", "job", "job_count", "span"],
            StageId::Interruption => &["job"],
            StageId::Propagation => &["job"],
            StageId::Vulnerability => &[
                "distinct_execs",
                "exec_groups",
                "job",
                "job_count",
                "job_records",
                "midplane_busy_seconds",
                "midplane_busy_seconds_min_size",
                "record_index",
            ],
            StageId::Fda => &["fda_columns"],
        }
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A selection of stages to run (a bitset over [`StageId`]).
///
/// The executor always closes a set over its dependencies, so a set names
/// the *products you want*, not the work to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisSet(u16);

impl AnalysisSet {
    /// No stages.
    pub fn empty() -> AnalysisSet {
        AnalysisSet(0)
    }

    /// Every stage (the full Figure-1 run).
    pub fn all() -> AnalysisSet {
        let mut s = AnalysisSet::empty();
        for id in StageId::ALL {
            s = s.with(id);
        }
        s
    }

    /// The set containing exactly `stages` (before dependency closure).
    pub fn of(stages: &[StageId]) -> AnalysisSet {
        let mut s = AnalysisSet::empty();
        for &id in stages {
            s = s.with(id);
        }
        s
    }

    /// This set plus one stage.
    #[must_use]
    pub fn with(self, id: StageId) -> AnalysisSet {
        AnalysisSet(self.0 | id.bit())
    }

    /// Does the set contain `id`?
    pub fn contains(self, id: StageId) -> bool {
        self.0 & id.bit() != 0
    }

    /// The transitive dependency closure: the stages that actually run.
    #[must_use]
    pub fn closure(self) -> AnalysisSet {
        let mut cur = self;
        loop {
            let mut next = cur;
            for id in StageId::ALL {
                if cur.contains(id) {
                    for &d in id.deps() {
                        next = next.with(d);
                    }
                }
            }
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }

    /// The member stages, in topological order.
    pub fn stages(self) -> Vec<StageId> {
        StageId::ALL
            .iter()
            .copied()
            .filter(|&id| self.contains(id))
            .collect()
    }

    /// Number of member stages.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for AnalysisSet {
    /// The default set is the full pipeline — `CoAnalysis::run` semantics.
    fn default() -> AnalysisSet {
        AnalysisSet::all()
    }
}

/// The product of one stage run, tagged by stage.
///
/// `Clone + PartialEq` so the delta executor can cache outputs across runs
/// and cut dirty-propagation short when a re-run reproduces the cached
/// value exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum StageOutput {
    /// Post-spatial events plus the post-temporal survivor count.
    TemporalSpatial {
        /// Merged, time-sorted events after temporal + spatial dedup.
        after_spatial: Vec<Event>,
        /// Events surviving the temporal filter (pre-spatial), summed over
        /// shards.
        after_temporal: usize,
    },
    /// Causally filtered events plus the learned rules.
    Causal {
        /// Events after causal filtering.
        events: Vec<Event>,
        /// Learned cross-code rules.
        rules: Vec<CausalRule>,
    },
    /// Event ↔ job matching.
    Matching(Matching),
    /// Job-related filter outcome (final events + redundancy flags).
    JobRelated(JobRelatedOutcome),
    /// Impact classification.
    Impact(ImpactSummary),
    /// Root-cause classification.
    RootCause(RootCauseSummary),
    /// Table IV fits (`None` when a stream is too small to fit).
    TableIv(Option<TableIv>),
    /// Midplane profile.
    Midplane(MidplaneProfile),
    /// Burst analysis.
    Burst(BurstAnalysis),
    /// Interruption statistics.
    Interruption(InterruptionStats),
    /// Propagation analysis.
    Propagation(PropagationAnalysis),
    /// Vulnerability analysis (boxed: by far the largest payload).
    Vulnerability(Box<VulnerabilityAnalysis>),
    /// Fast Dimensional Analysis (ranked over-represented combinations).
    Fda(FdaAnalysis),
}

/// Accumulated products while the graph executes.
///
/// Stages read earlier products through the accessors; absent products
/// (possible only if a stage is run without its dependencies, which the
/// executor never does) degrade to empty defaults rather than panicking.
/// Every accessor records the producing stage in `reads` — the runtime
/// twin of the `stage-deps` lint, which statically cross-checks the same
/// accessor calls against [`StageId::deps`]. Direct field access from a
/// stage would bypass both; keep reads going through the accessors.
#[derive(Debug, Default)]
pub struct PipelineState {
    /// Bitmask of producers whose products have been read (as
    /// `StageId::bit` bits) since the last `take_observed_reads`.
    reads: AtomicU16,
    raw_fatal: usize,
    after_temporal: usize,
    after_spatial: Option<Vec<Event>>,
    events: Option<Vec<Event>>,
    causal_rules: Option<Vec<CausalRule>>,
    matching: Option<Matching>,
    job_related: Option<JobRelatedOutcome>,
    impact: Option<ImpactSummary>,
    root_cause: Option<RootCauseSummary>,
    table_iv: Option<Option<TableIv>>,
    midplane: Option<MidplaneProfile>,
    burst: Option<BurstAnalysis>,
    interruption: Option<InterruptionStats>,
    propagation: Option<PropagationAnalysis>,
    vulnerability: Option<VulnerabilityAnalysis>,
    fda: Option<FdaAnalysis>,
}

impl PipelineState {
    fn new(raw_fatal: usize) -> PipelineState {
        PipelineState {
            raw_fatal,
            ..PipelineState::default()
        }
    }

    /// Record that `producer`'s product was read.
    fn note_read(&self, producer: StageId) {
        self.reads.fetch_or(producer.bit(), Ordering::Relaxed);
    }

    /// Take (and clear) the bitmask of producers read since the last call.
    #[cfg(test)]
    fn take_observed_reads(&self) -> u16 {
        self.reads.swap(0, Ordering::Relaxed)
    }

    /// Events after temporal + spatial filtering (the causal input).
    fn after_spatial(&self) -> &[Event] {
        self.note_read(StageId::TemporalSpatial);
        self.after_spatial.as_deref().unwrap_or(&[])
    }

    /// Events after causal filtering (the matching/classification input).
    fn events(&self) -> &[Event] {
        self.note_read(StageId::Causal);
        self.events.as_deref().unwrap_or(&[])
    }

    /// The event ↔ job matching.
    fn matching(&self) -> Option<&Matching> {
        self.note_read(StageId::Matching);
        self.matching.as_ref()
    }

    /// Events after job-related filtering (the characterization input).
    fn final_events(&self) -> &[Event] {
        self.note_read(StageId::JobRelated);
        self.job_related
            .as_ref()
            .map(|o| o.events.as_slice())
            .unwrap_or(&[])
    }

    /// Per-event redundancy flags from job-related filtering.
    fn redundant_flags(&self) -> &[bool] {
        self.note_read(StageId::JobRelated);
        self.job_related
            .as_ref()
            .map(|o| o.redundant.as_slice())
            .unwrap_or(&[])
    }

    /// The root-cause classification.
    fn root_cause(&self) -> Option<&RootCauseSummary> {
        self.note_read(StageId::RootCause);
        self.root_cause.as_ref()
    }

    /// The per-midplane fatal/workload profile.
    fn midplane(&self) -> Option<&MidplaneProfile> {
        self.note_read(StageId::Midplane);
        self.midplane.as_ref()
    }

    fn install(&mut self, out: StageOutput) {
        match out {
            StageOutput::TemporalSpatial {
                after_spatial,
                after_temporal,
            } => {
                self.after_temporal = after_temporal;
                self.after_spatial = Some(after_spatial);
            }
            StageOutput::Causal { events, rules } => {
                self.events = Some(events);
                self.causal_rules = Some(rules);
            }
            StageOutput::Matching(m) => self.matching = Some(m),
            StageOutput::JobRelated(o) => self.job_related = Some(o),
            StageOutput::Impact(i) => self.impact = Some(i),
            StageOutput::RootCause(r) => self.root_cause = Some(r),
            StageOutput::TableIv(t) => self.table_iv = Some(t),
            StageOutput::Midplane(m) => self.midplane = Some(m),
            StageOutput::Burst(b) => self.burst = Some(b),
            StageOutput::Interruption(i) => self.interruption = Some(i),
            StageOutput::Propagation(p) => self.propagation = Some(p),
            StageOutput::Vulnerability(v) => self.vulnerability = Some(*v),
            StageOutput::Fda(a) => self.fda = Some(a),
        }
    }

    pub(crate) fn into_products(self) -> AnalysisProducts {
        let filter_stats = match (&self.after_spatial, &self.events, &self.job_related) {
            (Some(s), Some(ev), Some(o)) => Some(FilterStats {
                raw_fatal: self.raw_fatal,
                after_temporal: self.after_temporal,
                after_spatial: s.len(),
                after_causal: ev.len(),
                after_job_related: o.events.len(),
            }),
            _ => None,
        };
        let (job_redundant, events_final) = match self.job_related {
            Some(o) => (Some(o.redundant), Some(o.events)),
            None => (None, None),
        };
        AnalysisProducts {
            events: self.events,
            causal_rules: self.causal_rules,
            matching: self.matching,
            job_redundant,
            events_final,
            filter_stats,
            impact: self.impact,
            root_cause: self.root_cause,
            table_iv: self.table_iv,
            midplane: self.midplane,
            burst: self.burst,
            interruption: self.interruption,
            propagation: self.propagation,
            vulnerability: self.vulnerability,
            fda: self.fda,
        }
    }
}

/// The products of a (possibly partial) pipeline run.
///
/// A field is `Some` exactly when its producing stage was in the closed
/// [`AnalysisSet`]; `filter_stats` additionally needs the whole filter
/// stack (temporal/spatial + causal + job-related) to have run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisProducts {
    /// Events after temporal + spatial + causal filtering (`Causal`).
    pub events: Option<Vec<Event>>,
    /// Learned causal rules (`Causal`).
    pub causal_rules: Option<Vec<CausalRule>>,
    /// Matching of `events` against the job log (`Matching`).
    pub matching: Option<Matching>,
    /// Per-event job-related redundancy flags (`JobRelated`).
    pub job_redundant: Option<Vec<bool>>,
    /// Events after job-related filtering (`JobRelated`).
    pub events_final: Option<Vec<Event>>,
    /// Counts through the filter stack (needs the full filter stack).
    pub filter_stats: Option<FilterStats>,
    /// Impact classification (`Impact`).
    pub impact: Option<ImpactSummary>,
    /// Root-cause classification (`RootCause`).
    pub root_cause: Option<RootCauseSummary>,
    /// Table IV fits; inner `None` means a stream was too small (`TableIv`).
    pub table_iv: Option<Option<TableIv>>,
    /// Midplane profile (`Midplane`).
    pub midplane: Option<MidplaneProfile>,
    /// Burst analysis (`Burst`).
    pub burst: Option<BurstAnalysis>,
    /// Interruption statistics (`Interruption`).
    pub interruption: Option<InterruptionStats>,
    /// Propagation analysis (`Propagation`).
    pub propagation: Option<PropagationAnalysis>,
    /// Vulnerability analysis (`Vulnerability`).
    pub vulnerability: Option<VulnerabilityAnalysis>,
    /// Fast Dimensional Analysis (`Fda`).
    pub fda: Option<FdaAnalysis>,
}

impl AnalysisProducts {
    /// Assemble the legacy full-run result; `None` unless every product is
    /// present (i.e. the run covered [`AnalysisSet::all`]).
    pub fn into_result(self) -> Option<CoAnalysisResult> {
        Some(CoAnalysisResult {
            events: self.events?,
            causal_rules: self.causal_rules?,
            matching: self.matching?,
            job_redundant: self.job_redundant?,
            events_final: self.events_final?,
            filter_stats: self.filter_stats?,
            impact: self.impact?,
            root_cause: self.root_cause?,
            table_iv: self.table_iv?,
            midplane: self.midplane?,
            burst: self.burst?,
            interruption: self.interruption?,
            propagation: self.propagation?,
            vulnerability: self.vulnerability?,
            fda: self.fda?,
        })
    }
}

/// One pipeline pass: an identity plus a pure function from the shared
/// context, the configuration, and earlier products to this stage's
/// product.
pub trait Stage: Sync {
    /// Which stage this is.
    fn id(&self) -> StageId;

    /// Run the pass.
    ///
    /// Contract: reads only [`AnalysisContext`] indexes and products of
    /// stages named in [`StageId::deps`]; returns the [`StageOutput`]
    /// variant matching [`Stage::id`]; deterministic for a given input.
    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput;
}

/// Contract: dedups each error-code shard temporally then spatially (shards
/// are independent by construction) and merges time-sorted.
///
/// Reads: state{}; ctx{code_shards}
struct TemporalSpatialStage;

impl Stage for TemporalSpatialStage {
    fn id(&self) -> StageId {
        StageId::TemporalSpatial
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        _state: &PipelineState,
    ) -> StageOutput {
        // Both filters only ever merge events of the *same* code, so
        // per-code sharding is exact; shards come pre-sorted by code from
        // the context, so chunk→thread assignment is deterministic.
        let shards = ctx.code_shards();
        let results: Vec<(Vec<Event>, usize)> = fork_join(&shards, cfg.threads, &|(_, shard)| {
            let t = cfg.temporal.apply(shard);
            let n = t.len();
            (cfg.spatial.apply(&t), n)
        });
        let mut after_temporal = 0usize;
        let mut merged: Vec<Event> = Vec::new();
        for (events, n) in results {
            after_temporal += n;
            merged.extend(events);
        }
        merged.sort_by_key(|e| (e.time, e.first_recid));
        StageOutput::TemporalSpatial {
            after_spatial: merged,
            after_temporal,
        }
    }
}

/// Contract: learns cross-code rules over the whole post-spatial stream
/// (global by design — rules connect different codes).
///
/// Reads: state{after_spatial}; ctx{}
struct CausalStage;

impl Stage for CausalStage {
    fn id(&self) -> StageId {
        StageId::Causal
    }

    fn run(
        &self,
        _ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let input = state.after_spatial();
        let (events, rules) = cfg.causal.filter(input);
        StageOutput::Causal { events, rules }
    }
}

/// Contract: matches the causally filtered stream against the job index;
/// produces per-event cases and the job → event attribution.
///
/// Reads: state{events}; ctx{job, job_by_end_rank, job_count, job_records, max_job_duration}
struct MatchingStage;

impl Stage for MatchingStage {
    fn id(&self) -> StageId {
        StageId::Matching
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        StageOutput::Matching(
            cfg.matcher
                .run_with_threads(state.events(), ctx, cfg.threads),
        )
    }
}

/// Contract: flags job-related redundancy over the matched stream; final
/// events are a subsequence of the causal stage's output.
///
/// Reads: state{events, matching}; ctx{job, overlapping}
struct JobRelatedStage;

impl Stage for JobRelatedStage {
    fn id(&self) -> StageId {
        StageId::JobRelated
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        _cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        StageOutput::JobRelated(JobRelatedFilter.apply(state.events(), matching, ctx))
    }
}

/// Contract: classifies per-code interruption impact from the matching
/// cases alone.
///
/// Reads: state{events, matching}; ctx{}
struct ImpactStage;

impl Stage for ImpactStage {
    fn id(&self) -> StageId {
        StageId::Impact
    }

    fn run(
        &self,
        _ctx: &AnalysisContext<'_>,
        _cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        StageOutput::Impact(classify_impact(state.events(), matching))
    }
}

/// Contract: classifies per-code root cause using the matching and the
/// job index (executable-following vs. location-sticky evidence).
///
/// Reads: state{events, matching}; ctx{for_each_overlapping, job}
struct RootCauseStage;

impl Stage for RootCauseStage {
    fn id(&self) -> StageId {
        StageId::RootCause
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        StageOutput::RootCause(classify_root_cause_with_threads(
            state.events(),
            matching,
            ctx,
            cfg.threads,
        ))
    }
}

/// Contract: fits interarrival models before/after job-related filtering;
/// `None` when a stream is too small to fit.
///
/// Reads: state{events, final_events}; ctx{}
struct TableIvStage;

impl Stage for TableIvStage {
    fn id(&self) -> StageId {
        StageId::TableIv
    }

    fn run(
        &self,
        _ctx: &AnalysisContext<'_>,
        _cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        StageOutput::TableIv(TableIv::new(state.events(), state.final_events()).ok())
    }
}

/// Contract: builds the per-midplane fatal/workload/wide-workload series
/// from the fully filtered events (a chain at one broken midplane is one
/// fault there, not ten).
///
/// Reads: state{final_events}; ctx{midplane_busy_seconds, midplane_busy_seconds_min_size}
struct MidplaneStage;

impl Stage for MidplaneStage {
    fn id(&self) -> StageId {
        StageId::Midplane
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        StageOutput::Midplane(MidplaneProfile::new(
            state.final_events(),
            ctx,
            cfg.wide_threshold,
        ))
    }
}

/// Contract: analyzes interruption burstiness over the matched victims and
/// the RAS time span.
///
/// Reads: state{matching}; ctx{distinct_execs, exec_groups, job, job_count, span}
struct BurstStage;

impl Stage for BurstStage {
    fn id(&self) -> StageId {
        StageId::Burst
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        let mut victims: Vec<&JobRecord> = matching
            .job_to_event
            .keys()
            .filter_map(|&id| ctx.job(id))
            .collect();
        victims.sort_by_key(|j| (j.end_time, j.job_id));
        let window = ctx
            .span()
            .unwrap_or((bgp_model::Timestamp::EPOCH, bgp_model::Timestamp::EPOCH));
        StageOutput::Burst(BurstAnalysis::new(&victims, ctx, window, cfg.quick_window))
    }
}

/// Contract: splits interruption interarrivals by root cause and fits each
/// stream.
///
/// Reads: state{events, matching, root_cause}; ctx{job}
struct InterruptionStage;

impl Stage for InterruptionStage {
    fn id(&self) -> StageId {
        StageId::Interruption
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        _cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let m_binding = Matching::default();
        let matching = state.matching().unwrap_or(&m_binding);
        let rc_binding = RootCauseSummary::default();
        let root_cause = state.root_cause().unwrap_or(&rc_binding);
        StageOutput::Interruption(InterruptionStats::new(
            state.events(),
            matching,
            root_cause,
            ctx,
        ))
    }
}

/// Contract: measures spatial propagation from multi-victim events and
/// temporal propagation from the job-related redundancy flags.
///
/// Reads: state{events, matching, redundant_flags}; ctx{job}
struct PropagationStage;

impl Stage for PropagationStage {
    fn id(&self) -> StageId {
        StageId::Propagation
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        _cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        let chain_flags = state.redundant_flags();
        StageOutput::Propagation(PropagationAnalysis::new(
            state.events(),
            matching,
            ctx,
            chain_flags,
        ))
    }
}

/// Contract: runs the Section VI-D vulnerability study over the matched
/// stream, the root-cause labels, and the midplane fatal counts.
///
/// Reads: state{events, matching, midplane, root_cause}; ctx{distinct_execs, exec_groups, job, job_count, job_records, midplane_busy_seconds, midplane_busy_seconds_min_size, record_index}
struct VulnerabilityStage;

impl Stage for VulnerabilityStage {
    fn id(&self) -> StageId {
        StageId::Vulnerability
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let m_binding = Matching::default();
        let matching = state.matching().unwrap_or(&m_binding);
        let rc_binding = RootCauseSummary::default();
        let root_cause = state.root_cause().unwrap_or(&rc_binding);
        let fatal_counts = state
            .midplane()
            .map(|m| m.fatal_counts.as_slice())
            .unwrap_or(&[]);
        StageOutput::Vulnerability(Box::new(VulnerabilityAnalysis::new_with_threads(
            state.events(),
            matching,
            root_cause,
            ctx,
            fatal_counts,
            cfg.threads,
        )))
    }
}

/// Contract: mines ranked over-represented dimension combinations (Fast
/// Dimensional Analysis) from the causally filtered events, the matching's
/// job attribution, and the interned job-dimension columns; candidate
/// counting is sharded but bit-identical at any thread count.
///
/// Reads: state{events, matching}; ctx{fda_columns}
struct FdaStage;

impl Stage for FdaStage {
    fn id(&self) -> StageId {
        StageId::Fda
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        cfg: &CoAnalysisConfig,
        state: &PipelineState,
    ) -> StageOutput {
        let binding = Matching::default();
        let matching = state.matching().unwrap_or(&binding);
        StageOutput::Fda(FdaAnalysis::from_context(
            state.events(),
            matching,
            ctx,
            &cfg.fda,
            cfg.threads,
        ))
    }
}

/// Observer of stage execution, called by the executor around every stage.
///
/// The executor itself is clock-free (the `determinism` lint guarantee);
/// callers that want wall-clock per stage — the metrics registry in
/// `bgp-serve`, `coctl analyze --timings` — read their own clock inside
/// these callbacks. Stages of one wave run concurrently, so callbacks must
/// tolerate interleaving across stages (they are never interleaved for one
/// stage: started and finished bracket the run on the same thread).
pub trait StageObserver: Sync {
    /// A stage is about to run on the current thread.
    fn stage_started(&self, id: StageId);
    /// The stage finished on the same thread.
    fn stage_finished(&self, id: StageId);
}

fn stage(id: StageId) -> &'static dyn Stage {
    match id {
        StageId::TemporalSpatial => &TemporalSpatialStage,
        StageId::Causal => &CausalStage,
        StageId::Matching => &MatchingStage,
        StageId::JobRelated => &JobRelatedStage,
        StageId::Impact => &ImpactStage,
        StageId::RootCause => &RootCauseStage,
        StageId::TableIv => &TableIvStage,
        StageId::Midplane => &MidplaneStage,
        StageId::Burst => &BurstStage,
        StageId::Interruption => &InterruptionStage,
        StageId::Propagation => &PropagationStage,
        StageId::Vulnerability => &VulnerabilityStage,
        StageId::Fda => &FdaStage,
    }
}

/// Execute the dependency closure of `set` over `ctx` in waves; stages in
/// the same wave run concurrently (up to `cfg.threads`).
pub(crate) fn execute(
    ctx: &AnalysisContext<'_>,
    cfg: &CoAnalysisConfig,
    set: AnalysisSet,
    observer: Option<&dyn StageObserver>,
) -> PipelineState {
    let set = set.closure();
    let mut state = PipelineState::new(ctx.raw_events().len());
    let mut done = AnalysisSet::empty();
    loop {
        let ready: Vec<StageId> = StageId::ALL
            .iter()
            .copied()
            .filter(|&id| {
                set.contains(id)
                    && !done.contains(id)
                    && id.deps().iter().all(|&d| done.contains(d))
            })
            .collect();
        if ready.is_empty() {
            break;
        }
        let outputs = fork_join(&ready, cfg.threads, &|&id| {
            if let Some(o) = observer {
                o.stage_started(id);
            }
            let out = stage(id).run(ctx, cfg, &state);
            if let Some(o) = observer {
                o.stage_finished(id);
            }
            out
        });
        for out in outputs {
            state.install(out);
        }
        for &id in &ready {
            done = done.with(id);
        }
    }
    state
}

/// Cached products of the previous pass over one evolving input, keyed by
/// stage — the state that makes [`execute_delta`] incremental.
///
/// Valid for one `(log stream, CoAnalysisConfig)` pair: the cache stores no
/// fingerprint of either, so callers (the `DeltaSession` driver) must keep
/// cache, store, and config together and never mix caches across streams.
/// `ts_shards` additionally caches the temporal/spatial stage *per error
/// code* (sorted by code, matching the context's shard order), so an append
/// touching 3 of 200 codes re-filters 3 shards and memcpys the rest.
#[derive(Debug, Default)]
pub struct StageCache {
    outputs: [Option<StageOutput>; 13],
    ts_shards: Vec<(ErrCode, Vec<Event>, usize)>,
}

impl StageCache {
    fn output(&self, id: StageId) -> Option<&StageOutput> {
        self.outputs.get(id as usize).and_then(Option::as_ref)
    }

    fn store(&mut self, id: StageId, out: StageOutput) {
        if let Some(slot) = self.outputs.get_mut(id as usize) {
            *slot = Some(out);
        }
    }

    /// Number of stages with a cached output (diagnostics).
    pub fn len(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_some()).count()
    }

    /// True before the first (priming) pass.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a delta pass actually did, as stage sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// Stages that re-executed (their inputs were dirty).
    pub reran: AnalysisSet,
    /// The subset of `reran` whose output differs from the cached pass —
    /// only these propagated dirtiness downstream.
    pub changed: AnalysisSet,
}

/// The context accessors invalidated by `delta` — the dirty set matched
/// against [`StageId::ctx_reads`]. RAS appends dirty the event stream and
/// the per-code shards; job appends dirty every job-side accessor (the job
/// table itself shifted, so every index over it is new).
fn dirty_accessors(delta: &ContextDelta) -> Vec<&'static str> {
    let mut dirty = Vec::new();
    if delta.events_appended > 0 {
        dirty.extend(["raw_events", "code_shards"]);
    }
    if delta.span_changed {
        dirty.push("span");
    }
    if delta.jobs_appended > 0 {
        dirty.extend([
            "distinct_execs",
            "ended_in_window",
            "exec_groups",
            "fda_columns",
            "for_each_overlapping",
            "job",
            "job_by_end_rank",
            "job_count",
            "job_records",
            "max_job_duration",
            "midplane_busy_seconds",
            "midplane_busy_seconds_min_size",
            "overlapping",
            "record_index",
            "running_at",
        ]);
    }
    dirty
}

/// [`execute`], incrementally: re-run only the stages whose declared inputs
/// changed under `delta`, serving everything else from `cache`.
///
/// A stage is *dirty* when it has no cached output, when one of its
/// [`StageId::ctx_reads`] accessors is in the delta's dirty set, or when an
/// upstream dependency re-ran *and produced a different output* — equality
/// with the cached value cuts propagation short (an append whose new events
/// are all dedup'd away re-runs the filters and nothing downstream). Clean
/// stages install their cached product unchanged.
///
/// Contract: bit-identical to a full [`execute`] of `set` over the same
/// (post-append) context — guaranteed by `EventStore::append_ras` keeping
/// the indexes identical to a rebuild and every stage being a pure function
/// of context + config + upstream products (the `determinism` lint family).
pub(crate) fn execute_delta(
    ctx: &AnalysisContext<'_>,
    cfg: &CoAnalysisConfig,
    set: AnalysisSet,
    cache: &mut StageCache,
    delta: &ContextDelta,
    observer: Option<&dyn StageObserver>,
) -> (PipelineState, DeltaReport) {
    let set = set.closure();
    let dirty_ctx = dirty_accessors(delta);
    let mut state = PipelineState::new(ctx.raw_events().len());
    let mut done = AnalysisSet::empty();
    let mut reran = AnalysisSet::empty();
    let mut changed = AnalysisSet::empty();
    loop {
        let ready: Vec<StageId> = StageId::ALL
            .iter()
            .copied()
            .filter(|&id| {
                set.contains(id)
                    && !done.contains(id)
                    && id.deps().iter().all(|&d| done.contains(d))
            })
            .collect();
        if ready.is_empty() {
            break;
        }
        let mut dirty: Vec<StageId> = Vec::new();
        for &id in &ready {
            let is_dirty = cache.output(id).is_none()
                || id.ctx_reads().iter().any(|r| dirty_ctx.contains(r))
                || id.deps().iter().any(|&d| changed.contains(d));
            if is_dirty {
                dirty.push(id);
            } else if let Some(out) = cache.output(id) {
                state.install(out.clone());
            }
        }
        // The temporal/spatial stage goes through its per-shard cache
        // (which needs `&mut cache`); everything else dirty in this wave
        // fork-joins exactly like a full pass.
        let mut outputs: Vec<(StageId, StageOutput)> = Vec::with_capacity(dirty.len());
        if let Some(pos) = dirty.iter().position(|&id| id == StageId::TemporalSpatial) {
            dirty.remove(pos);
            if let Some(o) = observer {
                o.stage_started(StageId::TemporalSpatial);
            }
            let out = run_ts_delta(ctx, cfg, cache, &delta.dirty_codes);
            if let Some(o) = observer {
                o.stage_finished(StageId::TemporalSpatial);
            }
            outputs.push((StageId::TemporalSpatial, out));
        }
        outputs.extend(fork_join(&dirty, cfg.threads, &|&id| {
            if let Some(o) = observer {
                o.stage_started(id);
            }
            let out = stage(id).run(ctx, cfg, &state);
            if let Some(o) = observer {
                o.stage_finished(id);
            }
            (id, out)
        }));
        for (id, out) in outputs {
            reran = reran.with(id);
            if cache.output(id) != Some(&out) {
                changed = changed.with(id);
                cache.store(id, out.clone());
            }
            state.install(out);
        }
        for &id in &ready {
            done = done.with(id);
        }
    }
    (state, DeltaReport { reran, changed })
}

/// The temporal/spatial stage with sub-stage incrementality: re-filter only
/// the shards in `dirty_codes` (plus any code missing from the cache), take
/// every other shard's filtered output from the cache, and merge exactly as
/// [`TemporalSpatialStage::run`] does — concatenate in code order, then one
/// stable sort by `(time, first_recid)`. Clean shards' slices are
/// byte-identical after an append (the `EventStore` merge never reorders an
/// untouched shard), so their cached outputs are exact.
fn run_ts_delta(
    ctx: &AnalysisContext<'_>,
    cfg: &CoAnalysisConfig,
    cache: &mut StageCache,
    dirty_codes: &[ErrCode],
) -> StageOutput {
    let shards = ctx.code_shards();
    let todo: Vec<(ErrCode, &[Event])> = shards
        .iter()
        .filter(|(code, _)| {
            dirty_codes.binary_search(code).is_ok()
                || cache
                    .ts_shards
                    .binary_search_by_key(code, |(c, _, _)| *c)
                    .is_err()
        })
        .copied()
        .collect();
    let fresh = fork_join(&todo, cfg.threads, &|(_, shard)| {
        let t = cfg.temporal.apply(shard);
        let n = t.len();
        (cfg.spatial.apply(&t), n)
    });
    let mut fresh_iter = todo
        .iter()
        .zip(fresh)
        .map(|(&(code, _), (events, n))| (code, events, n))
        .peekable();
    let mut old_iter = std::mem::take(&mut cache.ts_shards).into_iter().peekable();
    let mut next_shards: Vec<(ErrCode, Vec<Event>, usize)> = Vec::with_capacity(shards.len());
    for &(code, shard) in &shards {
        while old_iter.peek().is_some_and(|o| o.0 < code) {
            old_iter.next();
        }
        if fresh_iter.peek().is_some_and(|f| f.0 == code) {
            if old_iter.peek().is_some_and(|o| o.0 == code) {
                old_iter.next(); // superseded by the recompute
            }
            if let Some(entry) = fresh_iter.next() {
                next_shards.push(entry);
            }
        } else if old_iter.peek().is_some_and(|o| o.0 == code) {
            if let Some(entry) = old_iter.next() {
                next_shards.push(entry);
            }
        } else {
            // Unreachable when cache and context share a stream (every
            // shard is recomputed or cached); degrade to computing inline
            // rather than trusting that.
            let t = cfg.temporal.apply(shard);
            let n = t.len();
            next_shards.push((code, cfg.spatial.apply(&t), n));
        }
    }
    let mut after_temporal = 0usize;
    let mut merged: Vec<Event> = Vec::new();
    for (_, events, n) in &next_shards {
        after_temporal += n;
        merged.extend_from_slice(events);
    }
    merged.sort_by_key(|e| (e.time, e.first_recid));
    cache.ts_shards = next_shards;
    StageOutput::TemporalSpatial {
        after_spatial: merged,
        after_temporal,
    }
}

/// The pipeline's one fork-join point: apply `f` to every item, splitting
/// the slice into up to `threads` contiguous chunks on scoped threads.
///
/// Results come back in item order regardless of thread count, and a panic
/// in any worker is re-raised on the calling thread with its original
/// payload.
pub(crate) fn fork_join<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => results.push(part),
                // Re-raise the worker's panic on the calling thread so the
                // failure keeps its original message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_are_topological() {
        // Every dependency appears earlier in ALL than its dependent.
        for (i, id) in StageId::ALL.iter().enumerate() {
            for d in id.deps() {
                let j = StageId::ALL.iter().position(|x| x == d).unwrap();
                assert!(j < i, "{:?} depends on later {:?}", id, d);
            }
        }
    }

    #[test]
    fn closure_pulls_transitive_deps() {
        let s = AnalysisSet::of(&[StageId::Midplane]).closure();
        for need in [
            StageId::TemporalSpatial,
            StageId::Causal,
            StageId::Matching,
            StageId::JobRelated,
            StageId::Midplane,
        ] {
            assert!(s.contains(need), "missing {need:?}");
        }
        assert_eq!(s.len(), 5);
        assert!(!s.contains(StageId::Vulnerability));
    }

    #[test]
    fn vulnerability_closure_is_almost_everything() {
        let s = AnalysisSet::of(&[StageId::Vulnerability]).closure();
        assert!(s.contains(StageId::Midplane));
        assert!(s.contains(StageId::RootCause));
        assert!(s.contains(StageId::JobRelated));
        assert!(!s.contains(StageId::Burst));
        assert!(!s.contains(StageId::Impact));
    }

    #[test]
    fn set_operations() {
        assert!(AnalysisSet::empty().is_empty());
        assert_eq!(AnalysisSet::all().len(), StageId::ALL.len());
        assert_eq!(AnalysisSet::default(), AnalysisSet::all());
        let s = AnalysisSet::of(&[StageId::Burst, StageId::Impact]);
        assert_eq!(s.stages(), vec![StageId::Impact, StageId::Burst]);
        assert_eq!(s.with(StageId::Impact), s);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = StageId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StageId::ALL.len());
    }

    #[test]
    fn fork_join_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let seq = fork_join(&items, 1, &|&x| x * 2);
        let par = fork_join(&items, 7, &|&x| x * 2);
        assert_eq!(seq, par);
        assert_eq!(seq[0], 0);
        assert_eq!(seq[99], 198);
    }

    /// One small simulated site, shared across proptest cases.
    fn sim() -> &'static bgp_sim::SimOutput {
        static SIM: std::sync::OnceLock<bgp_sim::SimOutput> = std::sync::OnceLock::new();
        SIM.get_or_init(|| {
            bgp_sim::Simulation::new(bgp_sim::SimConfig::small_test(11))
                .expect("valid config")
                .run()
        })
    }

    proptest::proptest! {
        /// The dynamic twin of the `stage-deps` lint: run random stage
        /// subsets sequentially and assert every product each stage
        /// actually reads (recorded by the `PipelineState` accessors) lies
        /// inside the transitive closure of its *declared* dependencies.
        /// The lint proves this for the code as written; this proves it for
        /// the code as executed, on real pipeline data.
        #[test]
        fn observed_reads_stay_inside_declared_closure(mask in 0u16..(1 << 13)) {
            let out = sim();
            let ctx = AnalysisContext::new(&out.ras, &out.jobs);
            let cfg = CoAnalysisConfig::default();
            let set = AnalysisSet(mask).closure();
            let mut state = PipelineState::new(ctx.raw_events().len());
            state.take_observed_reads();
            for id in set.stages() {
                let output = stage(id).run(&ctx, &cfg, &state);
                let observed = state.take_observed_reads();
                let allowed = AnalysisSet::of(id.deps()).closure();
                for p in StageId::ALL {
                    if observed & p.bit() != 0 {
                        proptest::prop_assert!(
                            allowed.contains(p),
                            "{id:?} read the {p:?} product outside its declared closure"
                        );
                    }
                }
                state.install(output);
            }
        }
    }
}
