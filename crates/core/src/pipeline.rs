//! The end-to-end co-analysis pipeline (the paper's Figure 1).
//!
//! `RAS log ─→ temporal ─→ spatial ─→ causal ─→ (match with job log)
//! ─→ job-related filter ─→ classification ─→ characterization`.
//!
//! The temporal stage is embarrassingly parallel across `(code, location)`
//! streams and the spatial/causal stages across codes; [`CoAnalysis::run`]
//! shards the fatal stream by error code across threads (std::thread::scope
//! threads, fork-join, no shared mutable state) and merges. Use
//! [`CoAnalysisConfig::sequential`] to force the single-threaded path (the
//! ablation benchmarked in `benches/pipeline.rs`).

use crate::analysis::failure_stats::TableIv;
use crate::analysis::{
    BurstAnalysis, InterruptionStats, MidplaneProfile, PropagationAnalysis, VulnerabilityAnalysis,
};
use crate::classify::{classify_impact, classify_root_cause, ImpactSummary, RootCauseSummary};
use crate::event::Event;
use crate::filter::{
    CausalFilter, CausalRule, FilterStats, JobRelatedFilter, SpatialFilter, TemporalFilter,
};
use crate::matching::{EventCase, Matcher, Matching};
use crate::report::Observations;
use bgp_model::Duration;
use joblog::JobLog;
use raslog::RasLog;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoAnalysisConfig {
    /// Temporal filter threshold.
    pub temporal: TemporalFilter,
    /// Spatial filter threshold.
    pub spatial: SpatialFilter,
    /// Causal filter parameters.
    pub causal: CausalFilter,
    /// Event↔job matching window.
    pub matcher: Matcher,
    /// Wide-job threshold in midplanes (paper: 32).
    pub wide_threshold: u32,
    /// Window for "re-interrupted quickly" (Observation 6; paper: 1000 s).
    pub quick_window: Duration,
    /// Number of worker threads for the sharded filter stages; 1 = fully
    /// sequential.
    pub threads: usize,
}

impl Default for CoAnalysisConfig {
    fn default() -> Self {
        CoAnalysisConfig {
            temporal: TemporalFilter::default(),
            spatial: SpatialFilter::default(),
            causal: CausalFilter::default(),
            matcher: Matcher::default(),
            wide_threshold: 32,
            quick_window: Duration::seconds(1_000),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
        }
    }
}

impl CoAnalysisConfig {
    /// A fully sequential configuration (ablation baseline).
    pub fn sequential() -> Self {
        CoAnalysisConfig {
            threads: 1,
            ..Default::default()
        }
    }
}

/// The pipeline entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoAnalysis {
    /// Configuration used by [`CoAnalysis::run`].
    pub config: CoAnalysisConfig,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct CoAnalysisResult {
    /// Events after temporal + spatial + causal filtering.
    pub events: Vec<Event>,
    /// Learned causal rules.
    pub causal_rules: Vec<CausalRule>,
    /// Matching of `events` against the job log.
    pub matching: Matching,
    /// Per-event job-related redundancy flags (parallel to `events`).
    pub job_redundant: Vec<bool>,
    /// Events after job-related filtering.
    pub events_final: Vec<Event>,
    /// Counts through the filter stack.
    pub filter_stats: FilterStats,
    /// Per-code impact classification (Section IV-A).
    pub impact: ImpactSummary,
    /// Per-code root-cause classification (Section IV-B).
    pub root_cause: RootCauseSummary,
    /// Table IV fits (None if either stream is too small to fit).
    pub table_iv: Option<TableIv>,
    /// Figure 4 midplane profile.
    pub midplane: MidplaneProfile,
    /// Figure 5 / Observation 6 burst analysis.
    pub burst: BurstAnalysis,
    /// Table V / Figure 6 interruption statistics.
    pub interruption: InterruptionStats,
    /// Observation 8 propagation analysis.
    pub propagation: PropagationAnalysis,
    /// Section VI-D vulnerability analysis.
    pub vulnerability: VulnerabilityAnalysis,
}

impl CoAnalysis {
    /// Build with a custom configuration.
    pub fn with_config(config: CoAnalysisConfig) -> CoAnalysis {
        CoAnalysis { config }
    }

    /// Run the full pipeline.
    ///
    /// Contract: consumes the raw RAS and job logs and returns per-stage
    /// event counts plus classification summaries; deterministic for a given
    /// input (no clock or entropy reads).
    pub fn run(&self, ras: &RasLog, jobs: &JobLog) -> CoAnalysisResult {
        let cfg = &self.config;
        let raw: Vec<Event> = Event::from_fatal_records(ras);

        // --- temporal + spatial, sharded by error code ---
        let after_spatial = self.filter_ts(&raw);
        let after_temporal_count = after_spatial.1;
        let after_spatial = after_spatial.0;

        // --- causal (global: learns cross-code rules) ---
        let (events, causal_rules) = cfg.causal.filter(&after_spatial);

        // --- matching ---
        let matching = cfg.matcher.run(&events, jobs);

        // --- job-related filtering ---
        let outcome = JobRelatedFilter.apply(&events, &matching, jobs);

        let filter_stats = FilterStats {
            raw_fatal: raw.len(),
            after_temporal: after_temporal_count,
            after_spatial: after_spatial.len(),
            after_causal: events.len(),
            after_job_related: outcome.events.len(),
        };

        // --- classification ---
        let impact = classify_impact(&events, &matching);
        let root_cause = classify_root_cause(&events, &matching, jobs);

        // --- characterization ---
        let table_iv = TableIv::new(&events, &outcome.events).ok();
        // The per-midplane profile uses the fully filtered events: a
        // ten-job chain at one broken midplane is one fault there, not ten
        // (job-related filtering exists precisely to fix such counts).
        let midplane = MidplaneProfile::new(&outcome.events, jobs, cfg.wide_threshold);
        let victims = matching.interrupted_records(jobs);
        let window = ras
            .time_span()
            .unwrap_or((bgp_model::Timestamp::EPOCH, bgp_model::Timestamp::EPOCH));
        let burst = BurstAnalysis::new(&victims, jobs, window, cfg.quick_window);
        let interruption = InterruptionStats::new(&events, &matching, &root_cause, jobs);
        let propagation = PropagationAnalysis::new(&events, &matching, jobs, &outcome.redundant);
        let vulnerability = VulnerabilityAnalysis::new(
            &events,
            &matching,
            &root_cause,
            jobs,
            &midplane.fatal_counts,
        );

        CoAnalysisResult {
            events,
            causal_rules,
            matching,
            job_redundant: outcome.redundant,
            events_final: outcome.events,
            filter_stats,
            impact,
            root_cause,
            table_iv,
            midplane,
            burst,
            interruption,
            propagation,
            vulnerability,
        }
    }

    /// Temporal then spatial filtering, sharded by error code across
    /// `config.threads` workers. Returns the merged spatial output and the
    /// post-temporal count.
    fn filter_ts(&self, raw: &[Event]) -> (Vec<Event>, usize) {
        let cfg = &self.config;
        // Shard: both filters only ever merge events of the *same* code, so
        // per-code sharding is exact.
        let mut shards: std::collections::HashMap<raslog::ErrCode, Vec<Event>> =
            std::collections::HashMap::new();
        for e in raw {
            shards.entry(e.errcode).or_default().push(*e);
        }
        let shard_list: Vec<Vec<Event>> = shards.into_values().collect();

        let worker = |shard: &Vec<Event>| -> (Vec<Event>, usize) {
            let t = cfg.temporal.apply(shard);
            let n = t.len();
            (cfg.spatial.apply(&t), n)
        };

        let results: Vec<(Vec<Event>, usize)> = if cfg.threads <= 1 || shard_list.len() <= 1 {
            shard_list.iter().map(worker).collect()
        } else {
            let chunk = shard_list.len().div_ceil(cfg.threads);
            let mut results: Vec<Vec<(Vec<Event>, usize)>> = Vec::with_capacity(cfg.threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = shard_list
                    .chunks(chunk)
                    .map(|chunk| scope.spawn(move || chunk.iter().map(worker).collect::<Vec<_>>()))
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(part) => results.push(part),
                        // Re-raise the worker's panic on the calling thread so
                        // the failure keeps its original message.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            results.into_iter().flatten().collect()
        };

        let mut temporal_count = 0usize;
        let mut merged: Vec<Event> = Vec::new();
        for (events, n) in results {
            temporal_count += n;
            merged.extend(events);
        }
        merged.sort_by_key(|e| (e.time, e.first_recid));
        (merged, temporal_count)
    }
}

impl CoAnalysisResult {
    /// Fraction of events that fired on idle hardware (case 2).
    pub fn idle_event_fraction(&self) -> f64 {
        let (_, idle, _) = self.matching.case_counts();
        if self.events.is_empty() {
            return 0.0;
        }
        idle as f64 / self.events.len() as f64
    }

    /// Assemble the twelve observations.
    pub fn observations(&self) -> Observations {
        Observations::assemble(
            &self.filter_stats,
            &self.impact,
            &self.root_cause,
            self.root_cause.app_event_fraction(&self.events),
            self.table_iv.as_ref(),
            &self.midplane,
            &self.burst,
            &self.interruption,
            self.idle_event_fraction(),
            &self.propagation,
            &self.vulnerability,
        )
    }

    /// Events of case 1/2/3 (convenience for reports).
    pub fn case_counts(&self) -> (usize, usize, usize) {
        self.matching.case_counts()
    }

    /// The case-2 (idle) events, by reference.
    pub fn idle_events(&self) -> Vec<&Event> {
        self.events
            .iter()
            .zip(&self.matching.per_event)
            .filter(|(_, m)| m.case == EventCase::IdleLocation)
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_sim::{SimConfig, Simulation};

    fn small_run(seed: u64) -> (bgp_sim::SimOutput, CoAnalysisResult) {
        let out = Simulation::new(SimConfig::small_test(seed))
            .expect("valid config")
            .run();
        let result = CoAnalysis::default().run(&out.ras, &out.jobs);
        (out, result)
    }

    #[test]
    fn pipeline_compresses_heavily() {
        let (_, r) = small_run(1);
        assert!(r.filter_stats.raw_fatal > 1_000);
        assert!(
            r.filter_stats.ts_causal_compression() > 0.9,
            "compression {}",
            r.filter_stats.ts_causal_compression()
        );
        assert!(r.filter_stats.after_causal >= r.filter_stats.after_job_related);
        // Merged record counts are conserved end to end.
        let total: u32 = r.events_final.iter().map(|e| e.merged).sum();
        assert_eq!(total as usize, r.filter_stats.raw_fatal);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let out = Simulation::new(SimConfig::small_test(2))
            .expect("valid config")
            .run();
        let par = CoAnalysis::default().run(&out.ras, &out.jobs);
        let seq = CoAnalysis::with_config(CoAnalysisConfig::sequential()).run(&out.ras, &out.jobs);
        assert_eq!(par.events, seq.events);
        assert_eq!(par.filter_stats, seq.filter_stats);
        assert_eq!(par.matching, seq.matching);
        assert_eq!(par.events_final, seq.events_final);
    }

    #[test]
    fn recovers_interruptions_close_to_truth() {
        let (out, r) = small_run(3);
        let truth = out.truth.total_interruptions();
        let found = r.matching.interrupted_jobs();
        assert!(truth > 0);
        let recall = found as f64 / truth as f64;
        assert!(recall > 0.8, "found {found} of {truth} true interruptions");
    }

    #[test]
    fn observations_assemble_and_print() {
        let (_, r) = small_run(4);
        let obs = r.observations();
        let text = obs.to_string();
        assert!(text.contains("Obs 12"));
        assert!(obs.obs3_ts_compression > 0.5);
    }

    #[test]
    fn case_accessors_consistent() {
        let (_, r) = small_run(5);
        let (c1, c2, c3) = r.case_counts();
        assert_eq!(c1 + c2 + c3, r.events.len());
        assert_eq!(r.idle_events().len(), c2);
        assert!((r.idle_event_fraction() - c2 as f64 / r.events.len() as f64).abs() < 1e-12);
    }
}
