//! The end-to-end co-analysis pipeline (the paper's Figure 1).
//!
//! `RAS log ─→ temporal ─→ spatial ─→ causal ─→ (match with job log)
//! ─→ job-related filter ─→ classification ─→ characterization`.
//!
//! [`CoAnalysis::run`] is a thin driver: it builds one
//! [`AnalysisContext`](crate::context::AnalysisContext) (the shared index
//! layer) and hands the full [`AnalysisSet`] to the stage-graph executor in
//! [`crate::stage`], which runs independent stages of each dependency wave
//! concurrently and shards the temporal/spatial filters per error code
//! through the same fork-join point. Use [`CoAnalysis::run_selected`] to
//! run only the stages you need, and [`CoAnalysisConfig::sequential`] to
//! force the single-threaded path (the ablation benchmarked in
//! `benches/pipeline.rs`).

use crate::analysis::failure_stats::TableIv;
use crate::analysis::{
    BurstAnalysis, FdaAnalysis, FdaParams, InterruptionStats, MidplaneProfile, PropagationAnalysis,
    VulnerabilityAnalysis,
};
use crate::classify::{ImpactSummary, RootCauseSummary};
use crate::context::{AnalysisContext, AppendBatch, ContextDelta, EventStore};
use crate::event::Event;
use crate::filter::{CausalFilter, CausalRule, FilterStats, SpatialFilter, TemporalFilter};
use crate::matching::{EventCase, Matcher, Matching};
use crate::report::Observations;
use crate::stage::{self, AnalysisProducts, AnalysisSet, DeltaReport, StageCache, StageObserver};
use bgp_model::Duration;
use joblog::JobLog;
use raslog::RasLog;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoAnalysisConfig {
    /// Temporal filter threshold.
    pub temporal: TemporalFilter,
    /// Spatial filter threshold.
    pub spatial: SpatialFilter,
    /// Causal filter parameters.
    pub causal: CausalFilter,
    /// Event↔job matching window.
    pub matcher: Matcher,
    /// Wide-job threshold in midplanes (paper: 32).
    pub wide_threshold: u32,
    /// Window for "re-interrupted quickly" (Observation 6; paper: 1000 s).
    pub quick_window: Duration,
    /// Number of worker threads for the sharded stages (filters, matching,
    /// root-cause classification, vulnerability ranking, FDA mining); 1 =
    /// fully sequential. Every stage is bit-identical at any thread count.
    pub threads: usize,
    /// Fast Dimensional Analysis (frequent-itemset mining) parameters.
    pub fda: FdaParams,
}

impl Default for CoAnalysisConfig {
    fn default() -> Self {
        CoAnalysisConfig {
            temporal: TemporalFilter::default(),
            spatial: SpatialFilter::default(),
            causal: CausalFilter::default(),
            matcher: Matcher::default(),
            wide_threshold: 32,
            quick_window: Duration::seconds(1_000),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            fda: FdaParams::default(),
        }
    }
}

impl CoAnalysisConfig {
    /// A fully sequential configuration (ablation baseline).
    pub fn sequential() -> Self {
        CoAnalysisConfig {
            threads: 1,
            ..Default::default()
        }
    }
}

/// The pipeline entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoAnalysis {
    /// Configuration used by [`CoAnalysis::run`].
    pub config: CoAnalysisConfig,
}

/// Everything a run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CoAnalysisResult {
    /// Events after temporal + spatial + causal filtering.
    pub events: Vec<Event>,
    /// Learned causal rules.
    pub causal_rules: Vec<CausalRule>,
    /// Matching of `events` against the job log.
    pub matching: Matching,
    /// Per-event job-related redundancy flags (parallel to `events`).
    pub job_redundant: Vec<bool>,
    /// Events after job-related filtering.
    pub events_final: Vec<Event>,
    /// Counts through the filter stack.
    pub filter_stats: FilterStats,
    /// Per-code impact classification (Section IV-A).
    pub impact: ImpactSummary,
    /// Per-code root-cause classification (Section IV-B).
    pub root_cause: RootCauseSummary,
    /// Table IV fits (None if either stream is too small to fit).
    pub table_iv: Option<TableIv>,
    /// Figure 4 midplane profile.
    pub midplane: MidplaneProfile,
    /// Figure 5 / Observation 6 burst analysis.
    pub burst: BurstAnalysis,
    /// Table V / Figure 6 interruption statistics.
    pub interruption: InterruptionStats,
    /// Observation 8 propagation analysis.
    pub propagation: PropagationAnalysis,
    /// Section VI-D vulnerability analysis.
    pub vulnerability: VulnerabilityAnalysis,
    /// Fast Dimensional Analysis: ranked over-represented dimension
    /// combinations among interrupted jobs.
    pub fda: FdaAnalysis,
}

impl CoAnalysis {
    /// Build with a custom configuration.
    pub fn with_config(config: CoAnalysisConfig) -> CoAnalysis {
        CoAnalysis { config }
    }

    /// Run the full pipeline.
    ///
    /// Contract: consumes the raw RAS and job logs and returns per-stage
    /// event counts plus classification summaries; deterministic for a given
    /// input (no clock or entropy reads).
    pub fn run(&self, ras: &RasLog, jobs: &JobLog) -> CoAnalysisResult {
        let ctx = AnalysisContext::new(ras, jobs);
        let full = self.run_on(&ctx, AnalysisSet::all()).into_result();
        #[allow(clippy::expect_used)]
        // xtask-allow(no-panic): the full set runs every stage, so every product is present
        full.expect("full analysis set fills every product")
    }

    /// Run only `set` (closed over its dependencies) on freshly indexed
    /// logs.
    ///
    /// Contract: products of stages inside the closed set come back `Some`
    /// and agree exactly with a full [`CoAnalysis::run`] on the same input;
    /// everything else is `None`.
    pub fn run_selected(&self, ras: &RasLog, jobs: &JobLog, set: AnalysisSet) -> AnalysisProducts {
        let ctx = AnalysisContext::new(ras, jobs);
        self.run_on(&ctx, set)
    }

    /// Run `set` (closed over its dependencies) on an existing context —
    /// the cheapest way to run several selections over the same logs.
    ///
    /// Contract: pure function of `ctx`, the configuration, and `set`;
    /// deterministic for a given input and independent of thread count.
    pub fn run_on(&self, ctx: &AnalysisContext<'_>, set: AnalysisSet) -> AnalysisProducts {
        stage::execute(ctx, &self.config, set, None).into_products()
    }

    /// [`CoAnalysis::run_on`] with a [`StageObserver`] notified around every
    /// stage — the hook the `bgp-serve` metrics registry (and
    /// `coctl analyze --timings`) uses to record per-stage wall-clock.
    ///
    /// Contract: produces exactly the products of [`CoAnalysis::run_on`] on
    /// the same input; the observer sees one started/finished pair per stage
    /// in the closed set and cannot affect the results.
    pub fn run_on_observed(
        &self,
        ctx: &AnalysisContext<'_>,
        set: AnalysisSet,
        observer: &dyn StageObserver,
    ) -> AnalysisProducts {
        stage::execute(ctx, &self.config, set, Some(observer)).into_products()
    }
}

/// A resident incremental co-analysis: the owned logs, their event-side
/// indexes, and the previous pass's [`StageCache`], folded forward one
/// [`AppendBatch`] at a time.
///
/// Each [`DeltaSession::append`] merges the batch into the sorted indexes
/// (`EventStore::append_ras`, `JobLog::append`), then re-runs only the
/// stages whose declared inputs changed — with the hard contract that the
/// refreshed [`CoAnalysisResult`] is **bit-identical** to a cold
/// [`CoAnalysis::run`] over the concatenation of everything ingested so
/// far. This is what lets `coserved` serve full (not just streaming-dedup)
/// analysis continuously, and `coctl analyze --append` run day-over-day.
#[derive(Debug)]
pub struct DeltaSession {
    config: CoAnalysisConfig,
    jobs: JobLog,
    store: Option<EventStore>,
    cache: StageCache,
}

impl DeltaSession {
    /// Prime a session with the base logs. Runs one full (all-dirty) pass
    /// to populate the stage cache and returns its result.
    pub fn new(
        config: CoAnalysisConfig,
        ras: &RasLog,
        jobs: JobLog,
    ) -> (DeltaSession, CoAnalysisResult) {
        let mut session = DeltaSession {
            config,
            jobs,
            store: Some(EventStore::from_ras(ras)),
            cache: StageCache::default(),
        };
        // An empty cache marks every stage dirty, so the default (empty)
        // delta yields the priming full pass.
        let (result, _) = session.run_delta(&ContextDelta::default(), None);
        (session, result)
    }

    /// Fold one batch of new records through the stage graph; returns the
    /// refreshed full report and which stages actually re-ran.
    pub fn append(&mut self, batch: AppendBatch) -> (CoAnalysisResult, DeltaReport) {
        self.append_with_observer(batch, None)
    }

    /// [`DeltaSession::append`] with a [`StageObserver`] notified around
    /// every stage that re-runs — the hook `coctl analyze --append
    /// --timings` and the daemon's fold worker use to record per-fold
    /// stage wall-clock. Clean (cache-served) stages are not reported.
    ///
    /// Contract: identical results to [`DeltaSession::append`]; the
    /// observer cannot affect them.
    pub fn append_with_observer(
        &mut self,
        batch: AppendBatch,
        observer: Option<&dyn StageObserver>,
    ) -> (CoAnalysisResult, DeltaReport) {
        let mut delta = match self.store.as_mut() {
            Some(store) => store.append_ras(batch.ras),
            None => ContextDelta::default(),
        };
        delta.jobs_appended = batch.jobs.len();
        if !batch.jobs.is_empty() {
            self.jobs.append(batch.jobs);
        }
        self.run_delta(&delta, observer)
    }

    /// Records ingested so far (events on the RAS side, rows on the job
    /// side).
    pub fn ingested(&self) -> (usize, usize) {
        let events = self.store.as_ref().map_or(0, |s| s.raw_events().len());
        (events, self.jobs.len())
    }

    /// The session's job log (read-only).
    pub fn jobs(&self) -> &JobLog {
        &self.jobs
    }

    fn run_delta(
        &mut self,
        delta: &ContextDelta,
        observer: Option<&dyn StageObserver>,
    ) -> (CoAnalysisResult, DeltaReport) {
        // Move the event buffers into a context (no copy), run, and move
        // them back out — the context's job-side indexes are the only part
        // rebuilt per pass, and the job log at paper scale is ~30× smaller
        // than the event stream.
        let store = self.store.take().unwrap_or_default();
        let ctx = AnalysisContext::from_store(store, &self.jobs);
        let (state, report) = stage::execute_delta(
            &ctx,
            &self.config,
            AnalysisSet::all(),
            &mut self.cache,
            delta,
            observer,
        );
        self.store = Some(ctx.into_store());
        let full = state.into_products().into_result();
        #[allow(clippy::expect_used)]
        // xtask-allow(no-panic): the full set runs every stage, so every product is present
        let result = full.expect("full analysis set fills every product");
        (result, report)
    }
}

impl CoAnalysisResult {
    /// Fraction of events that fired on idle hardware (case 2).
    pub fn idle_event_fraction(&self) -> f64 {
        let (_, idle, _) = self.matching.case_counts();
        if self.events.is_empty() {
            return 0.0;
        }
        idle as f64 / self.events.len() as f64
    }

    /// Assemble the twelve observations.
    pub fn observations(&self) -> Observations {
        Observations::assemble(
            &self.filter_stats,
            &self.impact,
            &self.root_cause,
            self.root_cause.app_event_fraction(&self.events),
            self.table_iv.as_ref(),
            &self.midplane,
            &self.burst,
            &self.interruption,
            self.idle_event_fraction(),
            &self.propagation,
            &self.vulnerability,
        )
    }

    /// Events of case 1/2/3 (convenience for reports).
    pub fn case_counts(&self) -> (usize, usize, usize) {
        self.matching.case_counts()
    }

    /// The case-2 (idle) events, by reference.
    pub fn idle_events(&self) -> Vec<&Event> {
        self.events
            .iter()
            .zip(&self.matching.per_event)
            .filter(|(_, m)| m.case == EventCase::IdleLocation)
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_sim::{SimConfig, Simulation};

    fn small_run(seed: u64) -> (bgp_sim::SimOutput, CoAnalysisResult) {
        let out = Simulation::new(SimConfig::small_test(seed))
            .expect("valid config")
            .run();
        let result = CoAnalysis::default().run(&out.ras, &out.jobs);
        (out, result)
    }

    #[test]
    fn pipeline_compresses_heavily() {
        let (_, r) = small_run(1);
        assert!(r.filter_stats.raw_fatal > 1_000);
        assert!(
            r.filter_stats.ts_causal_compression() > 0.9,
            "compression {}",
            r.filter_stats.ts_causal_compression()
        );
        assert!(r.filter_stats.after_causal >= r.filter_stats.after_job_related);
        // Merged record counts are conserved end to end.
        let total: u32 = r.events_final.iter().map(|e| e.merged).sum();
        assert_eq!(total as usize, r.filter_stats.raw_fatal);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let out = Simulation::new(SimConfig::small_test(2))
            .expect("valid config")
            .run();
        let par = CoAnalysis::default().run(&out.ras, &out.jobs);
        let seq = CoAnalysis::with_config(CoAnalysisConfig::sequential()).run(&out.ras, &out.jobs);
        assert_eq!(par.events, seq.events);
        assert_eq!(par.filter_stats, seq.filter_stats);
        assert_eq!(par.matching, seq.matching);
        assert_eq!(par.events_final, seq.events_final);
    }

    #[test]
    fn recovers_interruptions_close_to_truth() {
        let (out, r) = small_run(3);
        let truth = out.truth.total_interruptions();
        let found = r.matching.interrupted_jobs();
        assert!(truth > 0);
        let recall = found as f64 / truth as f64;
        assert!(recall > 0.8, "found {found} of {truth} true interruptions");
    }

    #[test]
    fn observations_assemble_and_print() {
        let (_, r) = small_run(4);
        let obs = r.observations();
        let text = obs.to_string();
        assert!(text.contains("Obs 12"));
        assert!(obs.obs3_ts_compression > 0.5);
    }

    #[test]
    fn observed_run_matches_unobserved_and_brackets_every_stage() {
        use crate::context::AnalysisContext;
        use crate::stage::{StageId, StageObserver};
        use std::sync::Mutex;
        struct Recorder(Mutex<Vec<(StageId, bool)>>);
        impl StageObserver for Recorder {
            fn stage_started(&self, id: StageId) {
                self.0.lock().unwrap().push((id, false));
            }
            fn stage_finished(&self, id: StageId) {
                self.0.lock().unwrap().push((id, true));
            }
        }
        let out = Simulation::new(SimConfig::small_test(6))
            .expect("valid config")
            .run();
        let ctx = AnalysisContext::new(&out.ras, &out.jobs);
        let set = AnalysisSet::of(&[StageId::Midplane]);
        let rec = Recorder(Mutex::new(Vec::new()));
        let observed = CoAnalysis::default().run_on_observed(&ctx, set, &rec);
        let plain = CoAnalysis::default().run_on(&ctx, set);
        assert_eq!(observed.events_final, plain.events_final);
        assert_eq!(observed.midplane.is_some(), plain.midplane.is_some());
        let calls = rec.0.into_inner().unwrap();
        // One started + one finished per stage of the closed set (5 stages).
        assert_eq!(calls.len(), 2 * set.closure().len());
        for id in set.closure().stages() {
            assert!(calls.contains(&(id, false)) && calls.contains(&(id, true)));
        }
    }

    #[test]
    fn case_accessors_consistent() {
        let (_, r) = small_run(5);
        let (c1, c2, c3) = r.case_counts();
        assert_eq!(c1 + c2 + c3, r.events.len());
        assert_eq!(r.idle_events().len(), c2);
        assert!((r.idle_event_fraction() - c2 as f64 / r.events.len() as f64).abs() < 1e-12);
    }
}
