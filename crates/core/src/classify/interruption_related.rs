//! Identification of interruption-related fatal events (Section IV-A).
//!
//! Not every FATAL-severity code actually hurts jobs. Per error code, the
//! paper inspects which of the three cases its events exhibit:
//!
//! | observed cases | classification |
//! |---|---|
//! | 1 (+2) | interruption-related |
//! | 3 (+2), no 1 | non-fatal for applications |
//! | only 2 | undetermined (treated pessimistically as fatal) |
//! | 1 and 3 both | undetermined |
//!
//! On Intrepid this yields 31 interruption-related, 2 non-fatal, and 49
//! undetermined types (Observation 1: 20.84 % of post-filter fatal events
//! belong to the non-fatal types).

use crate::event::Event;
use crate::matching::{EventCase, Matching};
use raslog::ErrCode;
use std::collections::HashMap;

/// The per-code impact verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeImpact {
    /// Events of this code interrupt jobs.
    InterruptionRelated,
    /// Events of this code were seen under running jobs without harm.
    NonFatal,
    /// Only idle-location sightings — no evidence either way. The paper
    /// (and we) treat these pessimistically as interruption-related.
    UndeterminedIdle,
    /// Conflicting evidence (both interruptions and survivals).
    UndeterminedMixed,
}

impl CodeImpact {
    /// Should a predictor treat this code as dangerous? (Pessimistic rule.)
    pub fn treat_as_fatal(self) -> bool {
        !matches!(self, CodeImpact::NonFatal)
    }
}

/// Classification output plus headline counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpactSummary {
    /// Verdict per error code (codes with at least one event).
    pub per_code: HashMap<ErrCode, CodeImpact>,
    /// Post-filter events belonging to non-fatal codes — the "so-called
    /// fatal events that do not really impact user jobs".
    pub nonfatal_events: usize,
    /// All post-filter events considered.
    pub total_events: usize,
}

impl ImpactSummary {
    /// Count codes with a given verdict.
    pub fn count(&self, impact: CodeImpact) -> usize {
        self.per_code.values().filter(|&&v| v == impact).count()
    }

    /// Fraction of events that are fatal-labeled but harmless
    /// (Observation 1: 20.84 % on Intrepid).
    pub fn nonfatal_event_fraction(&self) -> f64 {
        if self.total_events == 0 {
            return 0.0;
        }
        self.nonfatal_events as f64 / self.total_events as f64
    }
}

/// Classify every code appearing in the event stream.
///
/// Contract: `events` and `matching.per_event` are parallel arrays of equal
/// length; returns a summary covering every distinct code in the input, with
/// each event counted exactly once.
pub fn classify_impact(events: &[Event], matching: &Matching) -> ImpactSummary {
    assert_eq!(events.len(), matching.per_event.len());
    #[derive(Default)]
    struct Cases {
        interrupted: usize,
        idle: usize,
        survived: usize,
    }
    let mut per_code_cases: HashMap<ErrCode, Cases> = HashMap::new();
    for (e, m) in events.iter().zip(&matching.per_event) {
        let c = per_code_cases.entry(e.errcode).or_default();
        match m.case {
            EventCase::Interrupted => c.interrupted += 1,
            EventCase::IdleLocation => c.idle += 1,
            EventCase::NotInterrupted => c.survived += 1,
        }
    }
    let per_code: HashMap<ErrCode, CodeImpact> = per_code_cases
        .iter()
        .map(|(&code, c)| {
            let verdict = match (c.interrupted > 0, c.survived > 0) {
                (true, false) => CodeImpact::InterruptionRelated,
                (false, true) => CodeImpact::NonFatal,
                (false, false) => CodeImpact::UndeterminedIdle,
                (true, true) => CodeImpact::UndeterminedMixed,
            };
            (code, verdict)
        })
        .collect();
    let nonfatal_events = events
        .iter()
        .filter(|e| per_code.get(&e.errcode) == Some(&CodeImpact::NonFatal))
        .count();
    ImpactSummary {
        per_code,
        nonfatal_events,
        total_events: events.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::EventMatch;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn ev(t: i64, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            "R00-M0".parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn m(case: EventCase) -> EventMatch {
        EventMatch {
            victims: if case == EventCase::Interrupted {
                vec![1]
            } else {
                vec![]
            },
            running: usize::from(case == EventCase::NotInterrupted),
            case,
        }
    }

    fn summary(cases: Vec<(&str, EventCase)>) -> ImpactSummary {
        let events: Vec<Event> = cases
            .iter()
            .enumerate()
            .map(|(i, (n, _))| ev(i as i64, n))
            .collect();
        let matching = Matching {
            per_event: cases.iter().map(|(_, c)| m(*c)).collect(),
            job_to_event: Default::default(),
        };
        classify_impact(&events, &matching)
    }

    #[test]
    fn four_verdicts() {
        use EventCase::*;
        let s = summary(vec![
            // Interruption-related: cases 1 and 2 only.
            ("_bgp_err_ddr_controller", Interrupted),
            ("_bgp_err_ddr_controller", IdleLocation),
            // Non-fatal: cases 2 and 3 only.
            ("BULK_POWER_FATAL", NotInterrupted),
            ("BULK_POWER_FATAL", IdleLocation),
            // Undetermined-idle: case 2 only.
            ("_bgp_err_diag_netbist", IdleLocation),
            // Undetermined-mixed: cases 1 and 3.
            ("_bgp_err_kernel_panic", Interrupted),
            ("_bgp_err_kernel_panic", NotInterrupted),
        ]);
        let cat = Catalog::standard();
        let get = |n: &str| s.per_code[&cat.lookup(n).unwrap()];
        assert_eq!(
            get("_bgp_err_ddr_controller"),
            CodeImpact::InterruptionRelated
        );
        assert_eq!(get("BULK_POWER_FATAL"), CodeImpact::NonFatal);
        assert_eq!(get("_bgp_err_diag_netbist"), CodeImpact::UndeterminedIdle);
        assert_eq!(get("_bgp_err_kernel_panic"), CodeImpact::UndeterminedMixed);
        assert_eq!(s.count(CodeImpact::NonFatal), 1);
        // Events of the nonfatal code: 2 of 7.
        assert_eq!(s.nonfatal_events, 2);
        assert!((s.nonfatal_event_fraction() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn pessimism_flag() {
        assert!(CodeImpact::InterruptionRelated.treat_as_fatal());
        assert!(CodeImpact::UndeterminedIdle.treat_as_fatal());
        assert!(CodeImpact::UndeterminedMixed.treat_as_fatal());
        assert!(!CodeImpact::NonFatal.treat_as_fatal());
    }

    #[test]
    fn empty_input() {
        let s = classify_impact(&[], &Matching::default());
        assert_eq!(s.total_events, 0);
        assert_eq!(s.nonfatal_event_fraction(), 0.0);
    }
}
