//! Per-error-code classification: impact (does it really interrupt jobs?)
//! and root cause (system failure vs. application error).

pub mod interruption_related;
pub mod root_cause;

pub use interruption_related::{classify_impact, CodeImpact, ImpactSummary};
pub use root_cause::{
    classify_root_cause, classify_root_cause_with_threads, RootCause, RootCauseSummary,
};
