//! Root-cause separation: system failures vs. application errors
//! (Section IV-B).
//!
//! The COMPONENT field can't do it (75 % of fatal events say KERNEL, none
//! say APPLICATION), so the paper uses job behaviour:
//!
//! 1. codes never seen under a running job → **system failure** (hardware
//!    fails just as happily when idle);
//! 2. the same code interrupting *different executables* at the *same
//!    location* consecutively → **system failure** (the scheduler keeps
//!    feeding jobs to broken hardware);
//! 3. the same code following *one executable* across *different locations*,
//!    while the old location stops producing it → **application error**
//!    (the bug travels with the code, not the hardware — Figure 2);
//! 4. anything still unlabeled → assign the label of the labeled code whose
//!    occurrence profile it best **Pearson-correlates** with.

use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use bgp_stats::pearson::pearson;
use raslog::ErrCode;
use std::collections::HashMap;

/// The root-cause verdict for a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// Hardware / system software.
    SystemFailure,
    /// User code or operation.
    ApplicationError,
}

/// Which rule produced a verdict (for reporting and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCauseRule {
    /// Rule 1: only ever fired on idle hardware.
    IdleOnly,
    /// Rule 2: interrupted multiple executables at one location.
    StickyLocation,
    /// Rule 3: followed one executable across locations.
    FollowsExecutable,
    /// Rule 4: Pearson-correlation fallback.
    CorrelationFallback,
}

/// Classification output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootCauseSummary {
    /// Verdict and the rule that decided it, per code.
    pub per_code: HashMap<ErrCode, (RootCause, RootCauseRule)>,
}

impl RootCauseSummary {
    /// The verdict for a code, if classified.
    pub fn cause(&self, code: ErrCode) -> Option<RootCause> {
        self.per_code.get(&code).map(|&(c, _)| c)
    }

    /// Number of codes with each verdict: `(system, application)`.
    pub fn counts(&self) -> (usize, usize) {
        let sys = self
            .per_code
            .values()
            .filter(|(c, _)| *c == RootCause::SystemFailure)
            .count();
        (sys, self.per_code.len() - sys)
    }

    /// Fraction of *events* attributed to application errors
    /// (Observation 2: 17.73 % on Intrepid).
    pub fn app_event_fraction(&self, events: &[Event]) -> f64 {
        if events.is_empty() {
            return 0.0;
        }
        let app = events
            .iter()
            .filter(|e| self.cause(e.errcode) == Some(RootCause::ApplicationError))
            .count();
        app as f64 / events.len() as f64
    }
}

/// Classify every code in the event stream (the `RootCause` stage).
///
/// Daily occurrence profiles for the correlation fallback are built from
/// the event stream itself.
///
/// Contract: input events may arrive in any order; returns one verdict per
/// distinct code in the stream, and never invents codes absent from it.
pub fn classify_root_cause(
    events: &[Event],
    matching: &Matching,
    ctx: &AnalysisContext<'_>,
) -> RootCauseSummary {
    assert_eq!(events.len(), matching.per_event.len());
    let mut summary = RootCauseSummary::default();

    // Gather per-code evidence.
    #[derive(Default)]
    struct Evidence {
        /// Did any event of this code have a victim?
        interrupts: bool,
        /// (midplane, executable, time) triples of interruptions.
        hits: Vec<(u8, joblog::ExecId, bgp_model::Timestamp)>,
    }
    let mut evidence: HashMap<ErrCode, Evidence> = HashMap::new();
    for (e, m) in events.iter().zip(&matching.per_event) {
        let ev = evidence.entry(e.errcode).or_default();
        for &job_id in &m.victims {
            if let Some(job) = ctx.job(job_id) {
                ev.interrupts = true;
                ev.hits.push((
                    job.partition.first().map_or(0, |m| m.index()) as u8,
                    job.exec,
                    e.time,
                ));
            }
        }
    }

    for (&code, ev) in &evidence {
        // Rule 1.
        if !ev.interrupts {
            summary
                .per_code
                .insert(code, (RootCause::SystemFailure, RootCauseRule::IdleOnly));
            continue;
        }
        // Rule 2: *consecutive* interruptions of different executables at
        // one location, with no clean run there in between — the scheduler
        // feeding fresh jobs to broken hardware. Without the
        // consecutiveness requirement, two unrelated buggy executables that
        // happen to share a popular midplane would mislabel an application
        // code as a system failure.
        let mut by_location: HashMap<u8, Vec<(joblog::ExecId, bgp_model::Timestamp)>> =
            HashMap::new();
        for &(mp, exec, t) in &ev.hits {
            by_location.entry(mp).or_default().push((exec, t));
        }
        let mut sticky = false;
        'outer: for (&mp_idx, hits) in by_location.iter_mut() {
            hits.sort_by_key(|&(_, t)| t);
            let Ok(mp) = bgp_model::MidplaneId::from_index(mp_idx) else {
                continue;
            };
            for pair in hits.windows(2) {
                let ((exec_a, t_a), (exec_b, t_b)) = (pair[0], pair[1]);
                if exec_a == exec_b {
                    continue; // same executable: could be its own bug
                }
                let clean_between = ctx.overlapping(mp, t_a, t_b).iter().any(|j| {
                    j.start_time > t_a
                        && j.end_time < t_b
                        && !matching.job_to_event.contains_key(&j.job_id)
                });
                if !clean_between {
                    sticky = true;
                    break 'outer;
                }
            }
        }
        if sticky {
            summary.per_code.insert(
                code,
                (RootCause::SystemFailure, RootCauseRule::StickyLocation),
            );
            continue;
        }
        // Rule 3 (the paper's Figure 2): the code follows one executable
        // across locations, AND the old location goes quiet — if the code
        // keeps firing at the old location after the executable has moved
        // on, the hardware there is suspect, not the executable.
        let mut by_exec: HashMap<joblog::ExecId, Vec<(u8, bgp_model::Timestamp)>> = HashMap::new();
        for &(mp, exec, t) in &ev.hits {
            by_exec.entry(exec).or_default().push((mp, t));
        }
        let mut follows = false;
        'exec_scan: for hits in by_exec.values_mut() {
            hits.sort_by_key(|&(_, t)| t);
            for w in hits.windows(2) {
                let ((m1, t1), (m2, _t2)) = (w[0], w[1]);
                if m1 == m2 {
                    continue;
                }
                // Old location quiet: no interruption of this code at m1
                // after t1 (by anyone).
                let old_location_quiet = !ev.hits.iter().any(|&(mp, _, t)| mp == m1 && t > t1);
                if old_location_quiet {
                    follows = true;
                    break 'exec_scan;
                }
            }
        }
        if follows {
            summary.per_code.insert(
                code,
                (
                    RootCause::ApplicationError,
                    RootCauseRule::FollowsExecutable,
                ),
            );
            continue;
        }
        // Defer to the correlation fallback.
    }

    // Rule 4: Pearson fallback over daily occurrence profiles.
    let unlabeled: Vec<ErrCode> = evidence
        .keys()
        .filter(|c| !summary.per_code.contains_key(c))
        .copied()
        .collect();
    if !unlabeled.is_empty() {
        let profiles = daily_profiles(events);
        let mut labeled: Vec<(ErrCode, RootCause)> = summary
            .per_code
            .iter()
            .map(|(&c, &(cause, _))| (c, cause))
            .collect();
        // Deterministic order so equal correlations always pick the same
        // winner (HashMap iteration order must not leak into results).
        labeled.sort_by_key(|&(c, _)| c);
        for code in unlabeled {
            let mut best: Option<(f64, RootCause)> = None;
            if let Some(p) = profiles.get(&code) {
                for &(other, cause) in &labeled {
                    if let Some(q) = profiles.get(&other) {
                        if let Ok(r) = pearson(p, q) {
                            if best.is_none_or(|(b, _)| r > b) {
                                best = Some((r, cause));
                            }
                        }
                    }
                }
            }
            // With no usable correlation, fall back to the pessimistic
            // default: treat it as a system failure (an administrator can
            // act on that; blaming a user needs positive evidence).
            let cause = best.map_or(RootCause::SystemFailure, |(_, c)| c);
            summary
                .per_code
                .insert(code, (cause, RootCauseRule::CorrelationFallback));
        }
    }
    summary
}

/// Daily occurrence-count vectors per code, over the event stream's span.
fn daily_profiles(events: &[Event]) -> HashMap<ErrCode, Vec<f64>> {
    let mut out: HashMap<ErrCode, Vec<f64>> = HashMap::new();
    let Some(first) = events.first() else {
        return out;
    };
    let t0 = first.time;
    let days = events
        .last()
        .map(|e| e.time.days_since(t0) as usize + 1)
        .unwrap_or(1);
    for e in events {
        let day = e.time.days_since(t0) as usize;
        let v = out.entry(e.errcode).or_insert_with(|| vec![0.0; days]);
        v[day] += 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::Matcher;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Failed(1),
        }
    }

    fn classify(events: Vec<Event>, jobs: Vec<JobRecord>) -> RootCauseSummary {
        let log = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::for_jobs(&log);
        let matching = Matcher::default().run(&events, &ctx);
        classify_root_cause(&events, &matching, &ctx)
    }

    #[test]
    fn idle_only_is_system() {
        let s = classify(
            vec![ev(100, "R00-M0", "_bgp_err_diag_netbist")],
            vec![job(1, 5, 0, 50, "R30-M0")],
        );
        let code = Catalog::standard().lookup("_bgp_err_diag_netbist").unwrap();
        assert_eq!(
            s.per_code[&code],
            (RootCause::SystemFailure, RootCauseRule::IdleOnly)
        );
    }

    #[test]
    fn sticky_location_is_system() {
        // Two different executables die at the same midplane with the same
        // code (the Figure-2 inverse).
        let s = classify(
            vec![
                ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
                ev(3_000, "R00-M0", "_bgp_err_ddr_controller"),
            ],
            vec![
                job(1, 10, 0, 1_000, "R00-M0"),
                job(2, 11, 2_000, 3_000, "R00-M0"),
            ],
        );
        let code = Catalog::standard()
            .lookup("_bgp_err_ddr_controller")
            .unwrap();
        assert_eq!(
            s.per_code[&code],
            (RootCause::SystemFailure, RootCauseRule::StickyLocation)
        );
    }

    #[test]
    fn follows_executable_is_application() {
        // The same executable dies with the same code at two midplanes
        // (the paper's Figure 2).
        let s = classify(
            vec![
                ev(1_000, "R00-M0", "_bgp_err_app_out_of_memory"),
                ev(3_000, "R07-M1", "_bgp_err_app_out_of_memory"),
            ],
            vec![
                job(1, 42, 0, 1_000, "R00-M0"),
                job(2, 42, 2_000, 3_000, "R07-M1"),
            ],
        );
        let code = Catalog::standard()
            .lookup("_bgp_err_app_out_of_memory")
            .unwrap();
        assert_eq!(
            s.per_code[&code],
            (
                RootCause::ApplicationError,
                RootCauseRule::FollowsExecutable
            )
        );
        let (sys, app) = s.counts();
        assert_eq!((sys, app), (0, 1));
    }

    #[test]
    fn correlation_fallback_assigns_nearest_profile() {
        // `mystery` (a single-victim code with no spatial evidence) co-fires
        // day-by-day with the labeled app code, and anti-correlates with the
        // labeled system code.
        let mut events = Vec::new();
        let mut jobs = Vec::new();
        let day = 86_400;
        // Days 0..6: app code follows exec 42 between two midplanes (labels
        // it via rule 3), and `mystery` fires the same days on a third
        // midplane interrupting always the same exec at the same place.
        for d in 0..6i64 {
            let t = d * day;
            let (mp_a, mp_b) = if d % 2 == 0 {
                ("R00-M0", "R01-M0")
            } else {
                ("R01-M0", "R00-M0")
            };
            events.push(ev(t + 1_000, mp_a, "_bgp_err_app_out_of_memory"));
            jobs.push(job(100 + d as u64, 42, t, t + 1_000, mp_a));
            let _ = mp_b;
            events.push(ev(t + 2_000, "R05-M0", "_bgp_err_mpi_abort"));
            jobs.push(job(200 + d as u64, 77, t + 1_500, t + 2_000, "R05-M0"));
        }
        // Days 6..12: a system code fires alone at one location under two
        // different execs on day 6 (labels it via rule 2).
        for d in 6..12i64 {
            let t = d * day;
            events.push(ev(t + 500, "R20-M0", "_bgp_err_ddr_controller"));
            jobs.push(job(
                300 + d as u64,
                (d % 2) as u32 + 900,
                t,
                t + 500,
                "R20-M0",
            ));
        }
        events.sort_by_key(|e| e.time);
        let s = classify(events, jobs);
        let cat = Catalog::standard();
        let mystery = cat.lookup("_bgp_err_mpi_abort").unwrap();
        let (cause, rule) = s.per_code[&mystery];
        assert_eq!(rule, RootCauseRule::CorrelationFallback);
        assert_eq!(cause, RootCause::ApplicationError);
    }

    #[test]
    fn app_event_fraction() {
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_app_out_of_memory"),
            ev(3_000, "R07-M1", "_bgp_err_app_out_of_memory"),
            ev(5_000, "R30-M0", "_bgp_err_diag_netbist"),
        ];
        let jobs = vec![
            job(1, 42, 0, 1_000, "R00-M0"),
            job(2, 42, 2_000, 3_000, "R07-M1"),
        ];
        let log = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::for_jobs(&log);
        let matching = Matcher::default().run(&events, &ctx);
        let s = classify_root_cause(&events, &matching, &ctx);
        assert!((s.app_event_fraction(&events) - 2.0 / 3.0).abs() < 1e-12);
    }
}
