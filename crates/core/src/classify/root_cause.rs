//! Root-cause separation: system failures vs. application errors
//! (Section IV-B).
//!
//! The COMPONENT field can't do it (75 % of fatal events say KERNEL, none
//! say APPLICATION), so the paper uses job behaviour:
//!
//! 1. codes never seen under a running job → **system failure** (hardware
//!    fails just as happily when idle);
//! 2. the same code interrupting *different executables* at the *same
//!    location* consecutively → **system failure** (the scheduler keeps
//!    feeding jobs to broken hardware);
//! 3. the same code following *one executable* across *different locations*,
//!    while the old location stops producing it → **application error**
//!    (the bug travels with the code, not the hardware — Figure 2);
//! 4. anything still unlabeled → assign the label of the labeled code whose
//!    occurrence profile it best **Pearson-correlates** with.

use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use raslog::ErrCode;
use std::collections::HashMap;

/// Below this many codes per thread the per-code loops run serially:
/// spawning a worker costs more than classifying a handful of codes, and
/// the output is bit-identical either way (sharding is a pure performance
/// policy).
const MIN_CODES_PER_THREAD: usize = 32;

/// The root-cause verdict for a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// Hardware / system software.
    SystemFailure,
    /// User code or operation.
    ApplicationError,
}

/// Which rule produced a verdict (for reporting and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCauseRule {
    /// Rule 1: only ever fired on idle hardware.
    IdleOnly,
    /// Rule 2: interrupted multiple executables at one location.
    StickyLocation,
    /// Rule 3: followed one executable across locations.
    FollowsExecutable,
    /// Rule 4: Pearson-correlation fallback.
    CorrelationFallback,
}

/// Classification output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootCauseSummary {
    /// Verdict and the rule that decided it, per code.
    pub per_code: HashMap<ErrCode, (RootCause, RootCauseRule)>,
}

impl RootCauseSummary {
    /// The verdict for a code, if classified.
    pub fn cause(&self, code: ErrCode) -> Option<RootCause> {
        self.per_code.get(&code).map(|&(c, _)| c)
    }

    /// Number of codes with each verdict: `(system, application)`.
    pub fn counts(&self) -> (usize, usize) {
        let sys = self
            .per_code
            .values()
            .filter(|(c, _)| *c == RootCause::SystemFailure)
            .count();
        (sys, self.per_code.len() - sys)
    }

    /// Fraction of *events* attributed to application errors
    /// (Observation 2: 17.73 % on Intrepid).
    pub fn app_event_fraction(&self, events: &[Event]) -> f64 {
        if events.is_empty() {
            return 0.0;
        }
        let app = events
            .iter()
            .filter(|e| self.cause(e.errcode) == Some(RootCause::ApplicationError))
            .count();
        app as f64 / events.len() as f64
    }
}

/// Classify every code in the event stream (the `RootCause` stage).
///
/// Daily occurrence profiles for the correlation fallback are built from
/// the event stream itself.
///
/// Contract: input events may arrive in any order; returns one verdict per
/// distinct code in the stream, and never invents codes absent from it.
pub fn classify_root_cause(
    events: &[Event],
    matching: &Matching,
    ctx: &AnalysisContext<'_>,
) -> RootCauseSummary {
    classify_root_cause_with_threads(events, matching, ctx, 1)
}

/// One interruption attributed to a code: (midplane index, executable,
/// event time).
type Hit = (u8, joblog::ExecId, bgp_model::Timestamp);

/// A code paired with its slice of the code-sorted hit list.
type CodeHits<'a> = (ErrCode, &'a [(ErrCode, Hit)]);

/// [`classify_root_cause`] with the per-code rule loops sharded over up to
/// `threads` chunks of the code-sorted evidence list.
///
/// Contract: bit-identical to the single-threaded classification at every
/// thread count — each code's verdict is a pure function of its own
/// evidence (rules 1–3) or of the rule-1–3 labeled set (rule 4), so
/// sharding codes across threads cannot change any verdict.
pub fn classify_root_cause_with_threads(
    events: &[Event],
    matching: &Matching,
    ctx: &AnalysisContext<'_>,
    threads: usize,
) -> RootCauseSummary {
    assert_eq!(events.len(), matching.per_event.len());
    let mut summary = RootCauseSummary::default();

    // Gather per-code evidence: every distinct code (even victimless ones)
    // and its interruption hits, grouped by code via one stable sort
    // instead of a hash map of per-code vectors.
    let mut codes: Vec<ErrCode> = events.iter().map(|e| e.errcode).collect();
    codes.sort_unstable();
    codes.dedup();
    let mut hits: Vec<(ErrCode, Hit)> = Vec::new();
    for (e, m) in events.iter().zip(&matching.per_event) {
        for &job_id in &m.victims {
            if let Some(job) = ctx.job(job_id) {
                hits.push((
                    e.errcode,
                    (
                        job.partition.first().map_or(0, |m| m.index()) as u8,
                        job.exec,
                        e.time,
                    ),
                ));
            }
        }
    }
    hits.sort_by_key(|&(code, _)| code); // stable: keeps event order per code

    // Pair each code with its hit slice (codes and hits are both sorted).
    let mut per_code_hits: Vec<CodeHits<'_>> = Vec::with_capacity(codes.len());
    let mut lo = 0usize;
    for &code in &codes {
        let start = lo
            + hits
                .get(lo..)
                .map_or(0, |rest| rest.partition_point(|&(c, _)| c < code));
        let end = start
            + hits
                .get(start..)
                .map_or(0, |rest| rest.partition_point(|&(c, _)| c <= code));
        per_code_hits.push((code, hits.get(start..end).unwrap_or(&[])));
        lo = end;
    }

    // Rules 1–3, sharded over contiguous chunks of the code-sorted list;
    // every chunk reuses its own grouping scratch across codes.
    let verdicts: Vec<Option<(RootCause, RootCauseRule)>> =
        if threads <= 1 || per_code_hits.len() < threads.saturating_mul(MIN_CODES_PER_THREAD) {
            let mut scratch = RuleScratch::default();
            per_code_hits
                .iter()
                .map(|&(_, h)| classify_one(h, matching, ctx, &mut scratch))
                .collect()
        } else {
            let size = per_code_hits.len().div_ceil(threads).max(1);
            let chunks: Vec<&[CodeHits<'_>]> = per_code_hits.chunks(size).collect();
            bgp_model::bytes::map_chunks_parallel(&chunks, |chunk| {
                let mut scratch = RuleScratch::default();
                chunk
                    .iter()
                    .map(|&(_, h)| classify_one(h, matching, ctx, &mut scratch))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
    for (&code, verdict) in codes.iter().zip(&verdicts) {
        if let Some(v) = verdict {
            summary.per_code.insert(code, *v);
        }
    }

    // Rule 4: Pearson fallback over daily occurrence profiles. Each
    // unlabeled code's decision reads only the rule-1–3 labeled set, so
    // the per-code loop shards exactly.
    let unlabeled: Vec<ErrCode> = codes
        .iter()
        .filter(|c| !summary.per_code.contains_key(c))
        .copied()
        .collect();
    if !unlabeled.is_empty() {
        let profiles = daily_profiles(events);
        // Center every usable profile once: each pairwise Pearson then
        // costs a single dot product instead of two full passes (means and
        // moments) over both vectors. Profiles `pearson` would reject
        // (too short, NaN, zero variance) are not centered at all, so
        // pairs involving them are skipped exactly where the `pearson`
        // errors used to be — the surviving correlations are bit-identical.
        let centered: HashMap<ErrCode, Centered> = profiles
            .iter()
            .filter_map(|(&c, v)| center(v).map(|cen| (c, cen)))
            .collect();
        let mut labeled: Vec<(ErrCode, RootCause)> = summary
            .per_code
            .iter()
            .map(|(&c, &(cause, _))| (c, cause))
            .collect();
        // Deterministic order so equal correlations always pick the same
        // winner (HashMap iteration order must not leak into results).
        labeled.sort_by_key(|&(c, _)| c);
        let labeled_profiles: Vec<(RootCause, &Centered)> = labeled
            .iter()
            .filter_map(|&(other, cause)| centered.get(&other).map(|q| (cause, q)))
            .collect();
        let fallback_one = |code: ErrCode| {
            let mut best: Option<(f64, RootCause)> = None;
            if let Some(p) = centered.get(&code) {
                for &(cause, q) in &labeled_profiles {
                    let mut sxy = 0.0;
                    for (dx, dy) in p.dxs.iter().zip(&q.dxs) {
                        sxy += dx * dy;
                    }
                    let r = (sxy / (p.norm * q.norm)).clamp(-1.0, 1.0);
                    if best.is_none_or(|(b, _)| r > b) {
                        best = Some((r, cause));
                    }
                }
            }
            // With no usable correlation, fall back to the pessimistic
            // default: treat it as a system failure (an administrator can
            // act on that; blaming a user needs positive evidence).
            best.map_or(RootCause::SystemFailure, |(_, c)| c)
        };
        let causes: Vec<RootCause> =
            if threads <= 1 || unlabeled.len() < threads.saturating_mul(MIN_CODES_PER_THREAD) {
                unlabeled.iter().map(|&c| fallback_one(c)).collect()
            } else {
                let size = unlabeled.len().div_ceil(threads).max(1);
                let chunks: Vec<&[ErrCode]> = unlabeled.chunks(size).collect();
                bgp_model::bytes::map_chunks_parallel(&chunks, |chunk| {
                    chunk.iter().map(|&c| fallback_one(c)).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            };
        for (&code, &cause) in unlabeled.iter().zip(&causes) {
            summary
                .per_code
                .insert(code, (cause, RootCauseRule::CorrelationFallback));
        }
    }
    summary
}

/// Reusable grouping buffers for the rule-2/rule-3 scans — one allocation
/// per chunk instead of two hash maps of vectors per code.
#[derive(Default)]
struct RuleScratch {
    /// Hits keyed for rule 2: sorted by (midplane, time).
    by_location: Vec<Hit>,
    /// Hits keyed for rule 3: (exec, midplane, time), sorted by (exec, time).
    by_exec: Vec<(joblog::ExecId, u8, bgp_model::Timestamp)>,
}

/// Rules 1–3 for one code; `None` defers to the correlation fallback.
fn classify_one(
    code_hits: &[(ErrCode, Hit)],
    matching: &Matching,
    ctx: &AnalysisContext<'_>,
    scratch: &mut RuleScratch,
) -> Option<(RootCause, RootCauseRule)> {
    // Rule 1: never interrupted anything.
    if code_hits.is_empty() {
        return Some((RootCause::SystemFailure, RootCauseRule::IdleOnly));
    }
    // Rule 2: *consecutive* interruptions of different executables at
    // one location, with no clean run there in between — the scheduler
    // feeding fresh jobs to broken hardware. Without the
    // consecutiveness requirement, two unrelated buggy executables that
    // happen to share a popular midplane would mislabel an application
    // code as a system failure.
    scratch.by_location.clear();
    scratch
        .by_location
        .extend(code_hits.iter().map(|&(_, h)| h));
    scratch.by_location.sort_by_key(|&(mp, _, t)| (mp, t));
    let mut sticky = false;
    'outer: for group in chunk_by_key(&scratch.by_location, |&(mp, _, _)| mp) {
        let Some(&(mp_idx, _, _)) = group.first() else {
            continue;
        };
        let Ok(mp) = bgp_model::MidplaneId::from_index(mp_idx) else {
            continue;
        };
        for pair in group.windows(2) {
            let ((_, exec_a, t_a), (_, exec_b, t_b)) = (pair[0], pair[1]);
            if exec_a == exec_b {
                continue; // same executable: could be its own bug
            }
            let mut clean_between = false;
            ctx.for_each_overlapping(mp, t_a, t_b, |j| {
                clean_between = clean_between
                    || (j.start_time > t_a
                        && j.end_time < t_b
                        && !matching.job_to_event.contains_key(&j.job_id));
            });
            if !clean_between {
                sticky = true;
                break 'outer;
            }
        }
    }
    if sticky {
        return Some((RootCause::SystemFailure, RootCauseRule::StickyLocation));
    }
    // Rule 3 (the paper's Figure 2): the code follows one executable
    // across locations, AND the old location goes quiet — if the code
    // keeps firing at the old location after the executable has moved
    // on, the hardware there is suspect, not the executable.
    scratch.by_exec.clear();
    scratch
        .by_exec
        .extend(code_hits.iter().map(|&(_, (mp, exec, t))| (exec, mp, t)));
    scratch.by_exec.sort_by_key(|&(exec, _, t)| (exec, t));
    for group in chunk_by_key(&scratch.by_exec, |&(exec, _, _)| exec) {
        for w in group.windows(2) {
            let ((_, m1, t1), (_, m2, _t2)) = (w[0], w[1]);
            if m1 == m2 {
                continue;
            }
            // Old location quiet: no interruption of this code at m1
            // after t1 (by anyone).
            let old_location_quiet = !code_hits.iter().any(|&(_, (mp, _, t))| mp == m1 && t > t1);
            if old_location_quiet {
                return Some((
                    RootCause::ApplicationError,
                    RootCauseRule::FollowsExecutable,
                ));
            }
        }
    }
    None // defer to the correlation fallback
}

/// Iterate maximal runs of items sharing a key (the slice must already be
/// sorted/grouped by that key).
fn chunk_by_key<'s, T, K: PartialEq, F: FnMut(&T) -> K + 's>(
    slice: &'s [T],
    mut key: F,
) -> impl Iterator<Item = &'s [T]> {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        if start >= slice.len() {
            return None;
        }
        let first = slice.get(start).map(&mut key)?;
        let mut end = start + 1;
        while slice.get(end).is_some_and(|t| key(t) == first) {
            end += 1;
        }
        let out = slice.get(start..end);
        start = end;
        out
    })
}

/// A mean-centered daily profile: `dxs[i] = x[i] − mean` and
/// `norm = sqrt(Σ dxs²)`, the per-vector halves of Pearson's formula.
/// With both sides precomputed, `pearson(p, q)` reduces to
/// `(Σ p.dxs[i]·q.dxs[i]) / (p.norm · q.norm)` — the exact same floating-
/// point operations in the same order, evaluated once per profile instead
/// of once per pair.
struct Centered {
    dxs: Vec<f64>,
    norm: f64,
}

/// Center a profile, or `None` where [`bgp_stats::pearson::pearson`] would
/// reject it (fewer than 2 points, NaN, zero variance) so that skipped
/// pairs coincide exactly with the fallback's former `pearson` errors.
fn center(xs: &[f64]) -> Option<Centered> {
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mut mean = 0.0;
    for &x in xs {
        if x.is_nan() {
            return None;
        }
        mean += x;
    }
    mean /= n;
    let dxs: Vec<f64> = xs.iter().map(|&x| x - mean).collect();
    let mut sxx = 0.0;
    for &d in &dxs {
        sxx += d * d;
    }
    (sxx > 0.0).then(|| Centered {
        dxs,
        norm: sxx.sqrt(),
    })
}

/// Daily occurrence-count vectors per code, over the event stream's span.
///
/// The span bounds are computed over the whole stream (not `first`/`last`),
/// so an unsorted stream cannot index a day outside the vectors; for the
/// pipeline's time-sorted streams the result is unchanged.
fn daily_profiles(events: &[Event]) -> HashMap<ErrCode, Vec<f64>> {
    let mut out: HashMap<ErrCode, Vec<f64>> = HashMap::new();
    let Some(t0) = events.iter().map(|e| e.time).min() else {
        return out;
    };
    let days = events
        .iter()
        .map(|e| e.time.days_since(t0) as usize + 1)
        .max()
        .unwrap_or(1);
    for e in events {
        let day = e.time.days_since(t0) as usize;
        let v = out.entry(e.errcode).or_insert_with(|| vec![0.0; days]);
        v[day] += 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::Matcher;
    use bgp_model::Timestamp;
    use joblog::{ExecId, ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: ExitStatus::Failed(1),
        }
    }

    fn classify(events: Vec<Event>, jobs: Vec<JobRecord>) -> RootCauseSummary {
        let log = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::for_jobs(&log);
        let matching = Matcher::default().run(&events, &ctx);
        classify_root_cause(&events, &matching, &ctx)
    }

    #[test]
    fn idle_only_is_system() {
        let s = classify(
            vec![ev(100, "R00-M0", "_bgp_err_diag_netbist")],
            vec![job(1, 5, 0, 50, "R30-M0")],
        );
        let code = Catalog::standard().lookup("_bgp_err_diag_netbist").unwrap();
        assert_eq!(
            s.per_code[&code],
            (RootCause::SystemFailure, RootCauseRule::IdleOnly)
        );
    }

    #[test]
    fn sticky_location_is_system() {
        // Two different executables die at the same midplane with the same
        // code (the Figure-2 inverse).
        let s = classify(
            vec![
                ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
                ev(3_000, "R00-M0", "_bgp_err_ddr_controller"),
            ],
            vec![
                job(1, 10, 0, 1_000, "R00-M0"),
                job(2, 11, 2_000, 3_000, "R00-M0"),
            ],
        );
        let code = Catalog::standard()
            .lookup("_bgp_err_ddr_controller")
            .unwrap();
        assert_eq!(
            s.per_code[&code],
            (RootCause::SystemFailure, RootCauseRule::StickyLocation)
        );
    }

    #[test]
    fn follows_executable_is_application() {
        // The same executable dies with the same code at two midplanes
        // (the paper's Figure 2).
        let s = classify(
            vec![
                ev(1_000, "R00-M0", "_bgp_err_app_out_of_memory"),
                ev(3_000, "R07-M1", "_bgp_err_app_out_of_memory"),
            ],
            vec![
                job(1, 42, 0, 1_000, "R00-M0"),
                job(2, 42, 2_000, 3_000, "R07-M1"),
            ],
        );
        let code = Catalog::standard()
            .lookup("_bgp_err_app_out_of_memory")
            .unwrap();
        assert_eq!(
            s.per_code[&code],
            (
                RootCause::ApplicationError,
                RootCauseRule::FollowsExecutable
            )
        );
        let (sys, app) = s.counts();
        assert_eq!((sys, app), (0, 1));
    }

    #[test]
    fn correlation_fallback_assigns_nearest_profile() {
        // `mystery` (a single-victim code with no spatial evidence) co-fires
        // day-by-day with the labeled app code, and anti-correlates with the
        // labeled system code.
        let mut events = Vec::new();
        let mut jobs = Vec::new();
        let day = 86_400;
        // Days 0..6: app code follows exec 42 between two midplanes (labels
        // it via rule 3), and `mystery` fires the same days on a third
        // midplane interrupting always the same exec at the same place.
        for d in 0..6i64 {
            let t = d * day;
            let (mp_a, mp_b) = if d % 2 == 0 {
                ("R00-M0", "R01-M0")
            } else {
                ("R01-M0", "R00-M0")
            };
            events.push(ev(t + 1_000, mp_a, "_bgp_err_app_out_of_memory"));
            jobs.push(job(100 + d as u64, 42, t, t + 1_000, mp_a));
            let _ = mp_b;
            events.push(ev(t + 2_000, "R05-M0", "_bgp_err_mpi_abort"));
            jobs.push(job(200 + d as u64, 77, t + 1_500, t + 2_000, "R05-M0"));
        }
        // Days 6..12: a system code fires alone at one location under two
        // different execs on day 6 (labels it via rule 2).
        for d in 6..12i64 {
            let t = d * day;
            events.push(ev(t + 500, "R20-M0", "_bgp_err_ddr_controller"));
            jobs.push(job(
                300 + d as u64,
                (d % 2) as u32 + 900,
                t,
                t + 500,
                "R20-M0",
            ));
        }
        events.sort_by_key(|e| e.time);
        let s = classify(events, jobs);
        let cat = Catalog::standard();
        let mystery = cat.lookup("_bgp_err_mpi_abort").unwrap();
        let (cause, rule) = s.per_code[&mystery];
        assert_eq!(rule, RootCauseRule::CorrelationFallback);
        assert_eq!(cause, RootCause::ApplicationError);
    }

    #[test]
    fn app_event_fraction() {
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_app_out_of_memory"),
            ev(3_000, "R07-M1", "_bgp_err_app_out_of_memory"),
            ev(5_000, "R30-M0", "_bgp_err_diag_netbist"),
        ];
        let jobs = vec![
            job(1, 42, 0, 1_000, "R00-M0"),
            job(2, 42, 2_000, 3_000, "R07-M1"),
        ];
        let log = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::for_jobs(&log);
        let matching = Matcher::default().run(&events, &ctx);
        let s = classify_root_cause(&events, &matching, &ctx);
        assert!((s.app_event_fraction(&events) - 2.0 / 3.0).abs() < 1e-12);
    }
}
