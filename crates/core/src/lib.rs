//! # `coanalysis` — co-analysis of RAS logs and job logs
//!
//! This crate is the paper's contribution: given a Blue Gene/P RAS log and
//! the matching Cobalt job log, it
//!
//! 1. **filters** the FATAL record stream down to independent events —
//!    temporal + spatial filtering \[12\]\[9\], causality-related filtering
//!    \[7\], and the paper's new **job-related filtering** (Section IV-C);
//! 2. **matches** fatal events to job terminations by time × location
//!    (Section IV);
//! 3. **classifies** every error code: does it really interrupt jobs
//!    (Section IV-A), and is it a system failure or an application error
//!    (Section IV-B, with the Pearson-correlation fallback);
//! 4. **characterizes** failures and job interruptions: Weibull vs.
//!    exponential interarrival fits with a likelihood-ratio test (Tables IV
//!    and V, Figures 3 and 6), per-midplane failure/workload profiles
//!    (Figure 4), burstiness (Figure 5), propagation (Observation 8), and
//!    job vulnerability (Table VI, Figure 7, information-gain-ratio feature
//!    ranking).
//!
//! The twelve observations of the paper are computed as a single
//! [`report::Observations`] value by [`pipeline::CoAnalysis::run`].
//!
//! ```no_run
//! use bgp_sim::{SimConfig, Simulation};
//! use coanalysis::pipeline::CoAnalysis;
//!
//! let out = Simulation::new(SimConfig::small_test(7)).expect("valid config").run();
//! let result = CoAnalysis::default().run(&out.ras, &out.jobs);
//! println!("{}", result.observations());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod classify;
pub mod context;
pub mod event;
pub mod filter;
pub mod load;
pub mod matching;
pub mod pipeline;
pub mod predict;
pub mod report;
pub mod stage;
pub mod stream;

pub use analysis::{FdaAnalysis, FdaParams};
pub use context::{AnalysisContext, AppendBatch, ContextDelta, EventStore};
pub use event::Event;
pub use load::{
    load_jobs, load_pair, load_ras, LoadError, LoadOptions, LoadedJobs, LoadedRas, LogFormat,
    SnapshotStatus, SourceDiagnostic,
};
pub use pipeline::{CoAnalysis, CoAnalysisConfig, CoAnalysisResult, DeltaSession};
pub use stage::{
    AnalysisProducts, AnalysisSet, DeltaReport, Stage, StageCache, StageId, StageObserver,
};
pub use stream::StreamCounters;
