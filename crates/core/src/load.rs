//! Loading logs from disk: the pluggable format layer over the ports, plus
//! the transparent `.bgpsnap` snapshot cache.
//!
//! This module is the one place that decides *how* log text becomes records:
//!
//! 1. resolve the input path through [`bgp_ports::resolve_input`] (only the
//!    BG/Q adapter is multi-file);
//! 2. read the whole file once;
//! 3. for the BG/P format, if a snapshot directory is configured, try the
//!    matching `.bgpsnap` (validated by format version and a content hash of
//!    the source text) — a hit skips parsing entirely;
//! 4. otherwise decode through the [`LogFormat`]'s source adapter — BG/P in
//!    parallel on newline-aligned byte chunks, BG/Q and syslog line by line,
//!    cassettes by replaying the recorded byte stream through their inner
//!    format — and, if configured (BG/P only), write the snapshot for next
//!    time.
//!
//! [`LoadOptions::format`] selects the **RAS** source adapter. Job
//! accounting is format-specific only for `bgq`, whose directory layout
//! bundles a `jobs.bgq`; every other format reads the BG/P accounting
//! schema — syslog carries no job log at all, and cassettes captured from
//! the serve daemon record the RAS ingest stream. (Job-stream cassettes can
//! still be decoded directly through `bgp_ports::cassette`.)
//!
//! Every snapshot failure — stale hash, old format version, truncation,
//! corruption — is recoverable: the loader falls back to re-parsing and
//! rewrites the snapshot, reporting what happened in [`SnapshotStatus`].

use bgp_model::bytes::content_hash_64;
use bgp_model::mmap::MappedFile;
use bgp_model::snapshot::SnapshotError;
use bgp_ports::SourceBatch;
pub use bgp_ports::{LogFormat, SourceDiagnostic};
use joblog::JobLog;
use raslog::RasLog;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How to load a log file.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Worker threads for parallel parsing; `0` means one per available CPU.
    pub threads: usize,
    /// Directory for `.bgpsnap` snapshots; `None` disables the cache. Only
    /// the BG/P format is snapshot-cached: the other adapters either read
    /// derived inputs (cassettes) or are not hot enough to matter.
    pub snapshot_dir: Option<PathBuf>,
    /// Which source adapter decodes the RAS input (default: BG/P pipes).
    pub format: LogFormat,
    /// Memory-map the input instead of reading it into a buffer, so parsing
    /// runs zero-copy over the page cache (unix `mmap`, `PROT_READ`;
    /// silently falls back to a buffered read where mapping is
    /// unavailable). Identical records either way. Do not combine with log
    /// files that may be *truncated* concurrently — see
    /// [`bgp_model::mmap::MappedFile`] for the `SIGBUS` caveat (append-only
    /// growth is fine: the mapping is fixed at open length).
    pub mmap: bool,
}

impl LoadOptions {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// What the snapshot cache did during one load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// No snapshot directory was configured (or the format is not cached).
    Disabled,
    /// A valid snapshot was loaded; parsing was skipped.
    Loaded,
    /// No snapshot existed; one was written after parsing.
    Written,
    /// A snapshot existed but was unusable; the log was re-parsed and the
    /// snapshot rewritten.
    Rewritten {
        /// Why the existing snapshot was rejected.
        reason: String,
    },
    /// Parsing succeeded but the snapshot could not be written (the load
    /// itself still succeeds; caching is best-effort).
    WriteFailed {
        /// The I/O error that prevented the write.
        reason: String,
    },
}

impl fmt::Display for SnapshotStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotStatus::Disabled => write!(f, "disabled"),
            SnapshotStatus::Loaded => write!(f, "loaded (parse skipped)"),
            SnapshotStatus::Written => write!(f, "written"),
            SnapshotStatus::Rewritten { reason } => write!(f, "rewritten ({reason})"),
            SnapshotStatus::WriteFailed { reason } => write!(f, "write failed ({reason})"),
        }
    }
}

/// A loaded RAS log with its parse diagnostics.
#[derive(Debug)]
pub struct LoadedRas {
    /// The indexed log.
    pub log: RasLog,
    /// Malformed lines skipped during decoding, plus any adapter notes
    /// (empty on a snapshot hit — snapshots only store records, and their
    /// line numbers are meaningless once the source text changes anyway).
    pub parse_errors: Vec<SourceDiagnostic>,
    /// What the snapshot cache did.
    pub snapshot: SnapshotStatus,
}

/// A loaded job log with its parse diagnostics.
#[derive(Debug)]
pub struct LoadedJobs {
    /// The indexed log.
    pub log: JobLog,
    /// Malformed lines skipped during decoding (empty on a snapshot hit).
    pub parse_errors: Vec<SourceDiagnostic>,
    /// What the snapshot cache did.
    pub snapshot: SnapshotStatus,
}

/// A load failure: the source file could not be read, or the container as a
/// whole (e.g. a corrupt cassette) was unusable.
#[derive(Debug)]
pub struct LoadError {
    /// The file that failed.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for LoadError {}

/// The snapshot file for `source` inside `dir`: `<file-name>.bgpsnap`.
pub fn snapshot_file(dir: &Path, source: &Path) -> PathBuf {
    let name = source
        .file_name()
        .map_or_else(|| "log".to_owned(), |n| n.to_string_lossy().into_owned());
    dir.join(format!("{name}.bgpsnap"))
}

fn read_file(path: &Path, mmap: bool) -> Result<MappedFile, LoadError> {
    let result = if mmap {
        MappedFile::open(path)
    } else {
        MappedFile::read(path)
    };
    result.map_err(|e| LoadError {
        path: path.to_owned(),
        message: format!("cannot read: {e}"),
    })
}

/// The shared BG/P load skeleton; record-type specifics come in as closures.
fn load_bgp_generic<R>(
    path: &Path,
    opts: &LoadOptions,
    decode: impl Fn(&[u8], u64) -> Result<Vec<R>, SnapshotError>,
    parse: impl Fn(&[u8], usize) -> SourceBatch<R>,
    encode: impl Fn(&[R], u64) -> Vec<u8>,
) -> Result<(Vec<R>, Vec<SourceDiagnostic>, SnapshotStatus), LoadError> {
    let data = read_file(path, opts.mmap)?;
    let data = data.bytes();
    let hash = content_hash_64(data);
    let snap_path = opts.snapshot_dir.as_deref().map(|d| snapshot_file(d, path));
    let mut stale_reason = None;
    if let Some(sp) = &snap_path {
        if let Ok(snap_bytes) = fs::read(sp) {
            match decode(&snap_bytes, hash) {
                Ok(records) => return Ok((records, Vec::new(), SnapshotStatus::Loaded)),
                Err(e) => stale_reason = Some(e.to_string()),
            }
        }
    }
    let batch = parse(data, opts.effective_threads());
    let status = match (&snap_path, opts.snapshot_dir.as_deref()) {
        (Some(sp), Some(dir)) => {
            let write =
                fs::create_dir_all(dir).and_then(|()| fs::write(sp, encode(&batch.records, hash)));
            match (write, stale_reason) {
                (Ok(()), None) => SnapshotStatus::Written,
                (Ok(()), Some(reason)) => SnapshotStatus::Rewritten { reason },
                (Err(e), _) => SnapshotStatus::WriteFailed {
                    reason: e.to_string(),
                },
            }
        }
        _ => SnapshotStatus::Disabled,
    };
    Ok((batch.records, batch.diagnostics, status))
}

/// Load a RAS log through the format's source adapter ([`LoadOptions::format`]).
///
/// The BG/P path keeps the parallel parse and the snapshot cache it always
/// had (now reached through the `bgp-ports` adapter — same records, same
/// diagnostics, same bytes on disk). The other formats decode without a
/// cache; their snapshot status is always [`SnapshotStatus::Disabled`].
pub fn load_ras(path: &Path, opts: &LoadOptions) -> Result<LoadedRas, LoadError> {
    if opts.format == LogFormat::Bgp {
        let (records, parse_errors, snapshot) = load_bgp_generic(
            path,
            opts,
            |b, h| raslog::snapshot::decode_snapshot(b, Some(h)),
            bgp_ports::bgp::decode_ras,
            raslog::snapshot::encode_snapshot,
        )?;
        return Ok(LoadedRas {
            log: RasLog::from_records(records),
            parse_errors,
            snapshot,
        });
    }
    let resolved = bgp_ports::resolve_input(opts.format, path);
    let data = read_file(&resolved.ras, opts.mmap)?;
    let source = bgp_ports::ras_source(opts.format);
    let batch = source
        .decode_ras(data.bytes(), opts.effective_threads())
        .map_err(|e| LoadError {
            path: resolved.ras.clone(),
            message: e.to_string(),
        })?;
    let mut parse_errors = resolved.notes;
    parse_errors.extend(batch.diagnostics);
    Ok(LoadedRas {
        log: RasLog::from_records(batch.records),
        parse_errors,
        snapshot: SnapshotStatus::Disabled,
    })
}

/// Load a job log (parallel parse + optional snapshot cache).
///
/// Only `bgq` changes the accounting schema (see the module docs); every
/// other format reads BG/P pipes here.
pub fn load_jobs(path: &Path, opts: &LoadOptions) -> Result<LoadedJobs, LoadError> {
    if opts.format == LogFormat::Bgq {
        let resolved = bgp_ports::resolve_input(LogFormat::Bgq, path);
        let jobs_path = resolved.jobs.as_deref().unwrap_or(path);
        let data = read_file(jobs_path, opts.mmap)?;
        let batch = bgp_ports::bgq::decode_jobs(data.bytes());
        return Ok(LoadedJobs {
            log: JobLog::from_jobs(batch.records),
            parse_errors: batch.diagnostics,
            snapshot: SnapshotStatus::Disabled,
        });
    }
    let (jobs, parse_errors, snapshot) = load_bgp_generic(
        path,
        opts,
        |b, h| joblog::snapshot::decode_snapshot(b, Some(h)),
        bgp_ports::bgp::decode_jobs,
        joblog::snapshot::encode_snapshot,
    )?;
    Ok(LoadedJobs {
        log: JobLog::from_jobs(jobs),
        parse_errors,
        snapshot,
    })
}

/// Load both logs concurrently on two scoped threads — co-analysis always
/// needs both, and neither depends on the other.
pub fn load_pair(
    ras_path: &Path,
    jobs_path: &Path,
    opts: &LoadOptions,
) -> Result<(LoadedRas, LoadedJobs), LoadError> {
    std::thread::scope(|scope| {
        let ras = scope.spawn(|| load_ras(ras_path, opts));
        let jobs = scope.spawn(|| load_jobs(jobs_path, opts));
        let ras = match ras.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let jobs = match jobs.join() {
            Ok(j) => j,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        Ok((ras?, jobs?))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_ports::cassette::{Recorder, StreamKind};

    fn ras_record() -> raslog::RasRecord {
        raslog::RasRecord::new(
            1,
            bgp_model::Timestamp::from_unix(1_236_000_000),
            "R00-M0".parse().unwrap(),
            raslog::Catalog::standard()
                .lookup("_bgp_err_kernel_panic")
                .unwrap(),
        )
    }

    fn write_fixture(dir: &Path) -> (PathBuf, PathBuf) {
        let ras_path = dir.join("ras.log");
        fs::write(
            &ras_path,
            format!("{}\ngarbage\n", raslog::format_record(&ras_record())),
        )
        .unwrap();
        let job = joblog::JobRecord {
            job_id: 1,
            exec: joblog::ExecId(1),
            user: joblog::UserId(1),
            project: joblog::ProjectId(1),
            queue_time: bgp_model::Timestamp::from_unix(100),
            start_time: bgp_model::Timestamp::from_unix(200),
            end_time: bgp_model::Timestamp::from_unix(300),
            partition: "R00-M0".parse().unwrap(),
            exit: joblog::ExitStatus::Completed,
        };
        let jobs_path = dir.join("jobs.log");
        fs::write(&jobs_path, format!("{}\n", joblog::format_record(&job))).unwrap();
        (ras_path, jobs_path)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coanalysis-load-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pair_load_without_snapshots() {
        let dir = tmpdir("plain");
        let (ras_path, jobs_path) = write_fixture(&dir);
        let (ras, jobs) = load_pair(&ras_path, &jobs_path, &LoadOptions::default()).unwrap();
        assert_eq!(ras.log.len(), 1);
        assert_eq!(ras.parse_errors.len(), 1);
        assert_eq!(ras.parse_errors[0].line, 2);
        assert_eq!(ras.snapshot, SnapshotStatus::Disabled);
        assert_eq!(jobs.log.len(), 1);
        assert!(jobs.parse_errors.is_empty());
        let missing = dir.join("nope.log");
        assert!(load_ras(&missing, &LoadOptions::default()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_write_load_invalidate_cycle() {
        let dir = tmpdir("snap");
        let (ras_path, jobs_path) = write_fixture(&dir);
        let opts = LoadOptions {
            threads: 2,
            snapshot_dir: Some(dir.join("snaps")),
            ..LoadOptions::default()
        };
        // First load parses and writes.
        let first = load_ras(&ras_path, &opts).unwrap();
        assert_eq!(first.snapshot, SnapshotStatus::Written);
        assert!(dir.join("snaps").join("ras.log.bgpsnap").exists());
        // Second load hits the snapshot; records identical, errors elided.
        let second = load_ras(&ras_path, &opts).unwrap();
        assert_eq!(second.snapshot, SnapshotStatus::Loaded);
        assert_eq!(second.log.records(), first.log.records());
        assert!(second.parse_errors.is_empty());
        // Appending to the source invalidates by hash → re-parse + rewrite.
        let mut text = fs::read_to_string(&ras_path).unwrap();
        let dup = text.lines().next().unwrap().to_owned();
        text.push_str(&dup);
        text.push('\n');
        fs::write(&ras_path, &text).unwrap();
        let third = load_ras(&ras_path, &opts).unwrap();
        assert!(
            matches!(&third.snapshot, SnapshotStatus::Rewritten { reason } if reason.contains("hash")),
            "got {:?}",
            third.snapshot
        );
        assert_eq!(third.log.len(), 2);
        // And the rewritten snapshot is immediately valid again.
        let fourth = load_ras(&ras_path, &opts).unwrap();
        assert_eq!(fourth.snapshot, SnapshotStatus::Loaded);
        // Corrupting the snapshot file also falls back to re-parse.
        let snap = dir.join("snaps").join("jobs.log.bgpsnap");
        let j1 = load_jobs(&jobs_path, &opts).unwrap();
        assert_eq!(j1.snapshot, SnapshotStatus::Written);
        fs::write(&snap, b"BGPSNAP\0 garbage").unwrap();
        let j2 = load_jobs(&jobs_path, &opts).unwrap();
        assert!(matches!(j2.snapshot, SnapshotStatus::Rewritten { .. }));
        assert_eq!(j2.log.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_load_is_identical_to_buffered_read() {
        let dir = tmpdir("mmap");
        let (ras_path, jobs_path) = write_fixture(&dir);
        let buffered = LoadOptions::default();
        let mapped = LoadOptions {
            mmap: true,
            ..LoadOptions::default()
        };
        let (ras_a, jobs_a) = load_pair(&ras_path, &jobs_path, &buffered).unwrap();
        let (ras_b, jobs_b) = load_pair(&ras_path, &jobs_path, &mapped).unwrap();
        assert_eq!(ras_a.log.records(), ras_b.log.records());
        assert_eq!(ras_a.parse_errors, ras_b.parse_errors);
        assert_eq!(jobs_a.log.jobs(), jobs_b.log.jobs());
        // Missing files error the same way through the mapped path.
        assert!(load_ras(&dir.join("nope.log"), &mapped).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn syslog_format_loads_without_snapshot_cache() {
        let dir = tmpdir("syslog");
        let path = dir.join("messages");
        fs::write(
            &path,
            b"<13>Mar  1 12:30:00 host a\nbroken\n<2>Mar  1 12:30:05 host b\n",
        )
        .unwrap();
        let opts = LoadOptions {
            format: LogFormat::Syslog,
            snapshot_dir: Some(dir.join("snaps")), // must be ignored
            ..LoadOptions::default()
        };
        let loaded = load_ras(&path, &opts).unwrap();
        assert_eq!(loaded.log.len(), 2);
        assert_eq!(loaded.parse_errors.len(), 1);
        assert_eq!(loaded.parse_errors[0].line, 2);
        assert_eq!(loaded.snapshot, SnapshotStatus::Disabled);
        assert!(!dir.join("snaps").exists(), "no snapshot for syslog");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bgq_directory_loads_both_logs() {
        let dir = tmpdir("bgq");
        fs::write(
            dir.join("ras.bgq"),
            b"7,1236000000,FATAL,_bgp_err_kernel_panic,R00-M0\n",
        )
        .unwrap();
        fs::write(dir.join("jobs.bgq"), b"1,1,1,1,100,200,300,R00-M0,0\n").unwrap();
        fs::write(dir.join("env.bgq"), b"whatever\n").unwrap();
        let opts = LoadOptions {
            format: LogFormat::Bgq,
            ..LoadOptions::default()
        };
        let (ras, jobs) = load_pair(&dir, &dir, &opts).unwrap();
        assert_eq!(ras.log.len(), 1);
        assert_eq!(jobs.log.len(), 1);
        // The unmapped env log is acknowledged, not silently ignored.
        assert!(ras
            .parse_errors
            .iter()
            .any(|d| d.message.contains("env.bgq")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cassette_format_replays_identically_to_direct_parse() {
        let dir = tmpdir("cassette");
        let (ras_path, _) = write_fixture(&dir);
        let text = fs::read(&ras_path).unwrap();
        let mut rec = Recorder::new(LogFormat::Bgp, StreamKind::Ras).unwrap();
        // Awkward chunking on purpose: boundaries must not matter for batch.
        for chunk in text.chunks(7) {
            rec.push(1000, chunk);
        }
        let cas_path = dir.join("ras.bgpcas");
        fs::write(&cas_path, rec.finish().encode()).unwrap();
        let direct = load_ras(&ras_path, &LoadOptions::default()).unwrap();
        let opts = LoadOptions {
            format: LogFormat::Cassette,
            ..LoadOptions::default()
        };
        let replayed = load_ras(&cas_path, &opts).unwrap();
        assert_eq!(replayed.log.records(), direct.log.records());
        assert_eq!(replayed.parse_errors, direct.parse_errors);
        // A corrupt cassette is a load error, not an empty log.
        fs::write(&cas_path, b"BGPCAS\0\0garbage").unwrap();
        let err = load_ras(&cas_path, &opts).unwrap_err();
        assert!(err.message.contains("cassette"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
