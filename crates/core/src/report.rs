//! The paper's twelve observations, computed from one co-analysis run.

use crate::analysis::failure_stats::TableIv;
use crate::analysis::{
    BurstAnalysis, InterruptionStats, MidplaneProfile, PropagationAnalysis, VulnerabilityAnalysis,
};
use crate::classify::{CodeImpact, ImpactSummary, RootCauseSummary};
use crate::filter::FilterStats;
use std::fmt;

/// Everything quantitative behind Observations 1–12.
#[derive(Debug, Clone)]
pub struct Observations {
    // Obs 1
    /// Non-fatal-in-practice code count and the event fraction (paper:
    /// 2 types, 20.84 %).
    pub obs1_nonfatal_codes: usize,
    /// Fraction of post-filter fatal events with no job impact.
    pub obs1_nonimpacting_event_fraction: f64,
    // Obs 2
    /// System-failure and application-error type counts (paper: 72 / 8).
    pub obs2_system_types: usize,
    /// Application-error types.
    pub obs2_application_types: usize,
    /// Fraction of events attributed to application errors (paper: 17.73 %).
    pub obs2_app_event_fraction: f64,
    // Obs 3
    /// Temporal-spatial+causal compression (paper: 98.35 %).
    pub obs3_ts_compression: f64,
    /// Additional job-related compression (paper: 13.1 %).
    pub obs3_job_compression: f64,
    // Obs 4
    /// Weibull shape before / after job-related filtering.
    pub obs4_shape_before: f64,
    /// Shape after.
    pub obs4_shape_after: f64,
    /// MTBF ratio after/before (paper: ≈ 3).
    pub obs4_mtbf_ratio: f64,
    /// Did the LRT prefer Weibull on both streams?
    pub obs4_weibull_preferred: bool,
    // Obs 5
    /// Correlation of midplane fatal counts with total workload.
    pub obs5_corr_total_workload: f64,
    /// Correlation with wide-job workload.
    pub obs5_corr_wide_workload: f64,
    // Obs 6
    /// Interrupted-job fraction (paper: 0.45 %).
    pub obs6_interrupted_job_fraction: f64,
    /// Quick re-interruptions within 1000 s (paper: 33).
    pub obs6_quick_reinterruptions: usize,
    /// Longest consecutive interruption run of one executable.
    pub obs6_max_consecutive: usize,
    // Obs 7
    /// MTTI (system) / MTBF (before job filtering) (paper: 4.07).
    pub obs7_mtti_over_mtbf: f64,
    /// Fraction of events on idle locations (paper: 45.45 %).
    pub obs7_idle_event_fraction: f64,
    // Obs 8
    /// Spatially propagating fraction of interrupting events (paper:
    /// 7.22 %).
    pub obs8_spatial_fraction: f64,
    /// Number of codes responsible.
    pub obs8_spatial_code_count: usize,
    // Obs 9
    /// P(interrupt | k) for system interruptions, k = 1..3.
    pub obs9_system_probs: [Option<f64>; 3],
    /// P(interrupt | k) for application interruptions, k = 1..3.
    pub obs9_application_probs: [Option<f64>; 3],
    // Obs 10
    /// Gain ratio of size vs. execution time for system interruptions.
    pub obs10_size_gain_ratio: f64,
    /// Gain ratio of execution time (system category).
    pub obs10_time_gain_ratio: f64,
    // Obs 11
    /// Fraction of app interruptions in the first hour (paper: 74.5 %).
    pub obs11_app_first_hour: f64,
    // Obs 12
    /// Suspicious user count and their interruption share.
    pub obs12_suspicious_users: usize,
    /// Share of interruptions from suspicious users.
    pub obs12_user_share: f64,
}

impl Observations {
    /// Assemble from the analysis pieces.
    #[allow(clippy::too_many_arguments)] // one argument per analysis stage
    pub fn assemble(
        filter_stats: &FilterStats,
        impact: &ImpactSummary,
        root_cause: &RootCauseSummary,
        app_event_fraction: f64,
        table_iv: Option<&TableIv>,
        midplane: &MidplaneProfile,
        burst: &BurstAnalysis,
        interruption: &InterruptionStats,
        idle_event_fraction: f64,
        propagation: &PropagationAnalysis,
        vulnerability: &VulnerabilityAnalysis,
    ) -> Observations {
        let (sys_types, app_types) = root_cause.counts();
        let (shape_before, shape_after, ratio, preferred) = match table_iv {
            Some(t) => (
                t.before.fits.weibull.shape,
                t.after.fits.weibull.shape,
                t.mtbf_ratio(),
                t.before.fits.weibull_preferred(0.05) && t.after.fits.weibull_preferred(0.05),
            ),
            None => (f64::NAN, f64::NAN, f64::NAN, false),
        };
        let mtbf = table_iv.map(|t| t.before.mtbf()).unwrap_or(f64::NAN);
        let find_ratio = |name: &str, ranking: &[(String, bgp_stats::infogain::FeatureScore)]| {
            ranking
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.gain_ratio)
                .unwrap_or(0.0)
        };
        Observations {
            obs1_nonfatal_codes: impact.count(CodeImpact::NonFatal),
            obs1_nonimpacting_event_fraction: impact.nonfatal_event_fraction(),
            obs2_system_types: sys_types,
            obs2_application_types: app_types,
            obs2_app_event_fraction: app_event_fraction,
            obs3_ts_compression: filter_stats.ts_causal_compression(),
            obs3_job_compression: filter_stats.job_related_compression(),
            obs4_shape_before: shape_before,
            obs4_shape_after: shape_after,
            obs4_mtbf_ratio: ratio,
            obs4_weibull_preferred: preferred,
            obs5_corr_total_workload: midplane.corr_with_workload().unwrap_or(f64::NAN),
            obs5_corr_wide_workload: midplane.corr_with_wide_workload().unwrap_or(f64::NAN),
            obs6_interrupted_job_fraction: burst.interrupted_job_fraction,
            obs6_quick_reinterruptions: burst.quick_reinterruptions,
            obs6_max_consecutive: burst.max_consecutive_one_exec,
            obs7_mtti_over_mtbf: interruption.mtti_over_mtbf(mtbf).unwrap_or(f64::NAN),
            obs7_idle_event_fraction: idle_event_fraction,
            obs8_spatial_fraction: propagation.spatial_fraction(),
            obs8_spatial_code_count: propagation.spatial_codes.len(),
            obs9_system_probs: [
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.system,
                    1,
                ),
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.system,
                    2,
                ),
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.system,
                    3,
                ),
            ],
            obs9_application_probs: [
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.application,
                    1,
                ),
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.application,
                    2,
                ),
                crate::analysis::ResubmissionStats::probability(
                    &vulnerability.resubmission.application,
                    3,
                ),
            ],
            obs10_size_gain_ratio: find_ratio("size", &vulnerability.ranking_system),
            obs10_time_gain_ratio: find_ratio("execution time", &vulnerability.ranking_system),
            obs11_app_first_hour: vulnerability.app_interruptions_first_hour,
            obs12_suspicious_users: vulnerability.suspicious_users.0.len(),
            obs12_user_share: vulnerability.suspicious_users.1,
        }
    }
}

/// One shape claim from the paper checked against a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// Which observation the claim belongs to.
    pub observation: u8,
    /// The claim, in words.
    pub claim: &'static str,
    /// Did this run reproduce it?
    pub pass: bool,
}

impl Observations {
    /// Check the paper's qualitative claims against this run's numbers.
    ///
    /// These are *shape* checks (directions, orderings, regimes), not
    /// absolute-number comparisons; `EXPERIMENTS.md` documents the absolute
    /// side. Claims that need several seeds to evaluate fairly (the exact
    /// Figure-7 peak) are checked in their weak single-run form.
    pub fn check_against_paper(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        let mut push = |observation: u8, claim: &'static str, pass: bool| {
            checks.push(ShapeCheck {
                observation,
                claim,
                pass,
            });
        };
        push(
            1,
            "some fatal-labeled codes never impact jobs",
            self.obs1_nonfatal_codes >= 1 && self.obs1_nonimpacting_event_fraction > 0.05,
        );
        push(
            2,
            "system-failure types far outnumber application-error types",
            self.obs2_system_types > 4 * self.obs2_application_types.max(1),
        );
        push(
            2,
            "a non-trivial share of events are application errors",
            (0.02..0.5).contains(&self.obs2_app_event_fraction),
        );
        push(
            3,
            "temporal-spatial+causal filtering removes >95% of FATAL records",
            self.obs3_ts_compression > 0.95,
        );
        push(
            3,
            "job-related filtering removes a further non-trivial slice",
            (0.02..0.4).contains(&self.obs3_job_compression),
        );
        push(
            4,
            "Weibull preferred with shape < 1; shape and MTBF rise after job filtering",
            self.obs4_weibull_preferred
                && self.obs4_shape_before < 1.0
                && self.obs4_shape_after > self.obs4_shape_before
                && self.obs4_mtbf_ratio > 1.0,
        );
        push(
            5,
            "failure counts track wide-job workload better than total workload",
            self.obs5_corr_wide_workload > self.obs5_corr_total_workload,
        );
        push(
            6,
            "interruptions are rare (<3% of jobs) but re-strike quickly",
            self.obs6_interrupted_job_fraction < 0.03 && self.obs6_quick_reinterruptions > 0,
        );
        push(
            7,
            "MTTI exceeds MTBF because many fatals hit idle hardware",
            self.obs7_mtti_over_mtbf > 1.5 && self.obs7_idle_event_fraction > 0.2,
        );
        push(
            8,
            "spatial propagation is rare",
            self.obs8_spatial_fraction < 0.25,
        );
        push(
            9,
            "a resubmission after an interruption is at hugely elevated risk vs the base rate",
            {
                let base = self.obs6_interrupted_job_fraction.max(1e-6);
                self.obs9_system_probs[0].unwrap_or(0.0) > 5.0 * base
                    || self.obs9_application_probs[0].unwrap_or(0.0) > 5.0 * base
            },
        );
        push(
            10,
            "job size outweighs execution time for system-failure vulnerability",
            self.obs10_size_gain_ratio > self.obs10_time_gain_ratio,
        );
        push(
            11,
            "most application-error interruptions strike in the first hour",
            self.obs11_app_first_hour > 0.5,
        );
        push(
            12,
            "a small user set carries half the interruptions",
            self.obs12_suspicious_users <= 30 && self.obs12_user_share >= 0.5,
        );
        checks
    }
}

impl fmt::Display for Observations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = |x: f64| format!("{:.2}%", x * 100.0);
        let p3 = |ps: &[Option<f64>; 3]| -> String {
            ps.iter()
                .enumerate()
                .map(|(i, p)| match p {
                    Some(p) => format!("k={}: {}", i + 1, pct(*p)),
                    None => format!("k={}: n/a", i + 1),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(f, "== The twelve observations (computed) ==")?;
        writeln!(
            f,
            "Obs 1  fatal-labeled codes with no job impact: {} types; {} of post-filter events",
            self.obs1_nonfatal_codes,
            pct(self.obs1_nonimpacting_event_fraction)
        )?;
        writeln!(
            f,
            "Obs 2  root causes: {} system-failure types vs {} application-error types; {} of events are application errors",
            self.obs2_system_types,
            self.obs2_application_types,
            pct(self.obs2_app_event_fraction)
        )?;
        writeln!(
            f,
            "Obs 3  compression: temporal-spatial+causal {}, job-related removes another {}",
            pct(self.obs3_ts_compression),
            pct(self.obs3_job_compression)
        )?;
        writeln!(
            f,
            "Obs 4  Weibull shape {:.3} -> {:.3} after job-related filtering; MTBF grows {:.2}x; Weibull preferred: {}",
            self.obs4_shape_before, self.obs4_shape_after, self.obs4_mtbf_ratio,
            self.obs4_weibull_preferred
        )?;
        writeln!(
            f,
            "Obs 5  midplane failure counts correlate {:.3} with wide-job workload vs {:.3} with total workload",
            self.obs5_corr_wide_workload, self.obs5_corr_total_workload
        )?;
        writeln!(
            f,
            "Obs 6  interruptions are rare ({} of jobs) but bursty: {} re-interruptions within 1000 s; longest run {}",
            pct(self.obs6_interrupted_job_fraction),
            self.obs6_quick_reinterruptions,
            self.obs6_max_consecutive
        )?;
        writeln!(
            f,
            "Obs 7  MTTI is {:.2}x the MTBF; {} of fatal events hit idle hardware",
            self.obs7_mtti_over_mtbf,
            pct(self.obs7_idle_event_fraction)
        )?;
        writeln!(
            f,
            "Obs 8  spatial propagation in {} of interrupting events, via {} code(s)",
            pct(self.obs8_spatial_fraction),
            self.obs8_spatial_code_count
        )?;
        writeln!(f, "Obs 9  P(interrupt | k consecutive interruptions):")?;
        writeln!(f, "        system:      {}", p3(&self.obs9_system_probs))?;
        writeln!(
            f,
            "        application: {}",
            p3(&self.obs9_application_probs)
        )?;
        writeln!(
            f,
            "Obs 10 gain ratio (system interruptions): size {:.4} vs execution time {:.4}",
            self.obs10_size_gain_ratio, self.obs10_time_gain_ratio
        )?;
        writeln!(
            f,
            "Obs 11 {} of application-error interruptions occur in the first hour",
            pct(self.obs11_app_first_hour)
        )?;
        writeln!(
            f,
            "Obs 12 {} suspicious users account for {} of interruptions",
            self.obs12_suspicious_users,
            pct(self.obs12_user_share)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Observations {
        Observations {
            obs1_nonfatal_codes: 2,
            obs1_nonimpacting_event_fraction: 0.2084,
            obs2_system_types: 72,
            obs2_application_types: 8,
            obs2_app_event_fraction: 0.1773,
            obs3_ts_compression: 0.9835,
            obs3_job_compression: 0.131,
            obs4_shape_before: 0.387,
            obs4_shape_after: 0.573,
            obs4_mtbf_ratio: 3.7,
            obs4_weibull_preferred: true,
            obs5_corr_total_workload: 0.1,
            obs5_corr_wide_workload: 0.8,
            obs6_interrupted_job_fraction: 0.0045,
            obs6_quick_reinterruptions: 33,
            obs6_max_consecutive: 4,
            obs7_mtti_over_mtbf: 4.07,
            obs7_idle_event_fraction: 0.4545,
            obs8_spatial_fraction: 0.0722,
            obs8_spatial_code_count: 2,
            obs9_system_probs: [Some(0.3), Some(0.53), Some(0.4)],
            obs9_application_probs: [Some(0.4), Some(0.5), None],
            obs10_size_gain_ratio: 0.02,
            obs10_time_gain_ratio: 0.005,
            obs11_app_first_hour: 0.745,
            obs12_suspicious_users: 16,
            obs12_user_share: 0.5325,
        }
    }

    #[test]
    fn paper_shape_checks_pass_on_paperlike_numbers() {
        let checks = dummy().check_against_paper();
        assert_eq!(checks.len(), 14);
        for c in &checks {
            assert!(c.pass, "claim failed on paper-like numbers: {}", c.claim);
        }
        // Break one number, one check must fail.
        let mut bad = dummy();
        bad.obs5_corr_wide_workload = -0.9;
        assert!(bad
            .check_against_paper()
            .iter()
            .any(|c| c.observation == 5 && !c.pass));
    }

    #[test]
    fn display_mentions_every_observation() {
        let text = dummy().to_string();
        for i in 1..=12 {
            assert!(
                text.contains(&format!("Obs {i}")) || text.contains(&format!("Obs {i} ")),
                "missing observation {i}"
            );
        }
        assert!(text.contains("20.84%"));
        assert!(text.contains("4.07x"));
        assert!(text.contains("k=3: n/a"));
    }
}
