//! Temporal filtering: collapse repeats of the same code at the same
//! location within a threshold.
//!
//! "Temporal filtering removes multiple events being reported from the same
//! location within a threshold" (Section IV, citing Liang et al. \[12\]).
//! The gap is measured against the *last kept or absorbed* record, so a
//! continuous stream of repeats collapses into one event no matter how long
//! the storm runs — the classic behaviour of \[12\].

use crate::event::Event;
use crate::filter::dedup::{DedupDecision, DedupWindow};
use bgp_model::Duration;

/// Temporal filter with a configurable threshold (default 300 s, the common
/// choice in the Blue Gene literature).
///
/// ```
/// use bgp_model::Timestamp;
/// use coanalysis::event::Event;
/// use coanalysis::filter::TemporalFilter;
/// use raslog::Catalog;
///
/// let code = Catalog::standard().lookup("_bgp_err_ddr_controller").unwrap();
/// let loc = "R00-M0-N00-J00".parse().unwrap();
/// let storm: Vec<Event> = (0..20)
///     .map(|i| Event::synthetic(Timestamp::from_unix(i * 30), loc, code, 1, i as u64))
///     .collect();
/// let events = TemporalFilter::default().apply(&storm);
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].merged, 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalFilter {
    /// Records of the same (code, location) closer than this to the previous
    /// one are merged into it.
    pub threshold: Duration,
}

impl Default for TemporalFilter {
    fn default() -> Self {
        TemporalFilter {
            threshold: Duration::minutes(5),
        }
    }
}

impl TemporalFilter {
    /// Apply to a time-sorted event stream (the `TemporalSpatial` stage's
    /// first half, run per error-code shard).
    ///
    /// Contract: input must be time-sorted; output is a subsequence of the
    /// input keeping the first event of each same-location burst per code.
    pub fn apply(&self, events: &[Event]) -> Vec<Event> {
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        // Shared rolling-window core, keyed by (code, exact location).
        let mut window = DedupWindow::new(self.threshold);
        let mut out: Vec<Event> = Vec::new();
        for e in events {
            match window.observe((e.errcode, e.location), e.time, out.len() as u32) {
                DedupDecision::Merged(slot) => out[slot as usize].absorb(e),
                DedupDecision::Fresh => out.push(*e),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    #[test]
    fn collapses_repeats_within_threshold() {
        let f = TemporalFilter::default();
        let events = vec![
            ev(0, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
            ev(100, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
            ev(200, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
        ];
        let out = f.apply(&events);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged, 3);
        assert_eq!(out[0].time, Timestamp::from_unix(0));
    }

    #[test]
    fn rolling_window_extends_through_long_storms() {
        // Records every 200 s for 40 minutes: each is within 300 s of the
        // previous, so the whole storm is one event even though the last
        // record is far from the first.
        let f = TemporalFilter::default();
        let events: Vec<Event> = (0..12)
            .map(|i| ev(i * 200, "R00-M0-N01-J02", "_bgp_err_kernel_panic"))
            .collect();
        let out = f.apply(&events);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged, 12);
    }

    #[test]
    fn gap_beyond_threshold_starts_new_event() {
        let f = TemporalFilter::default();
        let events = vec![
            ev(0, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
            ev(1000, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
        ];
        let out = f.apply(&events);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn different_locations_or_codes_kept() {
        let f = TemporalFilter::default();
        let events = vec![
            ev(0, "R00-M0-N01-J02", "_bgp_err_kernel_panic"),
            ev(10, "R00-M0-N01-J03", "_bgp_err_kernel_panic"),
            ev(20, "R00-M0-N01-J02", "_bgp_err_ddr_controller"),
        ];
        let out = f.apply(&events);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merged_counts_are_conserved() {
        let f = TemporalFilter::default();
        let events: Vec<Event> = (0..50)
            .map(|i| ev(i * 7, "R01-M1-N00-J00", "_bgp_err_kernel_panic"))
            .collect();
        let out = f.apply(&events);
        let total: u32 = out.iter().map(|e| e.merged).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn empty_input() {
        assert!(TemporalFilter::default().apply(&[]).is_empty());
    }
}
