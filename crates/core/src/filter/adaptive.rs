//! Adaptive temporal filtering — the per-code-threshold refinement of
//! Liang et al.'s adaptive semantic filter (the paper's reference \[4\]).
//!
//! A fixed temporal threshold treats a chatty heartbeat-style code and a
//! rare hardware alarm identically. The adaptive filter learns a threshold
//! *per error code* from that code's own interarrival structure: storms
//! produce a dense cluster of tiny gaps well separated from the
//! between-event gaps, so the threshold is placed at the widest
//! multiplicative gap in the code's sorted interarrival sample (a 1-D
//! two-cluster split in log space), clamped to a configurable range.
//!
//! The ablation in `benches/filtering.rs` and the unit tests compare it to
//! the fixed-threshold filter: on storm-structured data it achieves the
//! same compression with far less risk of merging two *distinct* events of
//! a slow code, because slow codes get tight thresholds automatically.

use crate::event::Event;
use crate::filter::TemporalFilter;
use bgp_model::Duration;
use raslog::ErrCode;
use std::collections::HashMap;

/// Temporal filter with per-code thresholds learned from the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTemporalFilter {
    /// Smallest threshold the learner may pick.
    pub min_threshold: Duration,
    /// Largest threshold the learner may pick.
    pub max_threshold: Duration,
    /// Fallback for codes with too few gaps to learn from.
    pub fallback: Duration,
}

impl Default for AdaptiveTemporalFilter {
    fn default() -> Self {
        AdaptiveTemporalFilter {
            min_threshold: Duration::seconds(30),
            max_threshold: Duration::minutes(30),
            fallback: Duration::minutes(5),
        }
    }
}

impl AdaptiveTemporalFilter {
    /// Learn a threshold for every code present in the stream.
    ///
    /// For each code, take the per-location interarrival sample, sort it,
    /// and split at the largest jump in log-space between consecutive gap
    /// values; the threshold is the geometric mean of the two sides of the
    /// split. Codes with < 4 usable gaps fall back to `fallback`.
    pub fn learn(&self, events: &[Event]) -> HashMap<ErrCode, Duration> {
        // Per (code, location) gap samples — temporal filtering is a
        // same-location notion.
        let mut last_seen: HashMap<(ErrCode, bgp_model::Location), bgp_model::Timestamp> =
            HashMap::new();
        let mut gaps: HashMap<ErrCode, Vec<f64>> = HashMap::new();
        for e in events {
            if let Some(prev) = last_seen.insert((e.errcode, e.location), e.time) {
                let dt = (e.time - prev).as_secs();
                if dt > 0 {
                    gaps.entry(e.errcode).or_default().push(dt as f64);
                }
            }
        }
        gaps.into_iter()
            .map(|(code, mut g)| {
                let threshold = if g.len() < 4 {
                    self.fallback
                } else {
                    g.sort_by(f64::total_cmp);
                    let mut best_jump = 0.0f64;
                    let mut split = None;
                    for w in g.windows(2) {
                        let jump = (w[1] / w[0]).ln();
                        if jump > best_jump {
                            best_jump = jump;
                            split = Some((w[0], w[1]));
                        }
                    }
                    match split {
                        // Geometric mean of the two sides of the widest gap.
                        Some((lo, hi)) if best_jump > (2.0f64).ln() => {
                            Duration::seconds((lo * hi).sqrt() as i64)
                        }
                        // No clear bimodality: fall back.
                        _ => self.fallback,
                    }
                };
                (
                    code,
                    clamp(threshold, self.min_threshold, self.max_threshold),
                )
            })
            .collect()
    }

    /// Learn thresholds and filter, in one step. Codes never seen in
    /// learning (impossible here, same stream) use the fallback.
    ///
    /// Contract: input must be time-sorted; output is a subsequence of the
    /// input (original order, no duplication, no new events).
    pub fn apply(&self, events: &[Event]) -> Vec<Event> {
        let thresholds = self.learn(events);
        // Same rolling-window semantics as the fixed filter, but the window
        // length depends on the event's code.
        let mut last: HashMap<(ErrCode, bgp_model::Location), (usize, bgp_model::Timestamp)> =
            HashMap::new();
        let mut out: Vec<Event> = Vec::new();
        for e in events {
            let threshold = thresholds.get(&e.errcode).copied().unwrap_or(self.fallback);
            match last.get_mut(&(e.errcode, e.location)) {
                Some((idx, seen)) if e.time - *seen <= threshold => {
                    out[*idx].absorb(e);
                    *seen = e.time;
                }
                _ => {
                    last.insert((e.errcode, e.location), (out.len(), e.time));
                    out.push(*e);
                }
            }
        }
        out
    }
}

fn clamp(d: Duration, lo: Duration, hi: Duration) -> Duration {
    Duration::seconds(d.as_secs().clamp(lo.as_secs(), hi.as_secs()))
}

/// Compare fixed vs adaptive filtering on the same stream: returns
/// `(fixed_events, adaptive_events)` counts — the ablation quantity.
pub fn compare_with_fixed(events: &[Event], fixed: TemporalFilter) -> (usize, usize) {
    (
        fixed.apply(events).len(),
        AdaptiveTemporalFilter::default().apply(events).len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    /// A storm-structured stream: bursts of 10-second-gap records separated
    /// by hours.
    fn storms(name: &str, loc: &str, n_storms: i64, storm_len: i64) -> Vec<Event> {
        let mut out = Vec::new();
        for s in 0..n_storms {
            let base = s * 50_000;
            for k in 0..storm_len {
                out.push(ev(base + k * 10, loc, name));
            }
        }
        out
    }

    #[test]
    fn learns_a_threshold_between_the_modes() {
        let stream = storms("_bgp_err_kernel_panic", "R00-M0-N00-J00", 6, 12);
        let f = AdaptiveTemporalFilter::default();
        let thresholds = f.learn(&stream);
        let code = Catalog::standard().lookup("_bgp_err_kernel_panic").unwrap();
        let t = thresholds[&code].as_secs();
        // Within-storm gaps are 10 s; between storms ~50,000 s. The learned
        // threshold (geometric mean of the split ≈ √(10·50,000) ≈ 700 s,
        // within the clamp range) must separate the two modes.
        assert!(t > 10, "threshold {t} too small");
        assert!(t < 49_000, "threshold {t} would merge distinct storms");
        // And the filter collapses each storm to one event.
        assert_eq!(f.apply(&stream).len(), 6);
    }

    #[test]
    fn slow_codes_get_tight_thresholds() {
        // A code that fires every 8 minutes steadily (no storms): the fixed
        // 5-minute filter keeps them apart, but a naive larger threshold
        // would merge them. The adaptive learner sees no bimodality and
        // falls back — never over-merging.
        let steady: Vec<Event> = (0..20)
            .map(|i| ev(i * 480, "R01-M0-N00-J00", "_bgp_err_ddr_controller"))
            .collect();
        let f = AdaptiveTemporalFilter::default();
        let out = f.apply(&steady);
        assert_eq!(out.len(), 20, "steady events must not merge");
    }

    #[test]
    fn mixed_stream_filters_each_code_by_its_own_clock() {
        let mut stream = storms("_bgp_err_kernel_panic", "R00-M0-N00-J00", 4, 10);
        stream
            .extend((0..12).map(|i| ev(i * 480 + 7, "R01-M0-N00-J00", "_bgp_err_ddr_controller")));
        stream.sort_by_key(|e| e.time);
        let out = AdaptiveTemporalFilter::default().apply(&stream);
        let cat = Catalog::standard();
        let panics = out
            .iter()
            .filter(|e| e.errcode == cat.lookup("_bgp_err_kernel_panic").unwrap())
            .count();
        let ddrs = out
            .iter()
            .filter(|e| e.errcode == cat.lookup("_bgp_err_ddr_controller").unwrap())
            .count();
        assert_eq!(panics, 4, "storms collapse");
        assert_eq!(ddrs, 12, "steady stream survives");
        // Conservation.
        assert_eq!(
            out.iter().map(|e| e.merged).sum::<u32>() as usize,
            stream.len()
        );
    }

    #[test]
    fn comparable_compression_to_fixed_on_storm_data() {
        let stream = storms("_bgp_err_kernel_panic", "R00-M0-N00-J00", 8, 20);
        let (fixed, adaptive) = compare_with_fixed(&stream, TemporalFilter::default());
        assert_eq!(fixed, 8);
        assert_eq!(adaptive, 8);
    }

    #[test]
    fn sparse_codes_use_fallback() {
        let stream = vec![
            ev(0, "R00-M0", "_bgp_err_mc_timeout"),
            ev(100, "R00-M0", "_bgp_err_mc_timeout"),
        ];
        let f = AdaptiveTemporalFilter::default();
        let thresholds = f.learn(&stream);
        let code = Catalog::standard().lookup("_bgp_err_mc_timeout").unwrap();
        assert_eq!(thresholds[&code], f.fallback);
        // 100 s gap < fallback 300 s: merged.
        assert_eq!(f.apply(&stream).len(), 1);
    }
}
