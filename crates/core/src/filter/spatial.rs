//! Spatial filtering: collapse the same code reported from *different*
//! locations within a threshold.
//!
//! "Spatial filtering removes the same type of events being reported at
//! different locations within a threshold" (Section IV). This is what
//! absorbs a parallel job's fan-out: an interrupt reported by all 32
//! midplanes of a partition is one event.

use crate::event::Event;
use crate::filter::dedup::{DedupDecision, DedupWindow};
use bgp_model::Duration;

/// Spatial filter with a configurable threshold (default 300 s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialFilter {
    /// Events of the same code within this of the previous kept event are
    /// merged regardless of location.
    pub threshold: Duration,
}

impl Default for SpatialFilter {
    fn default() -> Self {
        SpatialFilter {
            threshold: Duration::minutes(5),
        }
    }
}

impl SpatialFilter {
    /// Apply to a time-sorted event stream (the `TemporalSpatial` stage's
    /// second half, fed the temporal filter's survivors).
    ///
    /// Contract: input must be time-sorted; output is a subsequence of the
    /// input keeping the first event of each spatial burst per code.
    pub fn apply(&self, events: &[Event]) -> Vec<Event> {
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        // Shared rolling-window core, keyed by code alone.
        let mut window = DedupWindow::new(self.threshold);
        let mut out: Vec<Event> = Vec::new();
        for e in events {
            match window.observe(e.errcode, e.time, out.len() as u32) {
                DedupDecision::Merged(slot) => out[slot as usize].absorb(e),
                DedupDecision::Fresh => out.push(*e),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    #[test]
    fn collapses_across_locations() {
        let f = SpatialFilter::default();
        let events = vec![
            ev(0, "R00-M0", "_bgp_err_ddr_controller"),
            ev(5, "R00-M1", "_bgp_err_ddr_controller"),
            ev(9, "R17-M1", "_bgp_err_ddr_controller"),
        ];
        let out = f.apply(&events);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged, 3);
        // Representative is the earliest.
        assert_eq!(out[0].location, "R00-M0".parse().unwrap());
    }

    #[test]
    fn different_codes_survive() {
        let f = SpatialFilter::default();
        let events = vec![
            ev(0, "R00-M0", "_bgp_err_ddr_controller"),
            ev(5, "R00-M0", "_bgp_err_kernel_panic"),
        ];
        assert_eq!(f.apply(&events).len(), 2);
    }

    #[test]
    fn separate_bursts_survive() {
        let f = SpatialFilter::default();
        let events = vec![
            ev(0, "R00-M0", "_bgp_err_ddr_controller"),
            ev(10_000, "R00-M1", "_bgp_err_ddr_controller"),
        ];
        assert_eq!(f.apply(&events).len(), 2);
    }

    #[test]
    fn conserves_merged_counts() {
        let f = SpatialFilter::default();
        let mut events = Vec::new();
        for i in 0..20 {
            events.push(ev(i * 10, "R00-M0", "_bgp_err_ddr_controller"));
        }
        for i in 0..5 {
            events.push(ev(50_000 + i, "R00-M0", "_bgp_err_kernel_panic"));
        }
        events.sort_by_key(|e| e.time);
        let out = f.apply(&events);
        assert_eq!(out.iter().map(|e| e.merged).sum::<u32>(), 25);
        assert_eq!(out.len(), 2);
    }
}
