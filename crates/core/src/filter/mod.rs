//! The filtering stack: temporal → spatial → causality-related →
//! job-related.
//!
//! The first three stages are prior art the paper builds on
//! (\[12\], \[9\], \[7\]); the job-related stage is the paper's contribution.
//! Each stage consumes and produces a time-sorted `Vec<Event>`, with merged
//! record counts preserved so compression ratios can be reported exactly
//! (the paper: 33,370 → 549 → 477).

pub mod adaptive;
pub mod causal;
pub mod dedup;
pub mod job_related;
mod proptests;
pub mod spatial;
pub mod temporal;

pub use adaptive::AdaptiveTemporalFilter;

pub use causal::{CausalFilter, CausalRule};
pub use dedup::{DedupDecision, DedupWindow};
pub use job_related::JobRelatedFilter;
pub use spatial::SpatialFilter;
pub use temporal::TemporalFilter;

/// Record/event counts through the filtering stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Raw FATAL records.
    pub raw_fatal: usize,
    /// Events after temporal filtering.
    pub after_temporal: usize,
    /// Events after spatial filtering.
    pub after_spatial: usize,
    /// Events after causality-related filtering.
    pub after_causal: usize,
    /// Events after job-related filtering.
    pub after_job_related: usize,
}

impl FilterStats {
    /// Compression achieved by temporal+spatial+causal filtering, as a
    /// fraction of raw FATAL records removed (the paper reports 98.35 %).
    pub fn ts_causal_compression(&self) -> f64 {
        if self.raw_fatal == 0 {
            return 0.0;
        }
        1.0 - self.after_causal as f64 / self.raw_fatal as f64
    }

    /// Additional compression achieved by job-related filtering, relative to
    /// the causally-filtered stream (the paper reports 13.1 %).
    pub fn job_related_compression(&self) -> f64 {
        if self.after_causal == 0 {
            return 0.0;
        }
        1.0 - self.after_job_related as f64 / self.after_causal as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratios() {
        let s = FilterStats {
            raw_fatal: 33_370,
            after_temporal: 5_000,
            after_spatial: 700,
            after_causal: 549,
            after_job_related: 477,
        };
        assert!((s.ts_causal_compression() - 0.98355).abs() < 1e-3);
        assert!((s.job_related_compression() - 0.1311).abs() < 1e-3);
        let empty = FilterStats::default();
        assert_eq!(empty.ts_causal_compression(), 0.0);
        assert_eq!(empty.job_related_compression(), 0.0);
    }
}
