//! Job-related filtering — the paper's contribution (Section IV-C).
//!
//! Temporal-spatial filtering cannot remove redundancy whose spacing is set
//! by the *scheduler* and the *users*, not by the reporting subsystem:
//!
//! * a persistent fault keeps its midplane broken, the scheduler keeps
//!   assigning new jobs there, and every doomed job re-reports the same
//!   code — minutes or hours apart;
//! * a user keeps resubmitting a buggy executable, and every run re-reports
//!   the same application error — possibly at a *different* location.
//!
//! The rules, from the paper:
//!
//! 1. If another job is interrupted by the same code at the same location
//!    and **no job executed successfully there in between**, the later event
//!    is redundant. The relation is transitive.
//! 2. For application errors (same-executable resubmissions): the event is
//!    redundant if a job with the same execution file was interrupted by the
//!    same code before, regardless of location.

use crate::context::AnalysisContext;
use crate::event::Event;
use crate::matching::Matching;
use joblog::ExecId;
use raslog::ErrCode;
use std::collections::HashMap;

/// Result of job-related filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRelatedOutcome {
    /// Per input event: is it job-related redundant?
    pub redundant: Vec<bool>,
    /// Per input event: the index of its root event (itself if kept).
    pub root: Vec<usize>,
    /// The surviving events, with redundant ones merged into their roots.
    pub events: Vec<Event>,
}

impl JobRelatedOutcome {
    /// Number of events removed.
    pub fn removed(&self) -> usize {
        self.redundant.iter().filter(|&&r| r).count()
    }
}

/// The job-related filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobRelatedFilter;

impl JobRelatedFilter {
    /// Apply to a time-sorted event stream with its job matching (the
    /// `JobRelated` stage).
    ///
    /// "Executed successfully in between" is decided from the co-analysis
    /// itself: a job on the same midplane, wholly inside the gap, that no
    /// fatal event interrupted.
    ///
    /// Contract: `events` is time-sorted and parallel to
    /// `matching.per_event`; the outcome's kept stream is a subsequence of
    /// the input.
    pub fn apply(
        &self,
        events: &[Event],
        matching: &Matching,
        ctx: &AnalysisContext<'_>,
    ) -> JobRelatedOutcome {
        assert_eq!(events.len(), matching.per_event.len());
        let mut redundant = vec![false; events.len()];
        let mut root: Vec<usize> = (0..events.len()).collect();

        // Rule 1: same (code, midplane) chains with no clean run between.
        let mut last_at: HashMap<(ErrCode, u8), usize> = HashMap::new();
        // Rule 2: earliest interrupting event per (code, victim executable).
        let mut seen_exec: HashMap<(ErrCode, ExecId), usize> = HashMap::new();

        for (i, e) in events.iter().enumerate() {
            let victims = &matching.per_event[i].victims;
            if victims.is_empty() {
                continue; // only interrupting events participate
            }
            let mp = e.midplane();
            let key = (e.errcode, mp.index() as u8);

            // --- Rule 1 ---
            if let Some(&j) = last_at.get(&key) {
                let clean_run_between =
                    ctx.overlapping(mp, events[j].time, e.time)
                        .iter()
                        .any(|job| {
                            job.start_time > events[j].time
                                && job.end_time < e.time
                                && !matching.job_to_event.contains_key(&job.job_id)
                        });
                if !clean_run_between {
                    redundant[i] = true;
                    root[i] = root[j]; // transitive
                }
            }

            // --- Rule 2 (application resubmissions) ---
            if !redundant[i] {
                for &job_id in victims {
                    let Some(job) = ctx.job(job_id) else {
                        continue;
                    };
                    if let Some(&j) = seen_exec.get(&(e.errcode, job.exec)) {
                        if j != i {
                            redundant[i] = true;
                            root[i] = root[j];
                            break;
                        }
                    }
                }
            }

            // Update indices (an event remains the chain head for later
            // comparisons even if itself redundant — the chain is rooted at
            // its first event via `root`).
            last_at.insert(key, i);
            for &job_id in victims {
                if let Some(job) = ctx.job(job_id) {
                    seen_exec.entry((e.errcode, job.exec)).or_insert(i);
                }
            }
        }

        // Merge redundant events into their roots.
        let mut events_out: Vec<Event> = Vec::with_capacity(events.len());
        let mut out_index: HashMap<usize, usize> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            if redundant[i] {
                let r = root[i];
                let tgt = out_index[&r];
                events_out[tgt].absorb(e);
            } else {
                out_index.insert(i, events_out.len());
                events_out.push(*e);
            }
        }
        JobRelatedOutcome {
            redundant,
            root,
            events: events_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::Matcher;
    use bgp_model::Timestamp;
    use joblog::{ExitStatus, JobLog, JobRecord, ProjectId, UserId};
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    fn job(job_id: u64, exec: u32, start: i64, end: i64, part: &str, failed: bool) -> JobRecord {
        JobRecord {
            job_id,
            exec: ExecId(exec),
            user: UserId(0),
            project: ProjectId(0),
            queue_time: Timestamp::from_unix(start - 10),
            start_time: Timestamp::from_unix(start),
            end_time: Timestamp::from_unix(end),
            partition: part.parse().unwrap(),
            exit: if failed {
                ExitStatus::Failed(143)
            } else {
                ExitStatus::Completed
            },
        }
    }

    fn run(events: Vec<Event>, jobs: Vec<JobRecord>) -> (JobRelatedOutcome, Vec<Event>) {
        let log = JobLog::from_jobs(jobs);
        let ctx = AnalysisContext::for_jobs(&log);
        let matching = Matcher::default().run(&events, &ctx);
        let out = JobRelatedFilter.apply(&events, &matching, &ctx);
        (out, events)
    }

    #[test]
    fn broken_midplane_chain_collapses() {
        // Three consecutive jobs on R00-M0, all killed by the same code,
        // with no clean run between → one event.
        let jobs = vec![
            job(1, 10, 0, 1_000, "R00-M0", true),
            job(2, 11, 1_200, 2_200, "R00-M0", true),
            job(3, 12, 2_400, 3_400, "R00-M0", true),
        ];
        let events = vec![
            ev(1_000, "R00-M0-N00-J00", "_bgp_err_ddr_controller"),
            ev(2_200, "R00-M0-N00-J00", "_bgp_err_ddr_controller"),
            ev(3_400, "R00-M0-N00-J00", "_bgp_err_ddr_controller"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, true, true]);
        assert_eq!(out.root, vec![0, 0, 0], "transitivity");
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].merged, 3);
        assert_eq!(out.removed(), 2);
    }

    #[test]
    fn clean_run_breaks_the_chain() {
        // A successful job between two interruptions → repaired; the second
        // event is a fresh failure.
        let jobs = vec![
            job(1, 10, 0, 1_000, "R00-M0", true),
            job(2, 11, 1_200, 2_200, "R00-M0", false), // clean
            job(3, 12, 2_400, 3_400, "R00-M0", true),
        ];
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(3_400, "R00-M0", "_bgp_err_ddr_controller"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, false]);
        assert_eq!(out.events.len(), 2);
    }

    #[test]
    fn resubmitted_buggy_exec_redundant_across_locations() {
        // Same executable interrupted by the same app code on different
        // midplanes → rule 2 removes the repeats.
        let jobs = vec![
            job(1, 77, 0, 1_000, "R00-M0", true),
            job(2, 77, 2_000, 3_000, "R05-M1", true),
            job(3, 77, 4_000, 5_000, "R11-M0", true),
        ];
        let events = vec![
            ev(1_000, "R00-M0-I0", "_bgp_err_fs_operation_error"),
            ev(3_000, "R05-M1-I3", "_bgp_err_fs_operation_error"),
            ev(5_000, "R11-M0-I1", "_bgp_err_fs_operation_error"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, true, true]);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].merged, 3);
    }

    #[test]
    fn different_codes_not_chained() {
        let jobs = vec![
            job(1, 10, 0, 1_000, "R00-M0", true),
            job(2, 11, 1_200, 2_200, "R00-M0", true),
        ];
        let events = vec![
            ev(1_000, "R00-M0", "_bgp_err_ddr_controller"),
            ev(2_200, "R00-M0", "_bgp_err_kernel_panic"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, false]);
    }

    #[test]
    fn non_interrupting_events_untouched() {
        // Idle-location repeats are NOT job-related redundancy (there is no
        // job signal); they stay.
        let jobs = vec![job(1, 10, 0, 1_000, "R30-M0", false)];
        let events = vec![
            ev(5_000, "R00-M0", "_bgp_err_diag_netbist"),
            ev(90_000, "R00-M0", "_bgp_err_diag_netbist"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, false]);
        assert_eq!(out.events.len(), 2);
    }

    #[test]
    fn different_execs_same_code_not_rule2() {
        // Two different executables hit by the same app code at different
        // locations: not resubmission redundancy.
        let jobs = vec![
            job(1, 70, 0, 1_000, "R00-M0", true),
            job(2, 71, 2_000, 3_000, "R05-M1", true),
        ];
        let events = vec![
            ev(1_000, "R00-M0-I0", "_bgp_err_app_out_of_memory"),
            ev(3_000, "R05-M1-I3", "_bgp_err_app_out_of_memory"),
        ];
        let (out, _) = run(events, jobs);
        assert_eq!(out.redundant, vec![false, false]);
    }
}
