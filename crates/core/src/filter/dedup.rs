//! The rolling-window dedup core shared by batch and streaming filtering.
//!
//! Temporal filtering (same code + same location) and spatial filtering
//! (same code, any location) are the same algorithm over different keys:
//! keep the first record of a burst, absorb everything of the same key that
//! arrives within `threshold` of the *last* sighting (so storms extend
//! their own window), start a new burst after a gap. The batch
//! [`TemporalFilter`](super::TemporalFilter) / [`SpatialFilter`](super::SpatialFilter)
//! stages and the [`OnlineAnalyzer`](crate::stream::OnlineAnalyzer) all
//! instantiate this one [`DedupWindow`], which is what makes their
//! batch/stream equivalence structural rather than coincidental.

use bgp_model::{Duration, Timestamp};
use std::collections::HashMap;
use std::hash::Hash;

/// What to do with one observed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupDecision {
    /// First sighting of this key, or a reappearance beyond the window:
    /// the record starts a new kept event.
    Fresh,
    /// Within the window of the last sighting: merge into the slot the
    /// caller registered when the kept event was fresh.
    Merged(u32),
}

/// Rolling-window deduplication state for one key type.
///
/// Batch callers pass the output index of each fresh event as its *slot* so
/// later merges know which kept event to absorb into; streaming callers that
/// only need the decision pass `0` and ignore the slot.
#[derive(Debug, Clone)]
pub struct DedupWindow<K> {
    threshold: Duration,
    last: HashMap<K, (u32, Timestamp)>,
}

impl<K: Eq + Hash> DedupWindow<K> {
    /// An empty window with the given merge threshold.
    pub fn new(threshold: Duration) -> DedupWindow<K> {
        DedupWindow {
            threshold,
            last: HashMap::new(),
        }
    }

    /// Observe one record of `key` at `time`.
    ///
    /// Contract: times must be fed in non-decreasing order per key. A record
    /// within `threshold` of the key's last sighting returns
    /// [`DedupDecision::Merged`] with the slot registered for the kept event
    /// and extends the window (`last sighting := time`); otherwise the
    /// record is [`DedupDecision::Fresh`] and `fresh_slot` becomes the
    /// key's registered slot.
    pub fn observe(&mut self, key: K, time: Timestamp, fresh_slot: u32) -> DedupDecision {
        match self.last.get_mut(&key) {
            Some((slot, seen)) if time - *seen <= self.threshold => {
                *seen = time;
                DedupDecision::Merged(*slot)
            }
            _ => {
                self.last.insert(key, (fresh_slot, time));
                DedupDecision::Fresh
            }
        }
    }

    /// Drop keys whose last sighting is before `cutoff`. Safe for streaming
    /// eviction: a key older than the threshold horizon could never merge
    /// again anyway.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        self.last.retain(|_, (_, seen)| *seen >= cutoff);
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.last.len()
    }

    /// Is any key tracked?
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_unix(secs)
    }

    #[test]
    fn merges_within_window_and_extends_it() {
        let mut w: DedupWindow<u8> = DedupWindow::new(Duration::seconds(100));
        assert_eq!(w.observe(1, t(0), 0), DedupDecision::Fresh);
        assert_eq!(w.observe(1, t(90), 0), DedupDecision::Merged(0));
        // 180 is beyond 100 of the first sighting but within 100 of the
        // second — the window rolled forward.
        assert_eq!(w.observe(1, t(180), 0), DedupDecision::Merged(0));
        assert_eq!(w.observe(1, t(300), 5), DedupDecision::Fresh);
        assert_eq!(w.observe(1, t(350), 0), DedupDecision::Merged(5));
    }

    #[test]
    fn keys_are_independent() {
        let mut w: DedupWindow<(u8, u8)> = DedupWindow::new(Duration::seconds(100));
        assert_eq!(w.observe((1, 1), t(0), 0), DedupDecision::Fresh);
        assert_eq!(w.observe((1, 2), t(10), 1), DedupDecision::Fresh);
        assert_eq!(w.observe((1, 1), t(20), 9), DedupDecision::Merged(0));
        assert_eq!(w.observe((1, 2), t(20), 9), DedupDecision::Merged(1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_forgets_stale_keys_only() {
        let mut w: DedupWindow<u8> = DedupWindow::new(Duration::seconds(100));
        w.observe(1, t(0), 0);
        w.observe(2, t(500), 1);
        w.evict_before(t(400));
        assert_eq!(w.len(), 1);
        // Key 1 forgotten: a record at 50 would now be fresh again.
        assert_eq!(w.observe(1, t(550), 2), DedupDecision::Fresh);
        assert_eq!(w.observe(2, t(550), 3), DedupDecision::Merged(1));
        w.evict_before(t(10_000));
        assert!(w.is_empty());
    }
}
