//! Causality-related filtering: learn which codes co-occur and collapse the
//! companions into their cause.
//!
//! After temporal-spatial filtering, storms of the *same* code are gone, but
//! a root cause that fires several *different* codes (an L1 parity error
//! that also panics the kernel) still appears as several events. The paper's
//! earlier work \[7\] mines frequently co-occurring fatal sets and filters
//! them together; this module implements that idea as association-rule
//! mining over the event stream:
//!
//! * **learn**: for every ordered code pair (A, B), count how often a
//!   B-event follows an A-event within `gap` on the same midplane; a pair
//!   with enough support and confidence becomes a rule "B is a consequence
//!   of A";
//! * **apply**: B-events within `gap` of a preceding A-event (same
//!   midplane) are merged into the A-event.

use crate::event::Event;
use bgp_model::Duration;
use raslog::ErrCode;
use std::collections::HashMap;

/// A learned causal rule: `consequence` follows `cause`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CausalRule {
    /// The root code.
    pub cause: ErrCode,
    /// The companion code it drags along.
    pub consequence: ErrCode,
    /// Number of observed co-occurrences.
    pub support: usize,
    /// P(consequence follows | cause fired).
    pub confidence: f64,
}

/// Causality-related filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CausalFilter {
    /// Max delay between cause and consequence.
    pub gap: Duration,
    /// Minimum co-occurrence count for a rule.
    pub min_support: usize,
    /// Minimum confidence for a rule.
    pub min_confidence: f64,
}

impl Default for CausalFilter {
    fn default() -> Self {
        CausalFilter {
            gap: Duration::minutes(2),
            min_support: 3,
            min_confidence: 0.5,
        }
    }
}

impl CausalFilter {
    /// Learn rules from a time-sorted event stream.
    pub fn learn(&self, events: &[Event]) -> Vec<CausalRule> {
        let mut pair_counts: HashMap<(ErrCode, ErrCode), usize> = HashMap::new();
        let mut cause_counts: HashMap<ErrCode, usize> = HashMap::new();
        for e in events {
            *cause_counts.entry(e.errcode).or_insert(0) += 1;
        }
        // For each event, look ahead within the gap on the same midplane.
        for (i, a) in events.iter().enumerate() {
            let mut seen_this_window: Vec<ErrCode> = Vec::new();
            for b in events[i + 1..].iter() {
                if b.time - a.time > self.gap {
                    break;
                }
                if b.errcode != a.errcode
                    && b.midplane() == a.midplane()
                    && !seen_this_window.contains(&b.errcode)
                {
                    seen_this_window.push(b.errcode);
                    *pair_counts.entry((a.errcode, b.errcode)).or_insert(0) += 1;
                }
            }
        }
        let mut rules: Vec<CausalRule> = pair_counts
            .into_iter()
            .filter_map(|((cause, consequence), support)| {
                let n_cause = cause_counts[&cause];
                let confidence = support as f64 / n_cause as f64;
                (support >= self.min_support && confidence >= self.min_confidence).then_some(
                    CausalRule {
                        cause,
                        consequence,
                        support,
                        confidence,
                    },
                )
            })
            .collect();
        // If A→B and B→A both qualify (mutual storms), keep the direction
        // with higher confidence so applying rules cannot delete both sides.
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| (a.cause, a.consequence).cmp(&(b.cause, b.consequence)))
        });
        let mut kept: Vec<CausalRule> = Vec::new();
        for r in rules {
            let reversed = kept
                .iter()
                .any(|k| k.cause == r.consequence && k.consequence == r.cause);
            if !reversed {
                kept.push(r);
            }
        }
        kept
    }

    /// Apply rules to the stream: consequence events merge into the nearest
    /// preceding cause event (same midplane, within gap).
    ///
    /// Contract: input must be time-sorted; output is a subsequence of the
    /// input — only consequence events covered by a rule are dropped.
    pub fn apply(&self, events: &[Event], rules: &[CausalRule]) -> Vec<Event> {
        let rule_set: std::collections::HashSet<(ErrCode, ErrCode)> =
            rules.iter().map(|r| (r.cause, r.consequence)).collect();
        let mut absorbed_into: Vec<Option<usize>> = vec![None; events.len()];
        for (i, b) in events.iter().enumerate() {
            // Scan backwards for a cause.
            for (j, a) in events[..i].iter().enumerate().rev() {
                if b.time - a.time > self.gap {
                    break;
                }
                if absorbed_into[j].is_none()
                    && a.midplane() == b.midplane()
                    && rule_set.contains(&(a.errcode, b.errcode))
                {
                    absorbed_into[i] = Some(j);
                    break;
                }
            }
        }
        let mut out: Vec<Event> = Vec::new();
        let mut out_index: Vec<usize> = vec![usize::MAX; events.len()];
        for (i, e) in events.iter().enumerate() {
            match absorbed_into[i] {
                Some(j) => {
                    let tgt = out_index[j];
                    out[tgt].absorb(e);
                    out_index[i] = tgt; // chains collapse into the same root
                }
                None => {
                    out_index[i] = out.len();
                    out.push(*e);
                }
            }
        }
        out
    }

    /// Learn and apply in one step.
    ///
    /// Contract: input must be time-sorted; returns the filtered subsequence
    /// plus the rules learned from this same stream.
    pub fn filter(&self, events: &[Event]) -> (Vec<Event>, Vec<CausalRule>) {
        let rules = self.learn(events);
        let filtered = self.apply(events, &rules);
        (filtered, rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::Timestamp;
    use raslog::Catalog;

    fn ev(t: i64, loc: &str, name: &str) -> Event {
        Event::synthetic(
            Timestamp::from_unix(t),
            loc.parse().unwrap(),
            Catalog::standard().lookup(name).unwrap(),
            1,
            t as u64,
        )
    }

    /// Build a stream where `panic` reliably follows `l1` on the same
    /// midplane, plus some unrelated events.
    fn companion_stream() -> Vec<Event> {
        let mut events = Vec::new();
        for k in 0..6 {
            let base = k * 100_000;
            events.push(ev(base, "R00-M0-N01-J01", "_bgp_err_cns_ras_storm_fatal"));
            events.push(ev(base + 20, "R00-M0-N02-J05", "_bgp_err_kernel_panic"));
        }
        // Unrelated kernel panics elsewhere (keep panic's marginal high
        // enough that the reverse rule panic→l1 has low confidence).
        for k in 0..6 {
            events.push(ev(
                5_000 + k * 90_000,
                "R11-M1-N00-J00",
                "_bgp_err_kernel_panic",
            ));
        }
        events.sort_by_key(|e| e.time);
        events
    }

    #[test]
    fn learns_companion_rule() {
        let f = CausalFilter::default();
        let rules = f.learn(&companion_stream());
        let cat = Catalog::standard();
        let l1 = cat.lookup("_bgp_err_cns_ras_storm_fatal").unwrap();
        let panic = cat.lookup("_bgp_err_kernel_panic").unwrap();
        let rule = rules
            .iter()
            .find(|r| r.cause == l1 && r.consequence == panic)
            .expect("rule learned");
        assert_eq!(rule.support, 6);
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        // The reverse direction must not qualify (confidence 6/12 = 0.5 but
        // the forward rule wins the mutual-pair tie-break).
        assert!(!rules
            .iter()
            .any(|r| r.cause == panic && r.consequence == l1));
    }

    #[test]
    fn apply_merges_consequences() {
        let f = CausalFilter::default();
        let events = companion_stream();
        let (filtered, _) = f.filter(&events);
        // 6 L1 events remain (each absorbed its panic), 6 lone panics remain.
        assert_eq!(filtered.len(), 12);
        let cat = Catalog::standard();
        let l1 = cat.lookup("_bgp_err_cns_ras_storm_fatal").unwrap();
        let l1_events: Vec<&Event> = filtered.iter().filter(|e| e.errcode == l1).collect();
        assert_eq!(l1_events.len(), 6);
        assert!(l1_events.iter().all(|e| e.merged == 2));
        // Record counts conserved.
        assert_eq!(
            filtered.iter().map(|e| e.merged).sum::<u32>() as usize,
            events.len()
        );
    }

    #[test]
    fn no_rules_from_sparse_data() {
        let f = CausalFilter::default();
        let events = vec![
            ev(0, "R00-M0", "_bgp_err_cns_ras_storm_fatal"),
            ev(10, "R00-M0", "_bgp_err_kernel_panic"),
        ];
        // Support 1 < min_support 3.
        assert!(f.learn(&events).is_empty());
        let (filtered, _) = f.filter(&events);
        assert_eq!(filtered.len(), 2);
    }

    #[test]
    fn different_midplane_not_merged() {
        let f = CausalFilter::default();
        let mut events = Vec::new();
        for k in 0..5 {
            let base = k * 100_000;
            events.push(ev(base, "R00-M0", "_bgp_err_cns_ras_storm_fatal"));
            events.push(ev(base + 20, "R00-M0", "_bgp_err_kernel_panic"));
        }
        // A panic on a different midplane right after an L1 event.
        events.push(ev(500_000, "R00-M0", "_bgp_err_cns_ras_storm_fatal"));
        events.push(ev(500_010, "R30-M1", "_bgp_err_kernel_panic"));
        events.sort_by_key(|e| e.time);
        let (filtered, rules) = f.filter(&events);
        assert!(!rules.is_empty());
        // The cross-midplane panic survives as its own event.
        let cat = Catalog::standard();
        let panic = cat.lookup("_bgp_err_kernel_panic").unwrap();
        assert!(filtered
            .iter()
            .any(|e| e.errcode == panic && e.midplane().to_string() == "R30-M1"));
    }
}
