//! Property-based tests for the filter stack's structural invariants:
//!
//! * **conservation** — merged record counts always sum to the input count;
//! * **idempotence** — running a filter on its own output changes nothing
//!   (there is nothing left within a threshold to merge);
//! * **order** — outputs stay time-sorted;
//! * **monotonicity** — a larger threshold never yields more events.

#![cfg(test)]

use crate::event::Event;
use crate::filter::{SpatialFilter, TemporalFilter};
use bgp_model::{Duration, Timestamp};
use proptest::prelude::*;
use raslog::{Catalog, ErrCode};

/// A compact pool of codes/locations so collisions (and therefore merges)
/// actually happen in random streams.
fn code_pool() -> Vec<ErrCode> {
    let cat = Catalog::standard();
    [
        "_bgp_err_kernel_panic",
        "_bgp_err_ddr_controller",
        "BULK_POWER_FATAL",
        "_bgp_err_fs_config",
    ]
    .iter()
    .map(|n| cat.lookup(n).unwrap())
    .collect()
}

prop_compose! {
    fn arb_stream()(
        gaps in proptest::collection::vec(0i64..2_000, 1..120),
        codes in proptest::collection::vec(0usize..4, 1..120),
        locs in proptest::collection::vec(0u8..6, 1..120),
    ) -> Vec<Event> {
        let pool = code_pool();
        let n = gaps.len().min(codes.len()).min(locs.len());
        let mut t = 0i64;
        (0..n)
            .map(|i| {
                t += gaps[i];
                let loc: bgp_model::Location = format!("R0{}-M0", locs[i] % 8).parse().unwrap();
                Event::synthetic(
                    Timestamp::from_unix(t),
                    loc,
                    pool[codes[i] % pool.len()],
                    1,
                    i as u64,
                )
            })
            .collect()
    }
}

fn total_merged(events: &[Event]) -> u64 {
    events.iter().map(|e| u64::from(e.merged)).sum()
}

fn is_time_sorted(events: &[Event]) -> bool {
    events.windows(2).all(|w| w[0].time <= w[1].time)
}

proptest! {
    #[test]
    fn temporal_conserves_and_sorts(stream in arb_stream()) {
        let f = TemporalFilter::default();
        let out = f.apply(&stream);
        prop_assert_eq!(total_merged(&out), total_merged(&stream));
        prop_assert!(is_time_sorted(&out));
        prop_assert!(out.len() <= stream.len());
    }

    #[test]
    fn temporal_is_idempotent(stream in arb_stream()) {
        let f = TemporalFilter::default();
        let once = f.apply(&stream);
        let twice = f.apply(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn spatial_conserves_and_sorts(stream in arb_stream()) {
        let f = SpatialFilter::default();
        let out = f.apply(&stream);
        prop_assert_eq!(total_merged(&out), total_merged(&stream));
        prop_assert!(is_time_sorted(&out));
    }

    #[test]
    fn spatial_is_idempotent(stream in arb_stream()) {
        let f = SpatialFilter::default();
        let once = f.apply(&stream);
        prop_assert_eq!(f.apply(&once), once);
    }

    #[test]
    fn wider_temporal_threshold_never_keeps_more(stream in arb_stream()) {
        let narrow = TemporalFilter { threshold: Duration::seconds(60) };
        let wide = TemporalFilter { threshold: Duration::seconds(1_200) };
        prop_assert!(wide.apply(&stream).len() <= narrow.apply(&stream).len());
    }

    #[test]
    fn spatial_after_temporal_never_increases(stream in arb_stream()) {
        let t = TemporalFilter::default().apply(&stream);
        let s = SpatialFilter::default().apply(&t);
        prop_assert!(s.len() <= t.len());
        prop_assert_eq!(total_merged(&s), total_merged(&stream));
    }

    #[test]
    fn representative_is_earliest_of_each_merge(stream in arb_stream()) {
        // Every output event's representative time/recid must exist in the
        // input, and distinct output events of the same (code, location)
        // must be separated by more than the threshold.
        let f = TemporalFilter::default();
        let out = f.apply(&stream);
        for e in &out {
            prop_assert!(stream.iter().any(|s| s.first_recid == e.first_recid
                && s.time == e.time));
        }
        for i in 0..out.len() {
            for j in i + 1..out.len() {
                if out[i].errcode == out[j].errcode && out[i].location == out[j].location {
                    // The *first raw record* of the later event must be more
                    // than `threshold` after the last absorbed record of the
                    // earlier one; with rolling windows the representative
                    // gap is at least the threshold too.
                    prop_assert!(out[j].time > out[i].time);
                }
            }
        }
    }
}
